"""Property-based tests (hypothesis) for the core data structures and invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.assignment import server_loads
from repro.core.costs import delays_to_targets, initial_cost_matrix, refined_cost_matrix
from repro.core.problem import CAPInstance
from repro.core.regret import max_regret_assign, regret_order
from repro.core.two_phase import solve_cap
from repro.dynamics.events import ChurnBatch, apply_churn
from repro.measurement.error import apply_multiplicative_error
from repro.metrics.cdf import delay_cdf
from repro.metrics.summary import aggregate
from repro.world.bandwidth import BandwidthModel
from repro.world.clients import ClientPopulation

# --------------------------------------------------------------------------- #
# Strategies
# --------------------------------------------------------------------------- #


@st.composite
def cap_instances(draw):
    """Random feasible-looking CAP instances (small, ample capacity)."""
    num_servers = draw(st.integers(min_value=1, max_value=5))
    num_zones = draw(st.integers(min_value=1, max_value=6))
    num_clients = draw(st.integers(min_value=1, max_value=25))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31 - 1)))
    client_server_delays = rng.uniform(1.0, 500.0, size=(num_clients, num_servers))
    mesh = rng.uniform(1.0, 250.0, size=(num_servers, num_servers))
    mesh = (mesh + mesh.T) / 2.0
    np.fill_diagonal(mesh, 0.0)
    client_zones = rng.integers(0, num_zones, size=num_clients)
    client_demands = rng.uniform(1.0, 20.0, size=num_clients)
    server_capacities = np.full(num_servers, client_demands.sum() * 4.0 + 1.0)
    delay_bound = draw(st.floats(min_value=50.0, max_value=450.0))
    return CAPInstance(
        client_server_delays=client_server_delays,
        server_server_delays=mesh,
        client_zones=client_zones,
        client_demands=client_demands,
        server_capacities=server_capacities,
        delay_bound=delay_bound,
        num_zones=num_zones,
    )


# --------------------------------------------------------------------------- #
# Cost-matrix invariants
# --------------------------------------------------------------------------- #


class TestCostInvariants:
    @given(cap_instances())
    @settings(max_examples=30, deadline=None)
    def test_initial_cost_bounded_by_zone_population(self, instance):
        cost = initial_cost_matrix(instance)
        populations = instance.zone_populations()
        assert cost.shape == (instance.num_servers, instance.num_zones)
        assert (cost >= 0).all()
        assert (cost <= populations[None, :]).all()
        # Total misses over all servers and zones never exceeds clients × servers.
        assert cost.sum() <= instance.num_clients * instance.num_servers

    @given(cap_instances())
    @settings(max_examples=30, deadline=None)
    def test_refined_cost_non_negative_and_zero_within_bound(self, instance):
        rng = np.random.default_rng(0)
        zone_to_server = rng.integers(0, instance.num_servers, size=instance.num_zones)
        cost = refined_cost_matrix(instance, zone_to_server)
        assert (cost >= 0).all()
        delays = (
            instance.client_server_delays.T
            + instance.server_server_delays[:, zone_to_server[instance.client_zones]]
        )
        within = delays <= instance.delay_bound
        assert (cost[within] == 0).all()

    @given(cap_instances())
    @settings(max_examples=30, deadline=None)
    def test_delays_to_targets_direct_vs_forwarded(self, instance):
        rng = np.random.default_rng(1)
        zone_to_server = rng.integers(0, instance.num_servers, size=instance.num_zones)
        targets = zone_to_server[instance.client_zones]
        direct = delays_to_targets(instance, zone_to_server)
        via_target_contact = delays_to_targets(instance, zone_to_server, targets)
        np.testing.assert_allclose(direct, via_target_contact)


# --------------------------------------------------------------------------- #
# Greedy-assignment invariants
# --------------------------------------------------------------------------- #


class TestRegretInvariants:
    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.tuples(
                st.integers(min_value=1, max_value=5), st.integers(min_value=0, max_value=12)
            ),
            elements=st.floats(min_value=-100, max_value=0, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_regret_order_is_a_permutation(self, desirability):
        order = regret_order(desirability)
        assert sorted(order.tolist()) == list(range(desirability.shape[1]))

    @given(cap_instances())
    @settings(max_examples=25, deadline=None)
    def test_max_regret_respects_capacities_with_skip(self, instance):
        desirability = -initial_cost_matrix(instance)
        result = max_regret_assign(
            desirability,
            demands=instance.zone_demands(),
            capacities=instance.server_capacities,
            fallback="skip",
        )
        loads = np.zeros(instance.num_servers)
        for item, server in enumerate(result.item_to_server):
            if server >= 0:
                loads[server] += instance.zone_demands()[item]
        assert (loads <= instance.server_capacities + 1e-6).all()
        np.testing.assert_allclose(loads, result.loads)


class TestSolverInvariants:
    @given(cap_instances(), st.sampled_from(["ranz-virc", "ranz-grec", "grez-virc", "grez-grec"]))
    @settings(max_examples=25, deadline=None)
    def test_two_phase_solutions_are_structurally_valid(self, instance, algorithm):
        assignment = solve_cap(instance, algorithm, seed=0)
        assert assignment.zone_to_server.shape == (instance.num_zones,)
        assert assignment.contact_of_client.shape == (instance.num_clients,)
        assert (assignment.zone_to_server >= 0).all()
        assert (assignment.zone_to_server < instance.num_servers).all()
        assert (assignment.contact_of_client >= 0).all()
        assert (assignment.contact_of_client < instance.num_servers).all()
        assert 0.0 <= assignment.pqos(instance) <= 1.0
        # With the 4× capacity headroom of the strategy, capacity holds.
        assert assignment.is_capacity_feasible(instance)

    @given(cap_instances())
    @settings(max_examples=25, deadline=None)
    def test_grec_never_hurts_pqos(self, instance):
        virc = solve_cap(instance, "grez-virc", seed=0)
        grec = solve_cap(instance, "grez-grec", seed=0)
        assert grec.pqos(instance) >= virc.pqos(instance) - 1e-12

    @given(cap_instances())
    @settings(max_examples=25, deadline=None)
    def test_server_loads_conserve_demand(self, instance):
        assignment = solve_cap(instance, "grez-grec", seed=0)
        loads = server_loads(
            instance, assignment.zone_to_server, assignment.contact_of_client
        )
        forwarded = assignment.forwarded_mask(instance)
        expected_total = instance.total_demand() + 2.0 * instance.client_demands[forwarded].sum()
        assert loads.sum() == pytest.approx(expected_total)


# --------------------------------------------------------------------------- #
# Substrate invariants
# --------------------------------------------------------------------------- #


class TestSubstrateInvariants:
    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_bandwidth_demands_positive_and_consistent(self, num_clients, num_zones, seed):
        rng = np.random.default_rng(seed)
        zones = rng.integers(0, num_zones, size=num_clients)
        model = BandwidthModel()
        per_client = model.client_target_demands(zones, num_zones)
        per_zone = model.zone_demands(zones, num_zones)
        assert (per_client > 0).all()
        assert per_zone.sum() == pytest.approx(per_client.sum())

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=1, max_value=60),
            elements=st.floats(min_value=0, max_value=1000, allow_nan=False),
        ),
        st.floats(min_value=1.0, max_value=3.0),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_multiplicative_error_bounds(self, delays, factor, seed):
        noisy = apply_multiplicative_error(delays, factor, seed=seed)
        assert noisy.shape == delays.shape
        assert (noisy >= delays / factor - 1e-9).all()
        assert (noisy <= delays * factor + 1e-9).all()

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=st.integers(min_value=0, max_value=80),
            elements=st.floats(min_value=0, max_value=600, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_delay_cdf_monotone_and_bounded(self, delays):
        cdf = delay_cdf(delays, lo=0.0, hi=600.0, num_points=13)
        assert (np.diff(cdf.values) >= -1e-12).all()
        assert (cdf.values >= 0).all() and (cdf.values <= 1).all()
        if delays.size:
            assert cdf.values[-1] == pytest.approx(1.0)

    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=50)
    )
    @settings(max_examples=40, deadline=None)
    def test_aggregate_matches_numpy(self, values):
        agg = aggregate(values)
        assert agg.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)
        if len(values) > 1:
            assert agg.std == pytest.approx(np.std(values, ddof=1), rel=1e-6, abs=1e-6)

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=10),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_churn_preserves_client_accounting(self, num_clients, num_joins, seed):
        rng = np.random.default_rng(seed)
        population = ClientPopulation(
            nodes=rng.integers(0, 100, size=num_clients),
            zones=rng.integers(0, 5, size=num_clients),
        )
        num_leaves = int(rng.integers(0, num_clients + 1))
        leavers = rng.choice(num_clients, size=num_leaves, replace=False)
        stayers = np.setdiff1d(np.arange(num_clients), leavers)
        num_moves = int(rng.integers(0, stayers.size + 1)) if stayers.size else 0
        if num_moves:
            movers = rng.choice(stayers, size=num_moves, replace=False)
        else:
            movers = np.array([], dtype=int)
        batch = ChurnBatch(
            join_nodes=rng.integers(0, 100, size=num_joins),
            join_zones=rng.integers(0, 5, size=num_joins),
            leave_indices=leavers,
            move_indices=movers,
            move_zones=rng.integers(0, 5, size=movers.size),
        )
        result = apply_churn(population, batch)
        assert result.population.num_clients == num_clients - num_leaves + num_joins
        # old_to_new maps exactly the survivors, injectively.
        survivors = result.old_to_new[result.old_to_new >= 0]
        assert survivors.size == num_clients - num_leaves
        assert np.unique(survivors).size == survivors.size
        assert result.new_client_indices.size == num_joins
