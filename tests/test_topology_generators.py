"""Tests for the synthetic topology generators (Waxman, BA, hierarchical, BRITE, backbone)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.backbone import BackboneParams, great_circle_km, us_backbone_topology, US_POPS
from repro.topology.barabasi_albert import BarabasiAlbertParams, barabasi_albert_topology
from repro.topology.brite import BriteConfig, generate_topology, paper_default_topology
from repro.topology.hierarchical import HierarchicalParams, hierarchical_topology
from repro.topology.waxman import WaxmanParams, waxman_topology


class TestWaxman:
    def test_connected_and_sized(self):
        topo = waxman_topology(30, seed=0)
        assert topo.num_nodes == 30
        assert topo.is_connected()

    def test_deterministic_for_seed(self):
        a = waxman_topology(25, seed=5)
        b = waxman_topology(25, seed=5)
        np.testing.assert_array_equal(a.edges, b.edges)
        np.testing.assert_allclose(a.latencies, b.latencies)

    def test_different_seeds_differ(self):
        a = waxman_topology(25, seed=1)
        b = waxman_topology(25, seed=2)
        assert a.num_edges != b.num_edges or not np.array_equal(a.edges, b.edges)

    def test_single_node(self):
        topo = waxman_topology(1, seed=0)
        assert topo.num_nodes == 1
        assert topo.num_edges == 0

    def test_positive_latencies(self):
        topo = waxman_topology(20, seed=0)
        assert (topo.latencies > 0).all()

    def test_higher_alpha_gives_more_edges(self):
        sparse = waxman_topology(40, params=WaxmanParams(alpha=0.05), seed=3)
        dense = waxman_topology(40, params=WaxmanParams(alpha=0.6), seed=3)
        assert dense.num_edges > sparse.num_edges

    def test_invalid_num_nodes(self):
        with pytest.raises(ValueError):
            waxman_topology(0)

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            WaxmanParams(alpha=1.5)


class TestBarabasiAlbert:
    def test_connected_and_sized(self):
        topo = barabasi_albert_topology(30, seed=0)
        assert topo.num_nodes == 30
        assert topo.is_connected()

    def test_edge_count_formula(self):
        # Seed clique of m+1 nodes plus m edges per additional node.
        m = 2
        n = 25
        topo = barabasi_albert_topology(n, params=BarabasiAlbertParams(m=m), seed=1)
        expected = m * (m + 1) // 2 + (n - m - 1) * m
        assert topo.num_edges == expected

    def test_scale_free_hubs_exist(self):
        topo = barabasi_albert_topology(100, seed=7)
        deg = topo.degree()
        assert deg.max() >= 3 * np.median(deg)

    def test_deterministic(self):
        a = barabasi_albert_topology(20, seed=9)
        b = barabasi_albert_topology(20, seed=9)
        np.testing.assert_array_equal(a.edges, b.edges)

    def test_single_node(self):
        topo = barabasi_albert_topology(1, seed=0)
        assert topo.num_edges == 0

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            BarabasiAlbertParams(m=0)


class TestHierarchical:
    def test_shape_and_domains(self):
        params = HierarchicalParams(num_as=4, routers_per_as=6)
        topo = hierarchical_topology(params, seed=0)
        assert topo.num_nodes == 24
        assert topo.num_domains == 4
        assert topo.is_connected()

    def test_domain_sizes_equal(self):
        params = HierarchicalParams(num_as=3, routers_per_as=5)
        topo = hierarchical_topology(params, seed=1)
        for d in range(3):
            assert topo.domain_nodes(d).size == 5

    def test_deterministic(self):
        params = HierarchicalParams(num_as=3, routers_per_as=5)
        a = hierarchical_topology(params, seed=11)
        b = hierarchical_topology(params, seed=11)
        np.testing.assert_array_equal(a.edges, b.edges)
        np.testing.assert_allclose(a.latencies, b.latencies)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HierarchicalParams(num_as=0)
        with pytest.raises(ValueError):
            HierarchicalParams(routers_per_as=0)


class TestBriteConfig:
    def test_default_matches_paper(self):
        config = BriteConfig()
        assert config.num_nodes == 500
        assert config.num_as == 20
        assert config.routers_per_as == 25

    def test_node_count_consistency_enforced(self):
        with pytest.raises(ValueError):
            BriteConfig(num_nodes=100, num_as=20, routers_per_as=25)

    def test_invalid_model(self):
        with pytest.raises(ValueError):
            BriteConfig(model="gnutella")

    def test_describe_mentions_model(self):
        assert "hierarchical" in BriteConfig().describe()
        assert "waxman" in BriteConfig(model="waxman", num_nodes=50).describe()

    def test_generate_hierarchical(self):
        config = BriteConfig(model="hierarchical", num_nodes=30, num_as=5, routers_per_as=6)
        topo = generate_topology(config, seed=0)
        assert topo.num_nodes == 30
        assert topo.num_domains == 5

    def test_generate_flat_models(self):
        for model in ("waxman", "barabasi-albert"):
            topo = generate_topology(BriteConfig(model=model, num_nodes=20), seed=0)
            assert topo.num_nodes == 20
            assert topo.is_connected()

    @pytest.mark.slow
    def test_paper_default_topology(self):
        topo = paper_default_topology(seed=0)
        assert topo.num_nodes == 500
        assert topo.num_domains == 20
        assert topo.is_connected()


class TestBackbone:
    def test_pops_plus_access_routers(self):
        params = BackboneParams(access_routers_per_pop=2)
        topo = us_backbone_topology(params, seed=0)
        assert topo.num_nodes == len(US_POPS) * (1 + 2)
        assert topo.is_connected()

    def test_no_access_routers(self):
        topo = us_backbone_topology(BackboneParams(access_routers_per_pop=0), seed=0)
        assert topo.num_nodes == len(US_POPS)

    def test_deterministic(self):
        a = us_backbone_topology(seed=4)
        b = us_backbone_topology(seed=4)
        np.testing.assert_allclose(a.latencies, b.latencies)

    def test_great_circle_known_distance(self):
        # New York (40.7, -74.0) to Los Angeles (34.05, -118.25) ≈ 3940 km.
        d = great_circle_km(40.7128, -74.006, 34.0522, -118.2437)
        assert 3800 < d < 4050

    def test_great_circle_zero(self):
        assert great_circle_km(10.0, 20.0, 10.0, 20.0) == pytest.approx(0.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BackboneParams(neighbour_links=0)
