"""Tests for repro.utils.pool — worker resolution, the executor layer and
ordered mapping over serial / thread / process backends."""

from __future__ import annotations

import pytest

from repro.utils.pool import (
    EXECUTOR_KINDS,
    Executor,
    WorkerTaskError,
    available_cpus,
    default_chunksize,
    ordered_map,
    resolve_workers,
    run_ordered,
    shared_executor,
    shutdown_shared_executors,
)


def _square(x: int) -> int:
    """Module-level so it is picklable by the process pool."""
    return x * x


def _fail_on_three(x: int) -> int:
    """Module-level failing task fn (picklable)."""
    if x == 3:
        raise ValueError("task three exploded")
    return x * x


class TestResolveWorkers:
    def test_none_and_one_are_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_zero_means_all_cpus(self):
        assert resolve_workers(0) == available_cpus()

    def test_explicit_count(self):
        assert resolve_workers(3) == 3

    def test_capped_by_num_tasks(self):
        assert resolve_workers(8, num_tasks=2) == 2
        assert resolve_workers(8, num_tasks=100) == 8

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_at_least_one(self):
        assert resolve_workers(0, num_tasks=0) == 1


class TestDefaultChunksize:
    def test_at_least_one(self):
        assert default_chunksize(0, 4) == 1
        assert default_chunksize(3, 4) == 1

    def test_roughly_four_chunks_per_worker(self):
        assert default_chunksize(64, 4) == 4


class TestOrderedMap:
    def test_serial_preserves_order(self):
        assert list(ordered_map(_square, range(10))) == [x * x for x in range(10)]

    def test_parallel_preserves_order(self):
        assert list(ordered_map(_square, range(10), workers=3)) == [x * x for x in range(10)]

    def test_parallel_matches_serial(self):
        serial = run_ordered(_square, range(25))
        parallel = run_ordered(_square, range(25), workers=4)
        assert serial == parallel

    def test_empty(self):
        assert run_ordered(_square, [], workers=4) == []

    def test_single_task_stays_in_process(self):
        assert run_ordered(_square, [7], workers=4) == [49]

    def test_thread_kind_matches_serial(self):
        serial = run_ordered(_square, range(25))
        threaded = run_ordered(_square, range(25), workers=4, kind="thread")
        assert serial == threaded

    def test_serial_failure_raises_plain_exception(self):
        # No wrapping on the serial path: the original exception propagates.
        with pytest.raises(ValueError, match="task three exploded"):
            run_ordered(_fail_on_three, range(6))


class TestWorkerTaskError:
    """Satellite bugfix: worker failures carry the task index + repro hint."""

    @pytest.mark.parametrize("kind", ["process", "thread"])
    def test_failure_reports_task_index_and_hint(self, kind):
        with pytest.raises(WorkerTaskError) as excinfo:
            run_ordered(_fail_on_three, range(6), workers=2, kind=kind)
        err = excinfo.value
        assert err.task_index == 3
        assert isinstance(err.original, ValueError)
        assert isinstance(err.__cause__, ValueError)
        assert "task 3" in str(err)
        assert "workers=1" in str(err)  # the serial-repro hint

    def test_failure_message_carries_original_text(self):
        with pytest.raises(WorkerTaskError, match="task three exploded"):
            run_ordered(_fail_on_three, range(6), workers=2)


class TestExecutor:
    def test_kinds(self):
        assert set(EXECUTOR_KINDS) == {"serial", "thread", "process"}
        with pytest.raises(ValueError):
            Executor("fiber")
        with pytest.raises(ValueError):
            shared_executor("fiber")

    def test_serial_executor_maps_in_process(self):
        ex = Executor("serial")
        assert ex.run_ordered(_square, range(5)) == [x * x for x in range(5)]
        ex.shutdown()  # no-op

    def test_thread_executor_unpicklable_fn_ok(self):
        # Thread backend needs no pickling — closures are fine.
        ex = Executor("thread", workers=3)
        try:
            doubled = ex.run_ordered(lambda x: x * 2, range(7))
            assert doubled == [x * 2 for x in range(7)]
        finally:
            ex.shutdown()

    def test_pool_survives_across_calls(self):
        ex = Executor("thread", workers=2)
        try:
            assert ex.run_ordered(_square, range(4)) == [0, 1, 4, 9]
            pool = ex._pool
            assert pool is not None
            assert ex.run_ordered(_square, range(4)) == [0, 1, 4, 9]
            assert ex._pool is pool  # reused, not recreated
        finally:
            ex.shutdown()
        assert ex._pool is None

    def test_shared_executor_reuse_by_key(self):
        try:
            a = shared_executor("thread", 2)
            b = shared_executor("thread", 2)
            c = shared_executor("thread", 3)
            assert a is b
            assert a is not c
        finally:
            shutdown_shared_executors()

    def test_shared_serial_is_stateless(self):
        assert shared_executor("serial").kind == "serial"

    def test_shutdown_shared_executors_resets_registry(self):
        first = shared_executor("thread", 2)
        shutdown_shared_executors()
        assert shared_executor("thread", 2) is not first
        shutdown_shared_executors()
