"""Tests for repro.utils.pool — worker resolution and ordered process mapping."""

from __future__ import annotations

import pytest

from repro.utils.pool import (
    available_cpus,
    default_chunksize,
    ordered_map,
    resolve_workers,
    run_ordered,
)


def _square(x: int) -> int:
    """Module-level so it is picklable by the process pool."""
    return x * x


class TestResolveWorkers:
    def test_none_and_one_are_serial(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_zero_means_all_cpus(self):
        assert resolve_workers(0) == available_cpus()

    def test_explicit_count(self):
        assert resolve_workers(3) == 3

    def test_capped_by_num_tasks(self):
        assert resolve_workers(8, num_tasks=2) == 2
        assert resolve_workers(8, num_tasks=100) == 8

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_at_least_one(self):
        assert resolve_workers(0, num_tasks=0) == 1


class TestDefaultChunksize:
    def test_at_least_one(self):
        assert default_chunksize(0, 4) == 1
        assert default_chunksize(3, 4) == 1

    def test_roughly_four_chunks_per_worker(self):
        assert default_chunksize(64, 4) == 4


class TestOrderedMap:
    def test_serial_preserves_order(self):
        assert list(ordered_map(_square, range(10))) == [x * x for x in range(10)]

    def test_parallel_preserves_order(self):
        assert list(ordered_map(_square, range(10), workers=3)) == [x * x for x in range(10)]

    def test_parallel_matches_serial(self):
        serial = run_ordered(_square, range(25))
        parallel = run_ordered(_square, range(25), workers=4)
        assert serial == parallel

    def test_empty(self):
        assert run_ordered(_square, [], workers=4) == []

    def test_single_task_stays_in_process(self):
        assert run_ordered(_square, [7], workers=4) == [49]
