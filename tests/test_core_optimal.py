"""Tests for repro.core.optimal — the exact MILP baseline (lp_solve's role)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costs import initial_cost_matrix
from repro.core.grez import assign_zones_greedy
from repro.core.optimal import (
    OptimalityError,
    OptimalOptions,
    solve_cap_optimal,
    solve_iap_optimal,
    solve_rap_optimal,
)
from repro.core.two_phase import solve_cap
from repro.core.validation import validate_assignment
from tests.conftest import make_tiny_instance


class TestOptimalOptions:
    def test_as_milp_options(self):
        opts = OptimalOptions(time_limit=30.0, mip_rel_gap=0.01)
        assert opts.as_milp_options() == {"time_limit": 30.0, "mip_rel_gap": 0.01}


class TestSolveIapOptimal:
    def test_tiny_instance_optimal_zone_map(self, tiny_instance):
        zones = solve_iap_optimal(tiny_instance)
        # The unique zero-cost choice for zones 0-2; zone 3 must go to server 1.
        np.testing.assert_array_equal(zones.zone_to_server, [0, 1, 2, 1])
        assert zones.algorithm.startswith("optimal")
        assert not zones.capacity_exceeded

    def test_objective_not_worse_than_greedy(self, small_instance):
        cost = initial_cost_matrix(small_instance)

        def total_cost(zone_to_server):
            return cost[zone_to_server, np.arange(small_instance.num_zones)].sum()

        optimal = solve_iap_optimal(small_instance)
        greedy = assign_zones_greedy(small_instance)
        assert total_cost(optimal.zone_to_server) <= total_cost(greedy.zone_to_server) + 1e-9

    def test_respects_capacities(self, tight_instance):
        zones = solve_iap_optimal(tight_instance)
        loads = zones.server_zone_loads(tight_instance)
        assert (loads <= tight_instance.server_capacities * (1 + 1e-6)).all()

    def test_infeasible_raises(self, overloaded_instance):
        with pytest.raises(OptimalityError):
            solve_iap_optimal(overloaded_instance)


class TestSolveRapOptimal:
    def test_improves_on_direct_connection(self, tiny_instance):
        zones = solve_iap_optimal(tiny_instance)
        # Force zone 3 onto server 0 to create clients needing the mesh.
        forced = zones.zone_to_server.copy()
        forced[3] = 0
        from repro.core.assignment import ZoneAssignment

        assignment = solve_rap_optimal(tiny_instance, ZoneAssignment(zone_to_server=forced))
        assert assignment.pqos(tiny_instance) == pytest.approx(1.0)
        assert validate_assignment(tiny_instance, assignment).ok


class TestSolveCapOptimal:
    def test_tiny_instance_full_qos(self, tiny_instance):
        assignment = solve_cap_optimal(tiny_instance)
        assert assignment.pqos(tiny_instance) == pytest.approx(1.0)
        assert assignment.algorithm == "optimal"
        assert validate_assignment(tiny_instance, assignment).ok

    def test_not_worse_than_best_heuristic(self, small_instance):
        optimal = solve_cap_optimal(small_instance)
        heuristic = solve_cap(small_instance, "grez-grec", seed=0)
        assert optimal.pqos(small_instance) >= heuristic.pqos(small_instance) - 1e-9

    def test_runtime_recorded(self, tiny_instance):
        assert solve_cap_optimal(tiny_instance).runtime_seconds > 0.0

    def test_infeasible_capacity_raises(self):
        with pytest.raises(OptimalityError):
            solve_cap_optimal(make_tiny_instance(capacities=(25.0, 25.0, 25.0)))
