"""Tests for repro.core.costs — the IAP and RAP cost matrices (Equations 3 and 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.costs import (
    delays_to_targets,
    initial_cost_matrix,
    qos_indicator,
    refined_cost_columns,
    refined_cost_matrix,
)


class TestInitialCostMatrix:
    def test_known_values(self, tiny_instance):
        cost = initial_cost_matrix(tiny_instance)  # (servers, zones)
        assert cost.shape == (3, 4)
        # Zone 0 on server 0: both clients within 100 ms → 0 misses;
        # on servers 1, 2: both miss.
        np.testing.assert_allclose(cost[:, 0], [0, 2, 2])
        # Zone 3 (clients at 120/60/300 ms): misses on servers 0 and 2 only.
        np.testing.assert_allclose(cost[:, 3], [2, 0, 2])

    def test_cost_counts_clients_not_bandwidth(self, tiny_instance):
        cost = initial_cost_matrix(tiny_instance)
        assert cost.max() <= tiny_instance.zone_populations().max()
        assert (cost >= 0).all()

    def test_cost_depends_on_delay_bound(self, tiny_instance):
        generous = initial_cost_matrix(tiny_instance.with_delay_bound(1000.0))
        np.testing.assert_allclose(generous, 0.0)
        strict = initial_cost_matrix(tiny_instance.with_delay_bound(10.0))
        np.testing.assert_allclose(strict.sum(axis=0), 3 * tiny_instance.zone_populations())

    def test_boundary_is_inclusive(self, tiny_instance):
        # A delay exactly equal to D satisfies QoS ("> D" counts as a miss).
        cost = initial_cost_matrix(tiny_instance.with_delay_bound(50.0))
        np.testing.assert_allclose(cost[0, 0], 0.0)


class TestRefinedCostMatrix:
    def test_known_values(self, tiny_instance):
        zone_to_server = np.array([0, 1, 2, 0])  # zone 3 hosted by server 0
        cost = refined_cost_matrix(tiny_instance, zone_to_server)  # (servers, clients)
        assert cost.shape == (3, 8)
        # Client 6 (zone 3, target server 0):
        #   contact 0: 120 + 0 - 100 = 20
        #   contact 1: 60 + 30 - 100 = 0 (within bound → clamped to 0)
        #   contact 2: 300 + 40 - 100 = 240
        np.testing.assert_allclose(cost[:, 6], [20.0, 0.0, 240.0])
        # Client 0 (zone 0, target 0) is fine directly.
        assert cost[0, 0] == 0.0

    def test_all_non_negative(self, tiny_instance):
        cost = refined_cost_matrix(tiny_instance, np.array([0, 1, 2, 1]))
        assert (cost >= 0).all()

    def test_shape_validation(self, tiny_instance):
        with pytest.raises(ValueError):
            refined_cost_matrix(tiny_instance, np.array([0, 1]))
        with pytest.raises(ValueError):
            refined_cost_matrix(tiny_instance, np.array([0, 1, 2, 9]))


class TestRefinedCostColumns:
    def test_matches_full_matrix_slice(self, tiny_instance):
        zone_to_server = np.array([0, 1, 2, 0])
        full = refined_cost_matrix(tiny_instance, zone_to_server)
        for clients in ([6, 7], [0], [7, 2, 4], list(range(8))):
            clients = np.asarray(clients)
            columns = refined_cost_columns(tiny_instance, zone_to_server, clients)
            # Bit-wise equality: GreC's desirability must not change when the
            # dense matrix is no longer materialised.
            np.testing.assert_array_equal(columns, full[:, clients])

    def test_matches_slice_on_small_instance(self, small_instance):
        rng = np.random.default_rng(3)
        zone_to_server = rng.integers(0, small_instance.num_servers, small_instance.num_zones)
        clients = rng.choice(small_instance.num_clients, size=17, replace=False)
        np.testing.assert_array_equal(
            refined_cost_columns(small_instance, zone_to_server, clients),
            refined_cost_matrix(small_instance, zone_to_server)[:, clients],
        )

    def test_empty_client_list(self, tiny_instance):
        columns = refined_cost_columns(tiny_instance, np.array([0, 1, 2, 0]), np.array([], int))
        assert columns.shape == (3, 0)

    def test_validation(self, tiny_instance):
        with pytest.raises(ValueError):
            refined_cost_columns(tiny_instance, np.array([0, 1]), np.array([0]))
        with pytest.raises(ValueError):
            refined_cost_columns(tiny_instance, np.array([0, 1, 2, 9]), np.array([0]))
        with pytest.raises(ValueError):
            refined_cost_columns(tiny_instance, np.array([0, 1, 2, 0]), np.array([99]))
        with pytest.raises(ValueError):
            refined_cost_columns(tiny_instance, np.array([0, 1, 2, 0]), np.array([[0, 1]]))


class TestInitialCostAggregation:
    def test_matches_scatter_add_reference(self, small_instance):
        # The sort + reduceat segment reduction must agree exactly with the
        # np.add.at scatter-add it replaced.
        reference = np.zeros((small_instance.num_zones, small_instance.num_servers))
        over = (
            small_instance.client_server_delays > small_instance.delay_bound
        ).astype(np.float64)
        np.add.at(reference, small_instance.client_zones, over)
        np.testing.assert_array_equal(initial_cost_matrix(small_instance), reference.T)

    def test_empty_zones_contribute_zero(self):
        from tests.conftest import make_tiny_instance

        instance = make_tiny_instance()
        # Rebuild with extra trailing zones that no client belongs to.
        from repro.core.problem import CAPInstance

        padded = CAPInstance(
            client_server_delays=instance.client_server_delays,
            server_server_delays=instance.server_server_delays,
            client_zones=instance.client_zones,
            client_demands=instance.client_demands,
            server_capacities=instance.server_capacities,
            delay_bound=instance.delay_bound,
            num_zones=instance.num_zones + 3,
        )
        cost = initial_cost_matrix(padded)
        assert cost.shape == (3, 7)
        np.testing.assert_array_equal(cost[:, 4:], 0.0)
        np.testing.assert_array_equal(cost[:, :4], initial_cost_matrix(instance))


class TestDelaysToTargets:
    def test_direct_delays(self, tiny_instance):
        zone_to_server = np.array([0, 1, 2, 0])
        delays = delays_to_targets(tiny_instance, zone_to_server)
        np.testing.assert_allclose(delays, [50, 50, 50, 50, 50, 50, 120, 120])

    def test_forwarded_delays(self, tiny_instance):
        zone_to_server = np.array([0, 1, 2, 0])
        contacts = np.array([0, 0, 1, 1, 2, 2, 1, 0])
        delays = delays_to_targets(tiny_instance, zone_to_server, contacts)
        # Client 6 forwards through server 1: 60 + d(s1, s0)=30 → 90.
        assert delays[6] == pytest.approx(90.0)
        # Client 7 stays direct on its target server 0: 120.
        assert delays[7] == pytest.approx(120.0)

    def test_contact_equals_target_matches_direct(self, tiny_instance):
        zone_to_server = np.array([0, 1, 2, 0])
        contacts = zone_to_server[tiny_instance.client_zones]
        np.testing.assert_allclose(
            delays_to_targets(tiny_instance, zone_to_server, contacts),
            delays_to_targets(tiny_instance, zone_to_server),
        )

    def test_contact_shape_validation(self, tiny_instance):
        with pytest.raises(ValueError):
            delays_to_targets(tiny_instance, np.array([0, 1, 2, 0]), np.array([0, 1]))


class TestQosIndicator:
    def test_threshold_inclusive(self, tiny_instance):
        delays = np.array([99.0, 100.0, 100.01, 400.0, 0.0, 50.0, 100.0, 250.0])
        mask = qos_indicator(tiny_instance, delays)
        np.testing.assert_array_equal(
            mask, [True, True, False, False, True, True, True, False]
        )

    def test_shape_validation(self, tiny_instance):
        with pytest.raises(ValueError):
            qos_indicator(tiny_instance, np.array([1.0, 2.0]))
