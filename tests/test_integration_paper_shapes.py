"""Integration tests asserting the *shape* of the paper's headline results.

These run the full pipeline (topology → scenario → algorithms → metrics) on a
moderately sized configuration and check the qualitative relations reported in
the paper's Section 4 (orderings and trends, not absolute numbers).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.baselines  # noqa: F401
from repro.core.problem import CAPInstance
from repro.core.registry import solve as registry_solve
from repro.core.two_phase import solve_cap
from repro.core.validation import validate_assignment
from repro.experiments.config import config_from_label
from repro.experiments.runner import run_replications
from repro.measurement.estimators import idmaps_estimator, king_estimator
from repro.world.scenario import build_scenario

#: Mid-size configuration: large enough for stable orderings, small enough for CI.
LABEL = "10s-30z-400c-200cp"
PAPER_ALGOS = ["ranz-virc", "ranz-grec", "grez-virc", "grez-grec"]


@pytest.fixture(scope="module")
def replicated():
    config = config_from_label(LABEL)
    return run_replications(config, PAPER_ALGOS, num_runs=3, seed=0)


class TestTable1Shape:
    def test_algorithm_ordering(self, replicated):
        """GreZ-GreC ≥ GreZ-VirC > RanZ-* — the paper's central claim."""
        pqos = {a: replicated.pqos(a) for a in PAPER_ALGOS}
        assert pqos["grez-grec"] >= pqos["grez-virc"] - 1e-9
        assert pqos["grez-virc"] > pqos["ranz-grec"]
        assert pqos["grez-virc"] > pqos["ranz-virc"]
        assert pqos["grez-grec"] > pqos["ranz-grec"]

    def test_delay_aware_initial_assignment_dominates(self, replicated):
        """Delay awareness in the *initial* phase matters more than in the refined one."""
        gain_initial = replicated.pqos("grez-virc") - replicated.pqos("ranz-virc")
        gain_refined = replicated.pqos("ranz-grec") - replicated.pqos("ranz-virc")
        assert gain_initial > gain_refined

    def test_virc_lowest_utilization_ranzgrec_highest(self, replicated):
        util = {a: replicated.utilization(a) for a in PAPER_ALGOS}
        assert util["grez-virc"] <= util["grez-grec"] + 1e-9
        assert util["ranz-virc"] <= util["ranz-grec"] + 1e-9
        assert util["ranz-grec"] >= max(util["grez-virc"], util["ranz-virc"])

    def test_all_solutions_feasible(self):
        config = config_from_label(LABEL)
        scenario = build_scenario(config, seed=3)
        instance = CAPInstance.from_scenario(scenario)
        for algorithm in PAPER_ALGOS:
            assignment = solve_cap(instance, algorithm, seed=0)
            assert validate_assignment(instance, assignment).ok


class TestOptimalityGap:
    def test_grez_grec_close_to_milp_optimum(self):
        """Table 1: GreZ-GreC lands within a few percent of the exact optimum."""
        config = config_from_label("5s-15z-200c-100cp")
        gaps = []
        for seed in range(3):
            scenario = build_scenario(config, seed=seed)
            instance = CAPInstance.from_scenario(scenario)
            heuristic = solve_cap(instance, "grez-grec", seed=seed)
            optimal = registry_solve(instance, "optimal", seed=seed)
            gaps.append(optimal.pqos(instance) - heuristic.pqos(instance))
        assert np.mean(gaps) >= -1e-9  # optimum is an upper bound
        assert np.mean(gaps) < 0.06  # heuristic is close (paper: 0.82 vs 0.83)


class TestCorrelationShape:
    def test_grez_benefits_from_correlation_ranz_does_not(self):
        """Figure 5(a): GreZ-based pQoS rises with δ; RanZ-based stays flat."""
        config_low = config_from_label(LABEL, correlation=0.0, delay_bound_ms=200.0)
        config_high = config_from_label(LABEL, correlation=1.0, delay_bound_ms=200.0)
        low = run_replications(config_low, ["grez-virc", "ranz-virc"], num_runs=3, seed=1)
        high = run_replications(config_high, ["grez-virc", "ranz-virc"], num_runs=3, seed=1)
        grez_gain = high.pqos("grez-virc") - low.pqos("grez-virc")
        ranz_gain = high.pqos("ranz-virc") - low.pqos("ranz-virc")
        assert grez_gain > 0.05
        assert grez_gain > ranz_gain + 0.03


class TestClusteredDistributionShape:
    def test_virtual_clustering_raises_utilization(self):
        """Figure 6(b): hot zones in the virtual world inflate bandwidth needs."""
        base = config_from_label(LABEL)
        clustered = config_from_label(LABEL, virtual_distribution="clustered")
        uniform_result = run_replications(base, ["grez-grec"], num_runs=2, seed=2)
        clustered_result = run_replications(clustered, ["grez-grec"], num_runs=2, seed=2)
        assert (
            clustered_result.utilization("grez-grec")
            > uniform_result.utilization("grez-grec") - 1e-9
        )


class TestImperfectInputShape:
    def test_grez_grec_degrades_gracefully_with_error(self):
        """Table 4: e=1.2 costs a few points; e=2 costs more; both stay above RanZ."""
        config = config_from_label(LABEL)
        perfect = run_replications(config, ["grez-grec", "ranz-virc"], num_runs=3, seed=4)
        king = run_replications(
            config, ["grez-grec"], num_runs=3, seed=4, estimator=king_estimator()
        )
        idmaps = run_replications(
            config, ["grez-grec", "grez-virc"], num_runs=3, seed=4, estimator=idmaps_estimator()
        )
        assert king.pqos("grez-grec") <= perfect.pqos("grez-grec") + 0.02
        assert idmaps.pqos("grez-grec") <= king.pqos("grez-grec") + 0.02
        # Even with the worst estimator, delay-aware beats delay-oblivious.
        assert idmaps.pqos("grez-grec") > perfect.pqos("ranz-virc")
        assert idmaps.pqos("grez-virc") > perfect.pqos("ranz-virc")


class TestRuntimeShape:
    def test_heuristics_are_subsecond(self):
        """Section 4.2: all proposed heuristics run in well under a second."""
        config = config_from_label("20s-80z-1000c-500cp")
        scenario = build_scenario(config, seed=0)
        instance = CAPInstance.from_scenario(scenario)
        for algorithm in PAPER_ALGOS:
            assignment = solve_cap(instance, algorithm, seed=0)
            assert assignment.runtime_seconds < 1.0
