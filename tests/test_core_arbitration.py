"""Tests for repro.core.arbitration — cross-shard capacity arbiters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.arbitration import (
    ARBITER_NAMES,
    ProportionalArbiter,
    RegretArbiter,
    ShardSignal,
    StaticArbiter,
    check_slices,
    make_arbiter,
)


def _signal(shard_id, demand, capacities, loads=None, **extra):
    capacities = np.asarray(capacities, dtype=np.float64)
    return ShardSignal(
        shard_id=shard_id,
        total_demand=float(demand),
        capacities=capacities,
        server_loads=np.zeros_like(capacities) if loads is None else np.asarray(loads),
        pqos=1.0,
        capacity_exceeded=False,
        **extra,
    )


class TestMakeArbiter:
    def test_names_resolve(self):
        for name in ARBITER_NAMES:
            arbiter = make_arbiter(name)
            assert arbiter.name == name

    def test_instance_passes_through(self):
        arbiter = ProportionalArbiter(min_slice_fraction=0.1)
        assert make_arbiter(arbiter) is arbiter

    def test_knob_overrides(self):
        arbiter = make_arbiter("proportional", min_slice_fraction=0.2, rebalance_threshold=0.1)
        assert arbiter.min_slice_fraction == 0.2
        assert arbiter.rebalance_threshold == 0.1

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown arbiter"):
            make_arbiter("nonsense")

    def test_bad_knobs_rejected(self):
        with pytest.raises(ValueError):
            ProportionalArbiter(min_slice_fraction=0.0)
        with pytest.raises(ValueError):
            ProportionalArbiter(rebalance_threshold=-0.1)


class TestCheckSlices:
    def test_accepts_conserving_positive_slices(self):
        caps = np.array([10.0, 20.0])
        slices = np.array([[4.0, 15.0], [6.0, 5.0]])
        out = check_slices(slices, caps, 2)
        assert np.array_equal(out, slices)

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValueError, match="shape"):
            check_slices(np.ones((2, 3)), np.ones(2), 2)

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError, match="positive"):
            check_slices(np.array([[1.0, 0.0], [0.0, 1.0]]), np.ones(2), 2)

    def test_rejects_non_conserving(self):
        with pytest.raises(ValueError, match="conservation"):
            check_slices(np.array([[1.0, 1.0], [1.0, 1.5]]), np.full(2, 2.0), 2)


class TestStaticArbiter:
    def test_never_rebalances(self):
        caps = np.array([10.0, 10.0])
        signals = [_signal(0, 100.0, caps / 2), _signal(1, 1.0, caps / 2)]
        assert StaticArbiter().arbitrate(caps, signals) is None


class TestProportionalArbiter:
    def test_slices_follow_total_demand(self):
        caps = np.array([10.0, 30.0])
        signals = [_signal(0, 3.0, caps / 2), _signal(1, 1.0, caps / 2)]
        slices = ProportionalArbiter(min_slice_fraction=0.01).arbitrate(caps, signals)
        assert slices is not None
        assert np.allclose(slices.sum(axis=0), caps, rtol=1e-12)
        # Shard 0 has 3x the demand -> close to 3x the slice on every server
        # (softened slightly by the minimum-slice floor).
        assert (slices[0] > 2.5 * slices[1]).all()

    def test_zero_demand_falls_back_to_equal_split(self):
        caps = np.array([8.0, 8.0])
        signals = [_signal(0, 0.0, caps / 2), _signal(1, 0.0, caps / 2)]
        slices = ProportionalArbiter().arbitrate(caps, signals)
        # Equal split == the current slices -> no shift -> stand pat.
        assert slices is None

    def test_min_slice_floor_protects_idle_shard(self):
        caps = np.array([100.0])
        signals = [_signal(0, 1000.0, np.array([50.0])), _signal(1, 0.0, np.array([50.0]))]
        slices = ProportionalArbiter(min_slice_fraction=0.1).arbitrate(caps, signals)
        assert slices[1][0] == pytest.approx(10.0)

    def test_floor_capped_at_equal_split(self):
        caps = np.array([100.0])
        signals = [
            _signal(0, 5.0, np.array([30.0])),
            _signal(1, 5.0, np.array([30.0])),
            _signal(2, 5.0, np.array([40.0])),
        ]
        # An infeasible floor (3 x 0.5 > 1) is capped at 1/num_shards.
        slices = ProportionalArbiter(min_slice_fraction=0.5).arbitrate(caps, signals)
        assert np.allclose(slices[:, 0], 100.0 / 3)

    def test_hysteresis_suppresses_small_shifts(self):
        caps = np.array([100.0])
        signals = [
            _signal(0, 51.0, np.array([50.0])),
            _signal(1, 49.0, np.array([50.0])),
        ]
        eager = ProportionalArbiter(min_slice_fraction=0.01, rebalance_threshold=0.0)
        damped = ProportionalArbiter(min_slice_fraction=0.01, rebalance_threshold=0.05)
        assert eager.arbitrate(caps, signals) is not None
        assert damped.arbitrate(caps, signals) is None


class TestRegretArbiter:
    def test_requires_zone_costs(self):
        caps = np.array([10.0, 10.0])
        signals = [_signal(0, 5.0, caps / 2), _signal(1, 5.0, caps / 2)]
        assert RegretArbiter.needs_zone_costs
        with pytest.raises(ValueError, match="zone_costs"):
            RegretArbiter().arbitrate(caps, signals)

    def test_capacity_follows_zone_preferences(self):
        # Two servers, two shards.  Shard 0's zones are cheap on server 0 and
        # expensive on server 1; shard 1 is the mirror image.  The pooled
        # max-regret placement sends each shard's zones home, so each shard's
        # slice concentrates on its preferred server.
        caps = np.array([10.0, 10.0])
        zone_costs_0 = np.array([[0.0, 0.0], [5.0, 5.0]])  # (servers, zones)
        zone_costs_1 = np.array([[5.0, 5.0], [0.0, 0.0]])
        signals = [
            _signal(
                0, 8.0, caps / 2,
                zone_demands=np.array([4.0, 4.0]), zone_costs=zone_costs_0,
            ),
            _signal(
                1, 8.0, caps / 2,
                zone_demands=np.array([4.0, 4.0]), zone_costs=zone_costs_1,
            ),
        ]
        slices = RegretArbiter(min_slice_fraction=0.05).arbitrate(caps, signals)
        assert slices is not None
        assert np.allclose(slices.sum(axis=0), caps, rtol=1e-12)
        assert slices[0, 0] > slices[1, 0]  # shard 0 owns most of server 0
        assert slices[1, 1] > slices[0, 1]  # shard 1 owns most of server 1

    def test_backends_agree(self):
        rng = np.random.default_rng(5)
        caps = rng.uniform(5.0, 15.0, size=4)
        signals = []
        for shard in range(3):
            zones = 6
            signals.append(
                _signal(
                    shard,
                    10.0,
                    caps / 3,
                    zone_demands=rng.uniform(0.5, 2.0, size=zones),
                    zone_costs=rng.uniform(0.0, 10.0, size=(4, zones)),
                )
            )
        vec = RegretArbiter(solver_backend="vectorized").arbitrate(caps, signals)
        loop = RegretArbiter(solver_backend="loop").arbitrate(caps, signals)
        assert np.array_equal(vec, loop)


class TestArbitrateContract:
    @pytest.mark.parametrize("name", ["proportional", "regret"])
    def test_output_always_passes_check_slices(self, name):
        rng = np.random.default_rng(17)
        for trial in range(10):
            num_shards = int(rng.integers(1, 5))
            num_servers = int(rng.integers(1, 6))
            caps = rng.uniform(1.0, 20.0, size=num_servers)
            current = np.tile(caps / num_shards, (num_shards, 1))
            signals = [
                _signal(
                    s,
                    float(rng.uniform(0.0, 50.0)),
                    current[s],
                    zone_demands=rng.uniform(0.1, 3.0, size=4),
                    zone_costs=rng.uniform(0.0, 5.0, size=(num_servers, 4)),
                )
                for s in range(num_shards)
            ]
            slices = make_arbiter(name).arbitrate(caps, signals)
            if slices is not None:
                check_slices(slices, caps, num_shards)
