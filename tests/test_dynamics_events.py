"""Tests for repro.dynamics.events — churn batches and their application."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.events import ChurnBatch, apply_churn
from repro.world.clients import ClientPopulation


@pytest.fixture()
def population():
    return ClientPopulation(
        nodes=np.array([10, 11, 12, 13, 14, 15]),
        zones=np.array([0, 0, 1, 1, 2, 2]),
    )


class TestChurnBatch:
    def test_counts(self):
        batch = ChurnBatch(
            join_nodes=np.array([1, 2]),
            join_zones=np.array([0, 1]),
            leave_indices=np.array([3]),
            move_indices=np.array([0, 1]),
            move_zones=np.array([2, 2]),
        )
        assert batch.num_joins == 2
        assert batch.num_leaves == 1
        assert batch.num_moves == 2
        assert "2 joins" in batch.summary()

    def test_empty_batch_defaults(self):
        batch = ChurnBatch()
        assert batch.num_joins == batch.num_leaves == batch.num_moves == 0

    def test_parallel_array_validation(self):
        with pytest.raises(ValueError):
            ChurnBatch(join_nodes=np.array([1, 2]), join_zones=np.array([0]))
        with pytest.raises(ValueError):
            ChurnBatch(move_indices=np.array([1]), move_zones=np.array([0, 1]))

    def test_leave_and_move_overlap_rejected(self):
        with pytest.raises(ValueError):
            ChurnBatch(
                leave_indices=np.array([2, 3]),
                move_indices=np.array([3]),
                move_zones=np.array([0]),
            )


class TestApplyChurn:
    def test_joins_appended_at_end(self, population):
        batch = ChurnBatch(join_nodes=np.array([99, 98]), join_zones=np.array([2, 0]))
        result = apply_churn(population, batch)
        assert result.population.num_clients == 8
        np.testing.assert_array_equal(result.population.nodes[-2:], [99, 98])
        np.testing.assert_array_equal(result.new_client_indices, [6, 7])
        np.testing.assert_array_equal(result.old_to_new, np.arange(6))

    def test_leaves_remove_and_remap(self, population):
        batch = ChurnBatch(leave_indices=np.array([1, 4]))
        result = apply_churn(population, batch)
        assert result.population.num_clients == 4
        np.testing.assert_array_equal(result.population.nodes, [10, 12, 13, 15])
        np.testing.assert_array_equal(result.old_to_new, [0, -1, 1, 2, -1, 3])
        assert result.new_client_indices.size == 0

    def test_moves_change_zone_before_leaving(self, population):
        batch = ChurnBatch(
            move_indices=np.array([0]),
            move_zones=np.array([2]),
            leave_indices=np.array([5]),
        )
        result = apply_churn(population, batch)
        assert result.population.zones[0] == 2
        assert result.population.num_clients == 5

    def test_combined_join_leave_move(self, population):
        batch = ChurnBatch(
            join_nodes=np.array([50]),
            join_zones=np.array([1]),
            leave_indices=np.array([0]),
            move_indices=np.array([5]),
            move_zones=np.array([0]),
        )
        result = apply_churn(population, batch)
        assert result.population.num_clients == 6
        # Mover (old index 5) survives at new index 4 with its new zone.
        assert result.old_to_new[5] == 4
        assert result.population.zones[4] == 0
        # Joined client sits last.
        np.testing.assert_array_equal(result.new_client_indices, [5])

    def test_out_of_range_indices_rejected(self, population):
        with pytest.raises(ValueError):
            apply_churn(population, ChurnBatch(leave_indices=np.array([100])))
        with pytest.raises(ValueError):
            apply_churn(
                population,
                ChurnBatch(move_indices=np.array([100]), move_zones=np.array([0])),
            )

    def test_original_population_untouched(self, population):
        batch = ChurnBatch(leave_indices=np.array([0, 1, 2]))
        apply_churn(population, batch)
        assert population.num_clients == 6
