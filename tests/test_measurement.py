"""Tests for repro.measurement — delay-estimation error models (Table 4 substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.measurement.error import (
    IDMAPS,
    KING,
    PERFECT,
    ErrorModel,
    apply_multiplicative_error,
)
from repro.measurement.estimators import (
    DelayEstimator,
    idmaps_estimator,
    king_estimator,
    perfect_estimator,
)


class TestErrorModel:
    def test_builtin_models_match_paper(self):
        assert PERFECT.factor == 1.0 and PERFECT.is_perfect
        assert KING.factor == 1.2 and KING.name == "king"
        assert IDMAPS.factor == 2.0 and IDMAPS.name == "idmaps"

    def test_factor_below_one_rejected(self):
        with pytest.raises(ValueError):
            ErrorModel(0.5)

    def test_perturb_bounds(self):
        delays = np.linspace(10, 500, 200)
        noisy = ErrorModel(2.0).perturb(delays, seed=0)
        assert (noisy >= delays / 2.0 - 1e-9).all()
        assert (noisy <= delays * 2.0 + 1e-9).all()

    def test_perfect_perturb_is_identity_copy(self):
        delays = np.array([1.0, 2.0, 3.0])
        out = PERFECT.perturb(delays, seed=0)
        np.testing.assert_array_equal(out, delays)
        assert out is not delays

    def test_zero_delays_stay_zero(self):
        delays = np.array([0.0, 100.0, 0.0])
        noisy = ErrorModel(2.0).perturb(delays, seed=1)
        assert noisy[0] == 0.0 and noisy[2] == 0.0

    def test_deterministic(self):
        delays = np.arange(1.0, 50.0)
        a = KING.perturb(delays, seed=7)
        b = KING.perturb(delays, seed=7)
        np.testing.assert_allclose(a, b)


class TestApplyMultiplicativeError:
    def test_shape_preserved(self):
        delays = np.ones((4, 5)) * 100
        noisy = apply_multiplicative_error(delays, 1.5, seed=0)
        assert noisy.shape == (4, 5)

    def test_larger_factor_more_spread(self):
        delays = np.full(5000, 100.0)
        mild = apply_multiplicative_error(delays, 1.2, seed=0)
        wild = apply_multiplicative_error(delays, 2.0, seed=0)
        assert wild.std() > mild.std()

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            apply_multiplicative_error(np.array([-1.0]), 1.2)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            apply_multiplicative_error(np.array([1.0]), 0.9)


class TestDelayEstimator:
    def test_factories(self):
        assert perfect_estimator().model.is_perfect
        assert king_estimator().model.factor == 1.2
        assert idmaps_estimator().model.factor == 2.0
        assert king_estimator().name == "king"

    def test_perfect_estimate_returns_same_instance(self, tiny_instance):
        assert perfect_estimator().estimate(tiny_instance) is tiny_instance

    def test_estimate_replaces_delays_only(self, tiny_instance):
        estimated = king_estimator().estimate(tiny_instance, seed=0)
        assert estimated is not tiny_instance
        assert not np.array_equal(
            estimated.client_server_delays, tiny_instance.client_server_delays
        )
        np.testing.assert_array_equal(estimated.client_zones, tiny_instance.client_zones)
        np.testing.assert_allclose(estimated.client_demands, tiny_instance.client_demands)
        assert estimated.delay_bound == tiny_instance.delay_bound

    def test_server_mesh_optionally_exact(self, tiny_instance):
        estimator = DelayEstimator(KING, perturb_server_mesh=False)
        estimated = estimator.estimate(tiny_instance, seed=0)
        np.testing.assert_allclose(
            estimated.server_server_delays, tiny_instance.server_server_delays
        )

    def test_estimated_delays_within_error_bounds(self, tiny_instance):
        estimated = idmaps_estimator().estimate(tiny_instance, seed=3)
        true = tiny_instance.client_server_delays
        assert (estimated.client_server_delays >= true / 2.0 - 1e-9).all()
        assert (estimated.client_server_delays <= true * 2.0 + 1e-9).all()

    def test_deterministic(self, tiny_instance):
        a = king_estimator().estimate(tiny_instance, seed=5)
        b = king_estimator().estimate(tiny_instance, seed=5)
        np.testing.assert_allclose(a.client_server_delays, b.client_server_delays)
