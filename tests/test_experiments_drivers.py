"""Tests for the per-table / per-figure experiment drivers (small, fast runs)."""

from __future__ import annotations

import numpy as np
import pytest

import repro.baselines  # noqa: F401
from repro.dynamics.churn import ChurnSpec
from repro.experiments.ablation import format_ablation, run_ablation
from repro.experiments.baselines_compare import (
    format_baseline_comparison,
    run_baseline_comparison,
    run_centralization_comparison,
)
from repro.experiments.figure4 import format_figure4, run_figure4
from repro.experiments.figure5 import format_figure5, run_figure5
from repro.experiments.figure6 import format_figure6, run_figure6
from repro.experiments.runtime import format_runtime, run_runtime
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table3 import format_table3, run_table3
from repro.experiments.table4 import format_table4, run_table4

SMALL_LABEL = "5s-15z-200c-100cp"
ALGOS = ["ranz-virc", "grez-grec"]


class TestTable1Driver:
    def test_small_run_structure(self):
        result = run_table1(
            labels=[SMALL_LABEL],
            algorithms=ALGOS,
            num_runs=2,
            seed=0,
            include_optimal=True,
            optimal_labels=[SMALL_LABEL],
        )
        assert list(result.results) == [SMALL_LABEL]
        assert result.optimal_labels == [SMALL_LABEL]
        summaries = result.results[SMALL_LABEL].summaries
        assert set(summaries) == {"ranz-virc", "grez-grec", "optimal"}
        # Headline ordering of the paper on this configuration.
        assert summaries["grez-grec"].pqos.mean >= summaries["ranz-virc"].pqos.mean
        assert summaries["optimal"].pqos.mean >= summaries["grez-grec"].pqos.mean - 0.02

    def test_rows_and_formatting(self):
        result = run_table1(
            labels=[SMALL_LABEL], algorithms=ALGOS, num_runs=1, seed=0, include_optimal=False
        )
        rows = result.rows()
        assert len(rows) == 1 and rows[0][0] == SMALL_LABEL
        text = format_table1(result)
        assert "Table 1 (measured)" in text
        assert "Table 1 (paper)" in text
        assert SMALL_LABEL in text

    def test_optimal_skipped_for_excluded_labels(self):
        result = run_table1(
            labels=[SMALL_LABEL], algorithms=ALGOS, num_runs=1, seed=0, optimal_labels=[]
        )
        assert "optimal" not in result.results[SMALL_LABEL].summaries


class TestFigure4Driver:
    def test_cdfs_on_custom_grid(self):
        grid = np.linspace(250, 500, 6)
        result = run_figure4(
            label=SMALL_LABEL, algorithms=ALGOS, num_runs=1, seed=0, grid=grid
        )
        assert set(result.cdfs) == set(ALGOS)
        for cdf in result.cdfs.values():
            np.testing.assert_allclose(cdf.grid, grid)
            assert (np.diff(cdf.values) >= -1e-12).all()
        rows = result.rows()
        assert len(rows) == 6
        text = format_figure4(result)
        assert "Figure 4" in text and "pQoS" in text

    def test_better_algorithm_dominates_cdf(self):
        result = run_figure4(label=SMALL_LABEL, num_runs=2, seed=0)
        grez = result.cdfs["grez-grec"]
        ranz = result.cdfs["ranz-virc"]
        # GreZ-GreC's delay CDF should dominate RanZ-VirC's at the delay bound.
        assert grez.at(250.0) >= ranz.at(250.0)


class TestFigure5Driver:
    def test_correlation_sweep(self):
        result = run_figure5(
            label=SMALL_LABEL, correlations=[0.0, 1.0], algorithms=ALGOS, num_runs=2, seed=0
        )
        assert result.correlations == [0.0, 1.0]
        series = result.pqos_series("grez-grec")
        assert len(series) == 2
        # Delay-aware initial assignment benefits from correlation (Fig. 5a shape).
        assert series[1] >= series[0] - 0.05
        rows = result.rows("pqos")
        assert len(rows) == 2 and len(rows[0]) == 1 + len(ALGOS)
        with pytest.raises(ValueError):
            result.rows("latency")
        assert "Figure 5(a)" in format_figure5(result)


class TestFigure6Driver:
    def test_distribution_type_sweep(self):
        result = run_figure6(
            label=SMALL_LABEL, types=[0, 3], algorithms=ALGOS, num_runs=1, seed=0
        )
        assert result.types == [0, 3]
        rows = result.rows("utilization")
        assert len(rows) == 2
        # Virtual-world clustering (type 3) raises utilisation vs type 0 (Fig. 6b shape).
        util_type0 = result.utilization_series("grez-grec")[0]
        util_type3 = result.utilization_series("grez-grec")[1]
        assert util_type3 >= util_type0 - 0.05
        assert "Figure 6" in format_figure6(result)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            run_figure6(label=SMALL_LABEL, types=[9], num_runs=1)


class TestTable3Driver:
    def test_churn_experiment(self):
        result = run_table3(
            label=SMALL_LABEL,
            algorithms=ALGOS,
            num_runs=2,
            seed=0,
            churn=ChurnSpec(num_joins=40, num_leaves=40, num_moves=40),
        )
        assert result.algorithms == ALGOS
        for name in ALGOS:
            assert 0.0 <= result.before[name].mean <= 1.0
            assert 0.0 <= result.after[name].mean <= 1.0
            assert 0.0 <= result.executed[name].mean <= 1.0
        # Re-execution should not be worse than the stale assignment (Table 3 shape).
        assert result.executed["grez-grec"].mean >= result.after["grez-grec"].mean - 0.02
        rows = result.rows()
        assert len(rows) == len(ALGOS)
        text = format_table3(result)
        assert "Table 3 (measured)" in text and "Table 3 (paper)" in text


class TestTable4Driver:
    def test_error_factor_sweep(self):
        result = run_table4(
            label=SMALL_LABEL, error_factors=[1.2, 2.0], algorithms=ALGOS, num_runs=2, seed=0
        )
        assert result.error_factors == [1.2, 2.0]
        for factor in (1.2, 2.0):
            summaries = result.results[factor].summaries
            assert set(summaries) == set(ALGOS)
        # Larger estimation error cannot help the delay-aware heuristic.
        assert (
            result.results[2.0].pqos("grez-grec")
            <= result.results[1.2].pqos("grez-grec") + 0.05
        )
        rows = result.rows()
        assert len(rows) == len(ALGOS) and len(rows[0]) == 3
        text = format_table4(result)
        assert "Table 4 (measured)" in text and "e=1.2" in text


class TestExtensionDrivers:
    def test_ablation(self):
        result = run_ablation(
            label=SMALL_LABEL, variants=["grez-grec", "grez-grec-dynamic"], num_runs=1, seed=0
        )
        rows = result.rows()
        assert len(rows) == 2
        assert "Ablation" in format_ablation(result)

    def test_baseline_comparison(self):
        result = run_baseline_comparison(
            labels=[SMALL_LABEL], solvers=["grez-grec", "load-balance"], num_runs=1, seed=0
        )
        rows = result.rows()
        assert len(rows) == 1
        # grez-grec column >= load-balance column.
        assert rows[0][1] >= rows[0][2] - 0.05
        assert "Baseline comparison" in format_baseline_comparison(result)

    def test_centralization_comparison(self):
        result = run_centralization_comparison(label=SMALL_LABEL, num_runs=2, seed=0)
        assert 0.0 <= result.centralized_pqos.mean <= 1.0
        assert result.distributed_pqos.mean >= result.centralized_pqos.mean - 0.1
        text = format_baseline_comparison(
            run_baseline_comparison(labels=[SMALL_LABEL], solvers=["grez-grec"], num_runs=1),
            result,
        )
        assert "centralised" in text

    def test_runtime(self):
        result = run_runtime(
            labels=[SMALL_LABEL],
            solvers=["grez-grec", "ranz-virc"],
            num_runs=1,
            seed=0,
            optimal_labels=[SMALL_LABEL],
            optimal_time_limit=30.0,
        )
        assert result.labels == [SMALL_LABEL]
        assert "optimal" in result.solvers
        runtimes = result.runtimes[SMALL_LABEL]
        assert all(v >= 0 for v in runtimes.values())
        # Heuristics are much faster than the exact MILP (paper Section 4.2).
        assert runtimes["grez-grec"] <= runtimes["optimal"]
        assert "Runtime" in format_runtime(result)


class TestDynamicsDriver:
    def test_small_run_structure(self):
        from repro.experiments.dynamics import format_dynamics, run_dynamics

        result = run_dynamics(
            label=SMALL_LABEL,
            algorithms=ALGOS,
            num_runs=2,
            seed=0,
            num_epochs=3,
            policy="incremental",
            churn=ChurnSpec(10, 10, 10),
        )
        assert result.algorithms == ALGOS
        assert result.num_epochs == 3 and result.num_runs == 2
        assert result.policy == "incremental"
        for name in ALGOS:
            trajectory = result.trajectory(name)
            assert len(trajectory) == 3
            assert all(0.0 <= v <= 1.0 for v in trajectory)
            for epoch in range(3):
                assert result.adopted[(name, epoch)].count == 2
        text = format_dynamics(result)
        assert "Longitudinal dynamics" in text and SMALL_LABEL in text

    def test_workers_do_not_change_results(self):
        from repro.experiments.dynamics import run_dynamics

        kwargs = dict(
            label=SMALL_LABEL,
            algorithms=["grez-grec"],
            num_runs=2,
            seed=3,
            num_epochs=2,
            policy="warm_start",
            churn=ChurnSpec(10, 10, 10),
        )
        serial = run_dynamics(**kwargs, workers=None)
        parallel = run_dynamics(**kwargs, workers=2)
        for epoch in range(2):
            key = ("grez-grec", epoch)
            assert serial.adopted[key].mean == parallel.adopted[key].mean
            assert serial.after[key].mean == parallel.after[key].mean

    def test_every_k_policy_resolved_name(self):
        from repro.experiments.dynamics import run_dynamics

        result = run_dynamics(
            label=SMALL_LABEL,
            algorithms=["grez-virc"],
            num_runs=1,
            seed=0,
            num_epochs=2,
            policy="every_k_epochs",
            policy_period=2,
            churn=ChurnSpec(5, 5, 5),
        )
        assert result.policy == "every_2_epochs"


class TestControllerDriver:
    def test_small_run_structure(self):
        from repro.dynamics.controller import RebalancePolicy
        from repro.dynamics.infrastructure import ServerChurnSpec
        from repro.dynamics.migration import MigrationCostModel
        from repro.experiments.controller import format_controller, run_controller

        policies = {
            "lazy": RebalancePolicy(target_pqos=0.5),
            "eager": RebalancePolicy(target_pqos=0.99, repair_slack=0.0),
        }
        result = run_controller(
            label=SMALL_LABEL,
            algorithm="grez-grec",
            policies=policies,
            num_runs=2,
            seed=0,
            num_epochs=2,
            churn=ChurnSpec(15, 15, 15),
            server_churn=ServerChurnSpec(num_joins=1, num_leaves=1),
            migration_cost=MigrationCostModel(cost_per_client=1.0),
        )
        assert result.policy_names == ["lazy", "eager"]
        assert result.num_runs == 2 and result.num_epochs == 2
        for name in result.policy_names:
            assert result.stats[(name, "mean_pqos")].count == 2
            assert 0.0 <= result.stats[(name, "mean_pqos")].mean <= 1.0
            assert result.stats[(name, "migration_cost")].mean >= 0.0
        # The eager policy re-executes more and migrates at least as much.
        assert (
            result.stats[("eager", "rebalances")].mean
            >= result.stats[("lazy", "rebalances")].mean
        )
        text = format_controller(result)
        assert "Rebalance controller" in text and SMALL_LABEL in text
        assert "migration cost" in text

    def test_default_policy_ladder_resolves_budget(self):
        from repro.experiments.controller import run_controller

        result = run_controller(
            label=SMALL_LABEL,
            num_runs=1,
            seed=1,
            num_epochs=2,
            churn=ChurnSpec(10, 10, 10),
        )
        assert any("budgeted" in name for name in result.policy_names)
        assert result.migration_cost.cost_per_client == 1.0
        assert result.server_churn is not None

    def test_workers_do_not_change_results(self):
        from repro.experiments.controller import run_controller

        kwargs = dict(
            label=SMALL_LABEL,
            num_runs=2,
            seed=4,
            num_epochs=2,
            churn=ChurnSpec(10, 10, 10),
        )
        serial = run_controller(**kwargs, workers=None)
        parallel = run_controller(**kwargs, workers=2)
        for key, stat in serial.stats.items():
            assert stat.mean == parallel.stats[key].mean

    def test_every_policy_replays_the_same_churn_stream(self):
        """Two identically-configured policies must see identical runs."""
        from repro.dynamics.controller import RebalancePolicy
        from repro.experiments.controller import run_controller

        twin = dict(target_pqos=0.9, repair_slack=0.05)
        result = run_controller(
            label=SMALL_LABEL,
            policies={"a": RebalancePolicy(**twin), "b": RebalancePolicy(**twin)},
            num_runs=2,
            seed=7,
            num_epochs=3,
            churn=ChurnSpec(15, 15, 15),
        )
        for metric in ("mean_pqos", "worst_pqos", "repairs", "rebalances", "migration_cost"):
            assert result.stats[("a", metric)].mean == result.stats[("b", metric)].mean


class TestFederationDriver:
    def test_small_run_structure(self):
        from repro.experiments.federation import format_federation, run_federation

        result = run_federation(
            label=SMALL_LABEL,
            num_shards=2,
            arbiters=["static", "proportional"],
            num_runs=2,
            seed=0,
            num_epochs=2,
        )
        assert result.arbiter_names == ["static", "proportional"]
        assert result.num_shards == 2 and result.num_runs == 2
        assert result.client_weights == (2.0, 1.0)
        for name in result.arbiter_names:
            assert result.stats[(name, "mean_pqos")].count == 2
            assert 0.0 <= result.stats[(name, "worst_shard_pqos")].mean <= 1.0
            assert result.stats[(name, "pqos_spread")].mean >= 0.0
            # The per-shard budget bounds every aggregate epoch's bill by
            # num_shards x budget.
            assert (
                result.stats[(name, "max_epoch_migration_cost")].mean
                <= result.num_shards * result.migration_budget + 1e-9
            )
        text = format_federation(result)
        assert "Federated arbitration" in text and SMALL_LABEL in text
        assert "worst-shard pQoS" in text

    def test_workers_do_not_change_results(self):
        from repro.experiments.federation import run_federation

        kwargs = dict(
            label=SMALL_LABEL,
            num_shards=2,
            arbiters=["static", "proportional"],
            num_runs=2,
            seed=3,
            num_epochs=2,
        )
        serial = run_federation(**kwargs, workers=None)
        parallel = run_federation(**kwargs, workers=2)
        for key, stat in serial.stats.items():
            assert stat.mean == parallel.stats[key].mean

    def test_registry_exposes_federation(self):
        from repro.experiments.registry import get_experiment

        spec = get_experiment("federation")
        assert spec.supports_workers
        assert "shard" in spec.description.lower() or "arbiter" in spec.description.lower()
