"""Tests for repro.io.csvout — CSV output helpers."""

from __future__ import annotations

import csv

import pytest

from repro.io.csvout import rows_to_csv_text, write_csv


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_parent_directories(self, tmp_path):
        path = write_csv(tmp_path / "nested" / "deep" / "out.csv", ["x"], [[1]])
        assert path.exists()

    def test_row_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "bad.csv", ["a", "b"], [[1]])

    def test_empty_rows(self, tmp_path):
        path = write_csv(tmp_path / "empty.csv", ["a"], [])
        assert path.read_text().strip() == "a"


class TestRowsToCsvText:
    def test_header_and_rows(self):
        text = rows_to_csv_text(["a", "b"], [[1, 2]])
        assert text.splitlines() == ["a,b", "1,2"]

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            rows_to_csv_text(["a"], [[1, 2]])

    def test_stringification(self):
        text = rows_to_csv_text(["v"], [[0.5], [True]])
        assert "0.5" in text and "True" in text


class TestCsvAppender:
    def test_streams_rows_incrementally(self, tmp_path):
        from repro.io.csvout import CsvAppender

        path = tmp_path / "stream.csv"
        with CsvAppender(path, ["epoch", "pqos"]) as out:
            out.append([0, 0.9])
            assert path.exists()  # header + first row already on disk mid-stream
            out.append([1, 0.8])
            assert out.rows_written == 2
        lines = path.read_text().strip().splitlines()
        assert lines == ["epoch,pqos", "0,0.9", "1,0.8"]

    def test_row_width_checked(self, tmp_path):
        from repro.io.csvout import CsvAppender

        with CsvAppender(tmp_path / "bad.csv", ["a", "b"]) as out:
            with pytest.raises(ValueError):
                out.append([1])

    def test_requires_context_manager(self, tmp_path):
        from repro.io.csvout import CsvAppender

        appender = CsvAppender(tmp_path / "x.csv", ["a"])
        with pytest.raises(RuntimeError):
            appender.append([1])

    def test_creates_parent_directories(self, tmp_path):
        from repro.io.csvout import CsvAppender

        path = tmp_path / "nested" / "deep" / "out.csv"
        with CsvAppender(path, ["a"]) as out:
            out.append([1])
        assert path.exists()
