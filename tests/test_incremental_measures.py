"""Property tests for the incremental measurement engine.

The contract under test: every number the ``"incremental"`` measurement
backend produces is **bit-identical** to the full-recompute executable
specification — the stash serves the same delays/loads the assignment methods
would compute, the O(churn) carried-point delta equals building the carried
assignment and re-reducing it, and entire ``EpochRecord`` streams agree
field-for-field across churn mixes, repair policies, delay backends and
server churn.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.baselines  # noqa: F401  (registers the baseline solvers)
from repro.core.assignment import Assignment
from repro.core.measures import (
    MEASURE_KEY,
    attach_measures,
    ensure_measures,
    measured_pqos,
    measured_server_loads,
    measured_utilization,
    stash_for,
)
from repro.core.problem import CAPInstance
from repro.core.registry import solve as registry_solve
from repro.core.regret import BACKENDS as SOLVER_BACKENDS
from repro.core.regret import max_regret_assign
from repro.dynamics.churn import ChurnSpec, generate_churn
from repro.dynamics.engine import ChurnSimulator
from repro.dynamics.events import ChurnBatch, apply_churn
from repro.dynamics.federation_engine import FederatedSimulator
from repro.dynamics.infrastructure import ServerChurnSpec
from repro.dynamics.measurement import MEASUREMENT_BACKENDS, carried_qos_count
from repro.dynamics.policies import carry_over_assignment
from repro.metrics.qos import _selection_stats
from repro.world.federation import build_federation
from repro.world.scenario import build_scenario

from tests.conftest import make_small_config

DELAY_BACKENDS = ("dense", "coords", "sparse")


@pytest.fixture(scope="module", params=DELAY_BACKENDS)
def backend_scenario(request):
    """One small scenario per delay backend (module-scoped: built once each)."""
    config = make_small_config(delay_backend=request.param)
    return build_scenario(config, seed=7)


@pytest.fixture(scope="module")
def backend_instance(backend_scenario):
    return CAPInstance.from_scenario(backend_scenario)


# --------------------------------------------------------------------------- #
# Stash primitives: the refined phase's byproducts equal the full recompute.
# --------------------------------------------------------------------------- #
class TestMeasureStash:
    def test_grec_stash_is_bitwise_full_recompute(self, backend_instance):
        assignment = registry_solve(backend_instance, "grez-grec", seed=0)
        stash = stash_for(assignment, backend_instance)
        assert stash is not None
        np.testing.assert_array_equal(stash.delays, assignment.client_delays(backend_instance))
        np.testing.assert_array_equal(
            stash.server_loads, assignment.server_loads(backend_instance)
        )
        assert stash.qos_count == int(assignment.qos_mask(backend_instance).sum())

    def test_measured_wrappers_equal_spec_exactly(self, backend_instance):
        assignment = registry_solve(backend_instance, "grez-grec", seed=0)
        assert measured_pqos(assignment, backend_instance) == assignment.pqos(backend_instance)
        assert measured_utilization(
            assignment, backend_instance
        ) == assignment.resource_utilization(backend_instance)
        np.testing.assert_array_equal(
            measured_server_loads(assignment, backend_instance),
            assignment.server_loads(backend_instance),
        )

    def test_wrong_instance_invalidates_stash(self, backend_scenario, backend_instance):
        """A stash is only served for the exact instance it was measured on."""
        assignment = registry_solve(backend_instance, "grez-grec", seed=0)
        other = CAPInstance.from_scenario(backend_scenario)
        assert stash_for(assignment, other) is None
        # The wrappers silently fall back to the full recompute.
        assert measured_pqos(assignment, other) == assignment.pqos(other)
        assert measured_utilization(assignment, other) == assignment.resource_utilization(other)

    def test_stashless_assignment_falls_back(self, backend_instance):
        assignment = registry_solve(backend_instance, "grez-grec", seed=0)
        bare = Assignment(
            zone_to_server=assignment.zone_to_server,
            contact_of_client=assignment.contact_of_client,
        )
        assert MEASURE_KEY not in bare.metadata
        assert measured_pqos(bare, backend_instance) == bare.pqos(backend_instance)

    def test_ensure_measures_attaches_spec_values(self, backend_instance):
        assignment = registry_solve(backend_instance, "grez-grec", seed=0)
        bare = Assignment(
            zone_to_server=assignment.zone_to_server,
            contact_of_client=assignment.contact_of_client,
        )
        stash = ensure_measures(bare, backend_instance)
        assert stash_for(bare, backend_instance) is stash
        np.testing.assert_array_equal(stash.delays, bare.client_delays(backend_instance))
        np.testing.assert_array_equal(stash.server_loads, bare.server_loads(backend_instance))

    def test_with_algorithm_copy_shares_stash(self, backend_instance):
        assignment = registry_solve(backend_instance, "grez-grec", seed=0)
        relabelled = assignment.with_algorithm("renamed")
        assert stash_for(relabelled, backend_instance) is stash_for(assignment, backend_instance)

    def test_stash_arrays_read_only(self, backend_instance):
        assignment = registry_solve(backend_instance, "grez-grec", seed=0)
        stash = stash_for(assignment, backend_instance)
        with pytest.raises(ValueError):
            stash.delays[0] = 0.0
        with pytest.raises(ValueError):
            stash.server_loads[0] = 0.0

    def test_attach_measures_validates_shapes(self, tiny_instance):
        assignment = registry_solve(tiny_instance, "grez-grec", seed=0)
        with pytest.raises(ValueError):
            attach_measures(assignment, tiny_instance, np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError):
            attach_measures(
                assignment, tiny_instance, np.zeros(tiny_instance.num_clients), np.zeros(99)
            )


# --------------------------------------------------------------------------- #
# The O(churn) carried-point delta equals the carried assignment's full count.
# --------------------------------------------------------------------------- #
def _assert_carried_delta_matches(scenario, batch):
    instance = CAPInstance.from_scenario(scenario)
    assignment = registry_solve(instance, "grez-grec", seed=0)
    stash = ensure_measures(assignment, instance)
    churn = apply_churn(scenario.population, batch)
    new_instance = CAPInstance.from_scenario(scenario.apply_churn_delta(churn))
    carried = carry_over_assignment(assignment, churn, new_instance)
    expected = int(carried.qos_mask(new_instance).sum())
    got = carried_qos_count(stash, assignment, batch, churn, new_instance)
    assert got == expected


CHURN_MIXES = {
    "mixed": ChurnSpec(num_joins=25, num_leaves=25, num_moves=25),
    "join_only": ChurnSpec(num_joins=40, num_leaves=0, num_moves=0),
    "leave_heavy": ChurnSpec(num_joins=0, num_leaves=60, num_moves=0),
    "move_only": ChurnSpec(num_joins=0, num_leaves=0, num_moves=50),
}


class TestCarriedQosCount:
    @pytest.mark.parametrize("mix", sorted(CHURN_MIXES))
    def test_matches_full_count_across_mixes(self, backend_scenario, mix):
        for seed in (1, 2, 3):
            batch = generate_churn(backend_scenario, CHURN_MIXES[mix], seed=seed)
            _assert_carried_delta_matches(backend_scenario, batch)

    def test_emptied_zone(self, backend_scenario):
        """Every client of one zone leaves; its host keeps the (empty) zone."""
        instance = CAPInstance.from_scenario(backend_scenario)
        zone = int(instance.client_zones[0])
        leavers = np.flatnonzero(instance.client_zones == zone)
        assert leavers.size > 0
        batch = ChurnBatch(leave_indices=leavers)
        _assert_carried_delta_matches(backend_scenario, batch)

    def test_empty_batch_is_identity(self, backend_scenario):
        _assert_carried_delta_matches(backend_scenario, ChurnBatch())


# --------------------------------------------------------------------------- #
# End-to-end: full vs incremental EpochRecord streams are field-identical.
# --------------------------------------------------------------------------- #
def _records(scenario, *, policy, measurement_backend, period=0, server_churn=None, epochs=4,
             churn=ChurnSpec(20, 20, 20), algorithms=("grez-grec",)):
    simulator = ChurnSimulator(
        scenario=scenario,
        algorithms=list(algorithms),
        churn_spec=churn,
        server_churn_spec=server_churn,
        seed=123,
        policy=policy,
        policy_period=period,
        measurement_backend=measurement_backend,
    )
    return simulator.run(epochs)


def _assert_streams_equal(scenario, **kwargs):
    full = _records(scenario, measurement_backend="full", **kwargs)
    incremental = _records(scenario, measurement_backend="incremental", **kwargs)
    assert len(full) == len(incremental) > 0
    for a, b in zip(full, incremental):
        assert ChurnSimulator.records_equal(a, b), (a, b)


class TestEngineEquivalence:
    @pytest.mark.parametrize(
        "policy,period",
        [("reexecute", 0), ("incremental", 0), ("warm_start", 0), ("every_k_epochs", 2)],
    )
    def test_policies_all_delay_backends(self, backend_scenario, policy, period):
        _assert_streams_equal(backend_scenario, policy=policy, period=period)

    @pytest.mark.parametrize("policy", ["reexecute", "incremental"])
    def test_server_churn(self, backend_scenario, policy):
        """Fleet re-indexing disables the carried delta; records still agree."""
        spec = ServerChurnSpec(num_joins=1, num_leaves=1, capacity_drift=0.05)
        _assert_streams_equal(backend_scenario, policy=policy, server_churn=spec)

    @pytest.mark.parametrize("mix", sorted(CHURN_MIXES))
    def test_churn_mixes(self, small_scenario, mix):
        _assert_streams_equal(small_scenario, policy="incremental", churn=CHURN_MIXES[mix])

    def test_stashless_baseline_algorithm(self, small_scenario):
        """Solvers that never stash still measure identically (ensure_measures)."""
        _assert_streams_equal(
            small_scenario, policy="reexecute", algorithms=("ranz-virc", "grez-grec")
        )

    def test_invalid_backend_rejected(self, small_scenario):
        assert MEASUREMENT_BACKENDS == ("full", "incremental")
        with pytest.raises(ValueError):
            ChurnSimulator(
                scenario=small_scenario,
                algorithms=["grez-grec"],
                measurement_backend="oracle",
            )

    def test_federated_streams_equal(self):
        config = make_small_config()
        records = {}
        for backend in MEASUREMENT_BACKENDS:
            world = build_federation(config, num_shards=2, seed=31)
            records[backend] = FederatedSimulator(
                world=world,
                algorithms=["grez-grec"],
                churn_spec=ChurnSpec(10, 10, 10),
                seed=5,
                measurement_backend=backend,
            ).run(3)
        assert len(records["full"]) == len(records["incremental"]) > 0
        for a, b in zip(records["full"], records["incremental"]):
            assert a.shard_id == b.shard_id
            assert ChurnSimulator.records_equal(a, b), (a, b)


# --------------------------------------------------------------------------- #
# Delay-aware least_loaded fallback mask.
# --------------------------------------------------------------------------- #
class TestFallbackMask:
    def test_mask_restricts_emergency_placement(self):
        # One item that fits nowhere: server 1 has the most residual capacity
        # but only server 0 is an allowed candidate.
        desirability = np.array([[1.0], [2.0]])
        result = max_regret_assign(
            desirability,
            demands=np.array([10.0]),
            capacities=np.array([5.0, 8.0]),
            fallback_allowed=np.array([[True], [False]]),
        )
        assert result.item_to_server.tolist() == [0]
        assert result.capacity_exceeded

    def test_all_false_column_falls_back_unrestricted(self):
        desirability = np.array([[1.0], [2.0]])
        result = max_regret_assign(
            desirability,
            demands=np.array([10.0]),
            capacities=np.array([5.0, 8.0]),
            fallback_allowed=np.array([[False], [False]]),
        )
        # No allowed server at all: the classic residual-capacity argmax.
        assert result.item_to_server.tolist() == [1]

    def test_skip_fallback_ignores_mask(self):
        result = max_regret_assign(
            np.array([[1.0], [2.0]]),
            demands=np.array([10.0]),
            capacities=np.array([5.0, 8.0]),
            fallback="skip",
            fallback_allowed=np.array([[True], [False]]),
        )
        assert result.item_to_server.tolist() == [-1]

    def test_bad_mask_shape_rejected(self):
        with pytest.raises(ValueError):
            max_regret_assign(
                np.array([[1.0], [2.0]]),
                demands=np.array([10.0]),
                capacities=np.array([5.0, 8.0]),
                fallback_allowed=np.ones((3, 2), dtype=bool),
            )

    @pytest.mark.parametrize("recompute", [False, True])
    def test_solver_backends_agree_under_mask(self, recompute):
        rng = np.random.default_rng(9)
        num_servers, num_items = 6, 40
        desirability = rng.random((num_servers, num_items))
        demands = rng.uniform(1.0, 6.0, num_items)
        capacities = rng.uniform(5.0, 15.0, num_servers)  # scarce: fallback fires
        mask = rng.random((num_servers, num_items)) < 0.5
        results = [
            max_regret_assign(
                desirability,
                demands,
                capacities,
                recompute=recompute,
                backend=backend,
                fallback_allowed=mask,
            )
            for backend in SOLVER_BACKENDS
        ]
        for other in results[1:]:
            np.testing.assert_array_equal(results[0].item_to_server, other.item_to_server)
            np.testing.assert_array_equal(results[0].loads, other.loads)
            assert results[0].capacity_exceeded == other.capacity_exceeded


# --------------------------------------------------------------------------- #
# Selection-based qos_report statistics match numpy's sort-based reference.
# --------------------------------------------------------------------------- #
class TestSelectionStats:
    def test_matches_numpy_randomized(self):
        rng = np.random.default_rng(0)
        for _ in range(300):
            n = int(rng.integers(1, 250))
            delays = rng.random(n) * float(rng.choice([1.0, 100.0, 1e6]))
            if rng.random() < 0.3:
                delays = np.round(delays, 2)  # exercise ties
            median, p95 = _selection_stats(delays)
            assert median == float(np.median(delays))
            assert p95 == float(np.percentile(delays, 95))

    def test_single_element(self):
        assert _selection_stats(np.array([42.0])) == (42.0, 42.0)

    def test_qos_report_uses_selection_stats(self, backend_instance):
        from repro.metrics.qos import qos_report

        assignment = registry_solve(backend_instance, "grez-grec", seed=0)
        report = qos_report(backend_instance, assignment)
        delays = assignment.client_delays(backend_instance)
        assert report.median_delay_ms == float(np.median(delays))
        assert report.p95_delay_ms == float(np.percentile(delays, 95))
        assert report.pqos == float((delays <= backend_instance.delay_bound).mean())
