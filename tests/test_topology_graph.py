"""Tests for repro.topology.graph — the Topology container and delay computation."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.topology.graph import Topology, TopologyError, merge_topologies


def line_topology(n: int = 4, latency: float = 10.0) -> Topology:
    """A simple path topology 0 - 1 - ... - (n-1) with equal edge latencies."""
    edges = np.array([(i, i + 1) for i in range(n - 1)], dtype=np.int64)
    return Topology(
        positions=np.column_stack([np.arange(n, dtype=float), np.zeros(n)]),
        edges=edges,
        latencies=np.full(n - 1, latency),
        name="line",
    )


class TestConstruction:
    def test_basic_properties(self):
        topo = line_topology(5)
        assert topo.num_nodes == 5
        assert topo.num_edges == 4
        assert topo.num_domains == 1

    def test_bad_positions_shape(self):
        with pytest.raises(TopologyError):
            Topology(
                positions=np.zeros(3),
                edges=np.zeros((0, 2), dtype=int),
                latencies=np.zeros(0),
            )

    def test_latency_edge_mismatch(self):
        with pytest.raises(TopologyError):
            Topology(
                positions=np.zeros((3, 2)),
                edges=np.array([[0, 1]]),
                latencies=np.array([1.0, 2.0]),
            )

    def test_edge_out_of_range(self):
        with pytest.raises(TopologyError):
            Topology(
                positions=np.zeros((2, 2)),
                edges=np.array([[0, 5]]),
                latencies=np.array([1.0]),
            )

    def test_non_positive_latency_rejected(self):
        with pytest.raises(TopologyError):
            Topology(
                positions=np.zeros((2, 2)),
                edges=np.array([[0, 1]]),
                latencies=np.array([0.0]),
            )

    def test_domain_length_mismatch(self):
        with pytest.raises(TopologyError):
            Topology(
                positions=np.zeros((3, 2)),
                edges=np.array([[0, 1]]),
                latencies=np.array([1.0]),
                node_domain=np.array([0, 1]),
            )

    def test_domain_count(self):
        topo = Topology(
            positions=np.zeros((4, 2)),
            edges=np.array([[0, 1], [1, 2], [2, 3]]),
            latencies=np.ones(3),
            node_domain=np.array([0, 0, 1, 1]),
        )
        assert topo.num_domains == 2
        np.testing.assert_array_equal(topo.domain_nodes(1), [2, 3])


class TestStructureQueries:
    def test_degree(self):
        topo = line_topology(4)
        np.testing.assert_array_equal(topo.degree(), [1, 2, 2, 1])

    def test_is_connected_true(self):
        assert line_topology(4).is_connected()

    def test_is_connected_false(self):
        topo = Topology(
            positions=np.zeros((4, 2)),
            edges=np.array([[0, 1]]),
            latencies=np.array([1.0]),
        )
        assert not topo.is_connected()

    def test_adjacency_matrix_symmetric(self):
        adj = line_topology(4).adjacency_matrix().toarray()
        np.testing.assert_allclose(adj, adj.T)
        assert adj[0, 1] == 10.0

    def test_domain_nodes_without_labels(self):
        topo = line_topology(3)
        np.testing.assert_array_equal(topo.domain_nodes(0), [0, 1, 2])
        with pytest.raises(ValueError):
            topo.domain_nodes(1)


class TestDelays:
    def test_shortest_path_latencies_on_line(self):
        topo = line_topology(4, latency=10.0)
        dist = topo.shortest_path_latencies()
        assert dist[0, 3] == pytest.approx(30.0)
        assert dist[1, 2] == pytest.approx(10.0)
        np.testing.assert_allclose(np.diag(dist), 0.0)

    def test_disconnected_raises(self):
        topo = Topology(
            positions=np.zeros((3, 2)),
            edges=np.array([[0, 1]]),
            latencies=np.array([1.0]),
        )
        with pytest.raises(TopologyError):
            topo.shortest_path_latencies()

    def test_round_trip_is_twice_one_way(self):
        topo = line_topology(3, latency=5.0)
        rtt = topo.round_trip_delays()
        assert rtt[0, 2] == pytest.approx(20.0)

    def test_round_trip_rescaled_to_max(self):
        topo = line_topology(5, latency=7.0)
        rtt = topo.round_trip_delays(max_rtt_ms=500.0)
        assert rtt.max() == pytest.approx(500.0)
        np.testing.assert_allclose(np.diag(rtt), 0.0)
        # Rescaling preserves delay ratios.
        assert rtt[0, 2] / rtt[0, 1] == pytest.approx(2.0)

    def test_round_trip_symmetry(self):
        topo = line_topology(6)
        rtt = topo.round_trip_delays(max_rtt_ms=100.0)
        np.testing.assert_allclose(rtt, rtt.T)


class TestNetworkxInterop:
    def test_to_networkx_and_back(self):
        topo = line_topology(4)
        graph = topo.to_networkx()
        assert isinstance(graph, nx.Graph)
        assert graph.number_of_nodes() == 4
        restored = Topology.from_networkx(graph, name="round")
        assert restored.num_nodes == 4
        assert restored.num_edges == 4 - 1
        np.testing.assert_allclose(
            restored.round_trip_delays(), topo.round_trip_delays()
        )

    def test_from_networkx_missing_latency(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        with pytest.raises(TopologyError):
            Topology.from_networkx(graph)

    def test_from_networkx_domains(self):
        graph = nx.Graph()
        graph.add_node(0, domain=2, pos=(0, 0))
        graph.add_node(1, domain=3, pos=(1, 0))
        graph.add_edge(0, 1, latency=4.0)
        topo = Topology.from_networkx(graph)
        assert topo.num_domains == 2

    def test_to_networkx_cached(self):
        topo = line_topology(3)
        assert topo.to_networkx() is topo.to_networkx()


class TestMergeAndMisc:
    def test_merge_two_parts_with_cross_edge(self):
        a = line_topology(3)
        b = line_topology(2)
        merged = merge_topologies([a, b], [(0, 3, 2.0)], name="merged")
        assert merged.num_nodes == 5
        assert merged.num_edges == (2 + 1 + 1)
        assert merged.is_connected()

    def test_merge_requires_parts(self):
        with pytest.raises(TopologyError):
            merge_topologies([], [])

    def test_with_name(self):
        topo = line_topology(3).with_name("renamed")
        assert topo.name == "renamed"

    def test_summary_keys(self):
        summary = line_topology(4).summary()
        assert summary["nodes"] == 4
        assert summary["edges"] == 3
        assert summary["mean_degree"] == pytest.approx(1.5)
