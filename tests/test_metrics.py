"""Tests for repro.metrics — pQoS, resource utilisation, delay CDFs, aggregation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.two_phase import solve_cap
from repro.metrics.cdf import EmpiricalCDF, delay_cdf, merge_cdfs
from repro.metrics.qos import client_delays, pqos, qos_report
from repro.metrics.resources import resource_report, resource_utilization
from repro.metrics.summary import AggregateStat, RunningStats, aggregate


@pytest.fixture()
def assignment(tiny_instance):
    zone_map = np.array([0, 1, 2, 0])
    contacts = zone_map[tiny_instance.client_zones].copy()
    contacts[6] = 1  # forwarded client
    return Assignment(zone_to_server=zone_map, contact_of_client=contacts, algorithm="x")


class TestQoSMetrics:
    def test_pqos_matches_assignment_method(self, tiny_instance, assignment):
        assert pqos(tiny_instance, assignment) == pytest.approx(assignment.pqos(tiny_instance))

    def test_client_delays_passthrough(self, tiny_instance, assignment):
        np.testing.assert_allclose(
            client_delays(tiny_instance, assignment), assignment.client_delays(tiny_instance)
        )

    def test_qos_report_fields(self, tiny_instance, assignment):
        report = qos_report(tiny_instance, assignment)
        assert report.num_clients == 8
        assert report.num_with_qos == 7  # only client 7 (120 ms direct) misses
        assert report.pqos == pytest.approx(7 / 8)
        assert report.max_delay_ms == pytest.approx(120.0)
        assert report.mean_excess_ms == pytest.approx(20.0)
        assert report.forwarded_fraction == pytest.approx(1 / 8)
        assert report.median_delay_ms == pytest.approx(50.0)

    def test_qos_report_empty_instance(self):
        from repro.core.problem import CAPInstance

        empty = CAPInstance(
            client_server_delays=np.zeros((0, 2)),
            server_server_delays=np.zeros((2, 2)),
            client_zones=np.zeros(0, dtype=int),
            client_demands=np.zeros(0),
            server_capacities=np.ones(2),
            delay_bound=100.0,
            num_zones=1,
        )
        assignment = Assignment(
            zone_to_server=np.array([0]), contact_of_client=np.zeros(0, dtype=int)
        )
        report = qos_report(empty, assignment)
        assert report.pqos == 1.0 and report.num_clients == 0


class TestResourceMetrics:
    def test_utilization_matches_assignment(self, tiny_instance, assignment):
        assert resource_utilization(tiny_instance, assignment) == pytest.approx(
            assignment.resource_utilization(tiny_instance)
        )

    def test_resource_report_fields(self, tiny_instance, assignment):
        report = resource_report(tiny_instance, assignment)
        assert report.total_capacity_mbps == pytest.approx(3000 / 1e6)
        assert report.forwarding_overhead_mbps == pytest.approx(20.0 / 1e6)
        assert report.overloaded_servers == 0
        assert 0 < report.utilization < 1
        assert report.max_server_utilization >= report.utilization

    def test_virc_has_zero_forwarding_overhead(self, small_instance):
        virc = solve_cap(small_instance, "grez-virc", seed=0)
        assert resource_report(small_instance, virc).forwarding_overhead_mbps == 0.0


class TestEmpiricalCDF:
    def test_monotone_values(self):
        cdf = delay_cdf(np.array([100.0, 200.0, 300.0, 400.0]), lo=0, hi=500, num_points=11)
        assert (np.diff(cdf.values) >= -1e-12).all()
        assert cdf.num_samples == 4

    def test_known_quantiles(self):
        delays = np.array([100.0, 200.0, 300.0, 400.0])
        cdf = delay_cdf(delays, grid=np.array([150.0, 250.0, 450.0]))
        np.testing.assert_allclose(cdf.values, [0.25, 0.5, 1.0])

    def test_at_interpolation(self):
        cdf = EmpiricalCDF(grid=np.array([10.0, 20.0]), values=np.array([0.3, 0.8]), num_samples=5)
        assert cdf.at(5.0) == 0.0
        assert cdf.at(15.0) == pytest.approx(0.3)
        assert cdf.at(100.0) == pytest.approx(0.8)

    def test_as_rows(self):
        cdf = EmpiricalCDF(grid=np.array([1.0]), values=np.array([1.0]), num_samples=2)
        assert cdf.as_rows() == [(1.0, 1.0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCDF(grid=np.array([1.0, 2.0]), values=np.array([0.5]), num_samples=1)
        with pytest.raises(ValueError):
            EmpiricalCDF(grid=np.array([2.0, 1.0]), values=np.array([0.1, 0.2]), num_samples=1)
        with pytest.raises(ValueError):
            EmpiricalCDF(grid=np.array([1.0]), values=np.array([1.5]), num_samples=1)

    def test_default_grid_matches_figure4_axis(self):
        cdf = delay_cdf(np.array([300.0]))
        assert cdf.grid[0] == pytest.approx(250.0)
        assert cdf.grid[-1] == pytest.approx(500.0)

    def test_empty_delays(self):
        cdf = delay_cdf(np.array([]), lo=0, hi=10, num_points=3)
        np.testing.assert_allclose(cdf.values, 1.0)
        assert cdf.num_samples == 0

    def test_merge_weighted_average(self):
        grid = np.array([100.0, 200.0])
        a = EmpiricalCDF(grid=grid, values=np.array([0.0, 1.0]), num_samples=10)
        b = EmpiricalCDF(grid=grid, values=np.array([1.0, 1.0]), num_samples=30)
        merged = merge_cdfs([a, b])
        np.testing.assert_allclose(merged.values, [0.75, 1.0])
        assert merged.num_samples == 40

    def test_merge_requires_same_grid(self):
        a = delay_cdf(np.array([1.0]), grid=np.array([1.0, 2.0]))
        b = delay_cdf(np.array([1.0]), grid=np.array([1.0, 3.0]))
        with pytest.raises(ValueError):
            merge_cdfs([a, b])
        with pytest.raises(ValueError):
            merge_cdfs([])


class TestSummaryStats:
    def test_running_stats_mean_and_std(self):
        values = [1.0, 2.0, 3.0, 4.0]
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(np.mean(values))
        assert stats.std == pytest.approx(np.std(values, ddof=1))
        assert stats.stderr == pytest.approx(stats.std / 2)

    def test_single_value_has_zero_variance(self):
        stats = RunningStats()
        stats.add(5.0)
        assert stats.variance == 0.0

    def test_aggregate_round_trip(self):
        agg = aggregate([0.5, 0.7, 0.9])
        assert isinstance(agg, AggregateStat)
        assert agg.mean == pytest.approx(0.7)
        assert agg.count == 3
        assert agg.ci95_halfwidth == pytest.approx(1.96 * agg.stderr)

    def test_format(self):
        agg = aggregate([1.0, 2.0])
        text = f"{agg:.2f}"
        assert "1.50" in text and "±" in text


class TestRunningStatsMerge:
    def test_merge_matches_pooled(self):
        import numpy as np

        from repro.metrics.summary import RunningStats

        left_values = [0.2, 0.5, 0.9]
        right_values = [0.1, 0.4, 0.6, 0.8]
        left, right, pooled = RunningStats(), RunningStats(), RunningStats()
        left.extend(left_values)
        right.extend(right_values)
        pooled.extend(left_values + right_values)
        left.merge(right)
        assert left.count == pooled.count
        assert left.mean == pytest.approx(pooled.mean)
        assert left.std == pytest.approx(pooled.std)
        assert np.isfinite(left.stderr)

    def test_merge_with_empty_sides(self):
        from repro.metrics.summary import RunningStats

        stats = RunningStats()
        stats.merge(RunningStats())  # empty into empty
        assert stats.count == 0
        filled = RunningStats()
        filled.extend([1.0, 3.0])
        stats.merge(filled)  # into empty
        assert stats.count == 2 and stats.mean == pytest.approx(2.0)


class TestGroupedRunningStats:
    def test_streaming_grouped_aggregation(self):
        from repro.metrics.summary import GroupedRunningStats

        grouped = GroupedRunningStats()
        for epoch, value in enumerate([0.9, 0.8, 0.7]):
            grouped.add(("algo", epoch), value)
            grouped.add(("algo", epoch), value + 0.05)
        assert grouped.count(("algo", 1)) == 2
        assert grouped.stat(("algo", 1)).mean == pytest.approx(0.825)
        assert grouped.keys() == [("algo", 0), ("algo", 1), ("algo", 2)]

    def test_nan_values_skipped(self):
        from repro.metrics.summary import GroupedRunningStats

        grouped = GroupedRunningStats()
        grouped.add("key", float("nan"))
        grouped.add("key", 0.5)
        assert grouped.count("key") == 1
        assert grouped.stat("key").mean == pytest.approx(0.5)

    def test_unseen_key_yields_empty_stat(self):
        import math

        from repro.metrics.summary import GroupedRunningStats

        stat = GroupedRunningStats().stat("missing")
        assert stat.count == 0 and math.isnan(stat.mean)

    def test_merge_combines_per_key(self):
        from repro.metrics.summary import GroupedRunningStats

        a, b = GroupedRunningStats(), GroupedRunningStats()
        a.add("x", 1.0)
        b.add("x", 3.0)
        b.add("y", 5.0)
        a.merge(b)
        assert a.stat("x").mean == pytest.approx(2.0)
        assert a.stat("y").count == 1
        final = a.finalize()
        assert set(final) == {"x", "y"}
