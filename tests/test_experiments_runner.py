"""Tests for repro.experiments.runner — multi-run evaluation and aggregation."""

from __future__ import annotations

import numpy as np
import pytest

import repro.baselines  # noqa: F401
from repro.experiments.runner import evaluate_algorithms, run_replications
from repro.measurement.estimators import idmaps_estimator
from tests.conftest import make_small_config

ALGORITHMS = ["ranz-virc", "grez-grec"]


class TestEvaluateAlgorithms:
    def test_all_algorithms_present(self, small_scenario):
        results = evaluate_algorithms(small_scenario, ALGORITHMS, seed=0)
        assert set(results) == set(ALGORITHMS)
        for obs in results.values():
            assert 0.0 <= obs.pqos <= 1.0
            assert obs.utilization > 0.0
            assert obs.runtime_seconds >= 0.0
            assert obs.delays is None

    def test_collect_delays(self, small_scenario):
        results = evaluate_algorithms(small_scenario, ["grez-grec"], seed=0, collect_delays=True)
        delays = results["grez-grec"].delays
        assert delays is not None
        assert delays.shape == (small_scenario.num_clients,)

    def test_delay_bound_override_changes_pqos(self, small_scenario):
        strict = evaluate_algorithms(small_scenario, ["grez-grec"], seed=0, delay_bound_ms=50.0)
        loose = evaluate_algorithms(small_scenario, ["grez-grec"], seed=0, delay_bound_ms=500.0)
        assert loose["grez-grec"].pqos >= strict["grez-grec"].pqos
        assert loose["grez-grec"].pqos == pytest.approx(1.0)

    def test_estimator_decisions_evaluated_on_true_delays(self, small_scenario):
        noisy = evaluate_algorithms(
            small_scenario, ["grez-grec"], seed=0, estimator=idmaps_estimator()
        )
        perfect = evaluate_algorithms(small_scenario, ["grez-grec"], seed=0)
        # Imperfect knowledge can only hurt (or match) the true-delay pQoS.
        assert noisy["grez-grec"].pqos <= perfect["grez-grec"].pqos + 1e-9

    def test_unknown_algorithm_rejected(self, small_scenario):
        with pytest.raises(KeyError):
            evaluate_algorithms(small_scenario, ["not-an-algorithm"], seed=0)

    def test_deterministic(self, small_scenario):
        a = evaluate_algorithms(small_scenario, ALGORITHMS, seed=3)
        b = evaluate_algorithms(small_scenario, ALGORITHMS, seed=3)
        for name in ALGORITHMS:
            assert a[name].pqos == b[name].pqos


class TestRunReplications:
    def test_summaries_and_counts(self):
        config = make_small_config(num_clients=80, num_zones=8)
        result = run_replications(config, ALGORITHMS, num_runs=3, seed=0)
        assert result.num_runs == 3
        assert set(result.summaries) == set(ALGORITHMS)
        for summary in result.summaries.values():
            assert summary.pqos.count == 3
            assert 0.0 <= summary.pqos.mean <= 1.0
            assert summary.utilization.mean > 0.0

    def test_accessors(self):
        config = make_small_config(num_clients=60, num_zones=6)
        result = run_replications(config, ALGORITHMS, num_runs=2, seed=1)
        assert result.pqos("grez-grec") == result.summaries["grez-grec"].pqos.mean
        assert result.utilization("ranz-virc") == result.summaries["ranz-virc"].utilization.mean
        assert result.algorithms() == ALGORITHMS

    def test_collect_delays_builds_cdf(self):
        config = make_small_config(num_clients=60, num_zones=6)
        grid = np.linspace(0, 500, 11)
        result = run_replications(
            config, ["grez-grec"], num_runs=2, seed=0, collect_delays=True, cdf_grid=grid
        )
        cdf = result.summaries["grez-grec"].delay_cdf
        assert cdf is not None
        assert cdf.num_samples == 2 * 60
        assert cdf.values[-1] == pytest.approx(1.0)

    def test_share_topology_reuses_substrate(self):
        config = make_small_config(num_clients=60, num_zones=6)
        shared = run_replications(config, ["grez-grec"], num_runs=2, seed=5, share_topology=True)
        fresh = run_replications(config, ["grez-grec"], num_runs=2, seed=5, share_topology=False)
        # Both are valid experiments; the results just come from different draws.
        assert 0.0 <= shared.pqos("grez-grec") <= 1.0
        assert 0.0 <= fresh.pqos("grez-grec") <= 1.0

    def test_keep_observations(self):
        config = make_small_config(num_clients=60, num_zones=6)
        result = run_replications(
            config, ["grez-grec"], num_runs=2, seed=0, keep_observations=True
        )
        assert len(result.observations["grez-grec"]) == 2

    def test_reproducible(self):
        config = make_small_config(num_clients=60, num_zones=6)
        a = run_replications(config, ALGORITHMS, num_runs=2, seed=11)
        b = run_replications(config, ALGORITHMS, num_runs=2, seed=11)
        for name in ALGORITHMS:
            assert a.pqos(name) == pytest.approx(b.pqos(name))
            assert a.utilization(name) == pytest.approx(b.utilization(name))
