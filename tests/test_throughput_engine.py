"""Throughput engine: arena fast path vs the executable spec, end to end.

The arena-gated optimisations (recycled population/delay buffers, the cached
zone-sampling plan, trusted churn batches, the survivor-index cache, batched
record emission) all promise the same thing: identical *records*, fewer
*allocations*.  These tests pin the identity half across the configuration
cross-product and exercise the batch/driver plumbing the benchmark relies on.
"""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.churn import ChurnSpec, generate_churn
from repro.dynamics.engine import ChurnSimulator, EpochRecord
from repro.dynamics.events import ChurnBatch, apply_churn
from repro.dynamics.policies import carry_over_assignment
from repro.experiments.loadgen import format_loadgen, run_loadgen
from repro.utils.arena import EpochArena
from repro.world.distributions import ZoneSamplingPlan, sample_client_zones
from repro.world.scenario import DVEConfig, build_scenario

LABEL_CONFIG = dict(
    num_servers=8, num_zones=24, num_clients=120, total_capacity_mbps=200.0
)


def _scenario(seed=5, correlation=0.0):
    return build_scenario(DVEConfig(correlation=correlation, **LABEL_CONFIG), seed=seed)


def _records(arena, backend, measurement, churn, epochs=5, seed=9):
    simulator = ChurnSimulator(
        scenario=_scenario(),
        algorithms=["grez-grec"],
        churn_spec=churn,
        seed=seed,
        policy="warm_start",
        backend=backend,
        measurement_backend=measurement,
        arena=arena,
    )
    session = simulator.session(epochs)
    records = []
    for _ in range(epochs):
        records.extend(session.run_epoch())
    return records


def _assert_identical(records_a, records_b):
    assert len(records_a) == len(records_b)
    for rec_a, rec_b in zip(records_a, records_b):
        for field in EpochRecord.FIELDS:
            value_a, value_b = getattr(rec_a, field), getattr(rec_b, field)
            if isinstance(value_a, float) and math.isnan(value_a):
                assert isinstance(value_b, float) and math.isnan(value_b), field
            else:
                assert value_a == value_b, field


class TestArenaRecordIdentity:
    @pytest.mark.parametrize(
        "backend,measurement",
        list(itertools.product(["delta", "rebuild"], ["full", "incremental"])),
    )
    def test_backend_measurement_cross_product(self, backend, measurement):
        churn = ChurnSpec(num_joins=7, num_leaves=5, num_moves=6)
        _assert_identical(
            _records(True, backend, measurement, churn),
            _records(False, backend, measurement, churn),
        )

    @pytest.mark.parametrize(
        "churn",
        [
            ChurnSpec(num_joins=0, num_leaves=0, num_moves=0),
            ChurnSpec(num_joins=15, num_leaves=0, num_moves=0),
            ChurnSpec(num_joins=0, num_leaves=12, num_moves=0),
            ChurnSpec(num_joins=0, num_leaves=0, num_moves=14),
            ChurnSpec(num_joins=30, num_leaves=25, num_moves=20),
        ],
        ids=["quiet", "joins", "leaves", "moves", "mixed"],
    )
    def test_churn_mixes(self, churn):
        _assert_identical(
            _records(True, "delta", "incremental", churn),
            _records(False, "delta", "incremental", churn),
        )


class TestRunBatch:
    def test_run_batch_equals_repeated_run_epoch(self):
        churn = ChurnSpec(num_joins=6, num_leaves=6, num_moves=6)

        def _simulator():
            return ChurnSimulator(
                scenario=_scenario(),
                algorithms=["grez-grec"],
                churn_spec=churn,
                seed=4,
                policy="warm_start",
                backend="delta",
                measurement_backend="incremental",
                arena=True,
            )

        batched = _simulator().session(6).run_batch(6)
        looped_session = _simulator().session(6)
        looped = []
        for _ in range(6):
            looped.extend(looped_session.run_epoch())
        _assert_identical(batched, looped)

    def test_run_batch_validates_k(self):
        session = ChurnSimulator(
            scenario=_scenario(), algorithms=["grez-grec"], arena=True
        ).session(3)
        with pytest.raises(ValueError):
            session.run_batch(0)


class TestAllocProfile:
    def test_alloc_profile_fills_phase_bytes(self):
        import tracemalloc

        session = ChurnSimulator(
            scenario=_scenario(),
            algorithms=["grez-grec"],
            churn_spec=ChurnSpec(num_joins=5, num_leaves=5, num_moves=5),
            seed=1,
            policy="warm_start",
            backend="delta",
            measurement_backend="incremental",
            arena=True,
        ).session(2)
        session.alloc_profile = True
        assert set(session.phase_alloc_bytes) == set(session.phase_seconds)
        started_here = not tracemalloc.is_tracing()
        if started_here:
            tracemalloc.start()
        try:
            session.run_batch(2)
        finally:
            if started_here:
                tracemalloc.stop()
        assert sum(session.phase_alloc_bytes.values()) > 0
        assert set(session.last_phase_alloc_bytes) == set(session.phase_seconds)


class TestZoneSamplingPlan:
    def test_plan_reproduces_unplanned_draws(self):
        scenario = _scenario()
        spec = scenario.config.distribution_spec
        plan = ZoneSamplingPlan.build(scenario.topology, scenario.num_zones, spec)
        nodes = scenario.population.nodes[:40]
        planned = sample_client_zones(
            scenario.topology, nodes, scenario.num_zones, spec, seed=77, plan=plan
        )
        unplanned = sample_client_zones(
            scenario.topology, nodes, scenario.num_zones, spec, seed=77
        )
        np.testing.assert_array_equal(planned, unplanned)

    def test_plan_for_wrong_world_rejected(self):
        scenario = _scenario()
        spec = scenario.config.distribution_spec
        plan = ZoneSamplingPlan.build(scenario.topology, scenario.num_zones, spec)
        with pytest.raises(ValueError, match="different world"):
            sample_client_zones(
                scenario.topology,
                scenario.population.nodes[:5],
                scenario.num_zones + 1,
                spec,
                seed=0,
                plan=plan,
            )


class TestTrustedChurnPath:
    def test_generate_churn_with_plan_is_identical(self):
        scenario = _scenario()
        spec = scenario.config.distribution_spec
        plan = ZoneSamplingPlan.build(scenario.topology, scenario.num_zones, spec)
        churn_spec = ChurnSpec(num_joins=9, num_leaves=8, num_moves=7)
        fast = generate_churn(scenario, churn_spec, seed=21, zone_plan=plan)
        slow = generate_churn(scenario, churn_spec, seed=21)
        for field in ("join_nodes", "join_zones", "leave_indices", "move_indices", "move_zones"):
            np.testing.assert_array_equal(getattr(fast, field), getattr(slow, field))

    def test_trusted_skips_validation_but_not_values(self):
        batch = ChurnBatch.trusted(
            np.array([3, 4], dtype=np.int64),
            np.array([0, 1], dtype=np.int64),
            np.array([2], dtype=np.int64),
            np.array([5], dtype=np.int64),
            np.array([7], dtype=np.int64),
        )
        assert batch.num_joins == 2 and batch.num_leaves == 1 and batch.num_moves == 1

    def test_apply_churn_caches_survivors_in_arena_mode(self):
        scenario = _scenario()
        batch = generate_churn(scenario, ChurnSpec(5, 5, 5), seed=3)
        arena = EpochArena()
        fast = apply_churn(scenario.population, batch, arena=arena)
        spec_result = apply_churn(scenario.population, batch)
        assert spec_result.survivors_old is None
        np.testing.assert_array_equal(
            fast.survivors_old, np.flatnonzero(fast.old_to_new >= 0)
        )
        np.testing.assert_array_equal(fast.old_to_new, spec_result.old_to_new)
        np.testing.assert_array_equal(
            fast.population.zones, spec_result.population.zones
        )

    def test_carry_over_fast_path_matches_spec(self):
        from repro.core.two_phase import solve_cap

        from repro.core.problem import CAPInstance

        scenario = _scenario()
        instance = CAPInstance.from_scenario(scenario)
        assignment = solve_cap(instance)
        batch = generate_churn(scenario, ChurnSpec(6, 6, 6), seed=8)
        arena = EpochArena()
        fast_churn = apply_churn(scenario.population, batch, arena=arena)
        spec_churn = apply_churn(scenario.population, batch)
        new_scenario = scenario.apply_churn_delta(fast_churn)
        new_instance = CAPInstance.from_scenario(new_scenario)
        fast = carry_over_assignment(assignment, fast_churn, new_instance)
        slow = carry_over_assignment(assignment, spec_churn, new_instance)
        np.testing.assert_array_equal(fast.contact_of_client, slow.contact_of_client)
        assert fast.capacity_exceeded == slow.capacity_exceeded


@settings(deadline=None, max_examples=25)
@given(
    joins=st.integers(min_value=0, max_value=20),
    leaves=st.integers(min_value=0, max_value=20),
    moves=st.integers(min_value=0, max_value=20),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_property_arena_stream_identity(joins, leaves, moves, seed):
    """Arena on/off emit identical records for any churn mix (hypothesis)."""
    churn = ChurnSpec(num_joins=joins, num_leaves=leaves, num_moves=moves)
    _assert_identical(
        _records(True, "delta", "incremental", churn, epochs=3, seed=seed),
        _records(False, "delta", "incremental", churn, epochs=3, seed=seed),
    )


class TestLoadgen:
    def test_run_loadgen_smoke(self):
        result = run_loadgen(
            label="10s-40z-500c-250cp",
            epochs=4,
            warmup=1,
            churn=ChurnSpec(3, 3, 3),
            alloc_profile=True,
            alloc_epochs=2,
            arena=True,
        )
        assert result.epochs == 4
        assert result.events_per_epoch == 9
        assert result.epochs_per_sec > 0
        assert result.p99_epoch_ms >= result.p50_epoch_ms
        assert result.alloc_bytes_per_epoch is not None
        assert result.alloc_bytes_per_epoch > 0
        assert result.arena_stats is not None
        table = format_loadgen([result])
        assert "epochs/s" in table

    def test_run_loadgen_rejects_bad_args(self):
        with pytest.raises(ValueError):
            run_loadgen(epochs=0)
        with pytest.raises(ValueError):
            run_loadgen(epochs=1, warmup=-1)
