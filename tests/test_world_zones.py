"""Tests for repro.world.zones — the zone-partitioned virtual world grid."""

from __future__ import annotations

import numpy as np
import pytest

from repro.world.zones import VirtualWorld


class TestConstruction:
    def test_grid_covers_all_zones(self):
        world = VirtualWorld(num_zones=12)
        assert world.rows * world.cols >= 12

    def test_explicit_grid(self):
        world = VirtualWorld(num_zones=12, rows=3, cols=4)
        assert (world.rows, world.cols) == (3, 4)

    def test_grid_too_small_rejected(self):
        with pytest.raises(ValueError):
            VirtualWorld(num_zones=10, rows=2, cols=4)

    def test_invalid_zone_count(self):
        with pytest.raises(ValueError):
            VirtualWorld(num_zones=0)

    def test_prime_zone_count(self):
        world = VirtualWorld(num_zones=13)
        assert world.rows * world.cols >= 13


class TestCoordinates:
    def test_round_trip(self):
        world = VirtualWorld(num_zones=12, rows=3, cols=4)
        for zone in range(12):
            row, col = world.zone_coordinates(zone)
            assert world.zone_at(row, col) == zone

    def test_out_of_world(self):
        world = VirtualWorld(num_zones=6, rows=2, cols=3)
        with pytest.raises(ValueError):
            world.zone_coordinates(6)
        with pytest.raises(ValueError):
            world.zone_at(5, 0)

    def test_all_zones(self):
        np.testing.assert_array_equal(VirtualWorld(num_zones=4).all_zones(), [0, 1, 2, 3])


class TestNeighbors:
    def test_interior_zone_has_four_neighbors(self):
        world = VirtualWorld(num_zones=9, rows=3, cols=3)
        assert sorted(world.neighbors(4)) == [1, 3, 5, 7]

    def test_corner_zone_has_two_neighbors(self):
        world = VirtualWorld(num_zones=9, rows=3, cols=3)
        assert sorted(world.neighbors(0)) == [1, 3]

    def test_neighbors_symmetric(self):
        world = VirtualWorld(num_zones=12, rows=3, cols=4)
        for zone in range(12):
            for other in world.neighbors(zone):
                assert zone in world.neighbors(other)

    def test_single_zone_world(self):
        assert VirtualWorld(num_zones=1).neighbors(0) == []

    def test_neighbors_exclude_nonexistent_cells(self):
        # 7 zones on a grid whose last row is partially filled.
        world = VirtualWorld(num_zones=7)
        for zone in range(7):
            assert all(n < 7 for n in world.neighbors(zone))


class TestPopulations:
    def test_counts(self):
        world = VirtualWorld(num_zones=4)
        pops = world.zone_populations(np.array([0, 0, 1, 3, 3, 3]))
        np.testing.assert_array_equal(pops, [2, 1, 0, 3])

    def test_empty_population(self):
        world = VirtualWorld(num_zones=3)
        np.testing.assert_array_equal(world.zone_populations(np.array([], dtype=int)), [0, 0, 0])

    def test_out_of_range_rejected(self):
        world = VirtualWorld(num_zones=3)
        with pytest.raises(ValueError):
            world.zone_populations(np.array([0, 3]))
