"""Tests for repro.world.clients — client population snapshots and churn primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.world.clients import ClientPopulation


@pytest.fixture()
def population() -> ClientPopulation:
    return ClientPopulation(nodes=np.array([5, 6, 7, 8, 9]), zones=np.array([0, 0, 1, 2, 2]))


class TestConstruction:
    def test_num_clients(self, population):
        assert population.num_clients == 5

    def test_parallel_arrays_required(self):
        with pytest.raises(ValueError):
            ClientPopulation(nodes=np.array([1, 2]), zones=np.array([0]))

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError):
            ClientPopulation(nodes=np.array([-1]), zones=np.array([0]))
        with pytest.raises(ValueError):
            ClientPopulation(nodes=np.array([1]), zones=np.array([-2]))

    def test_empty_population_allowed(self):
        empty = ClientPopulation(nodes=np.array([], dtype=int), zones=np.array([], dtype=int))
        assert empty.num_clients == 0


class TestQueries:
    def test_zone_populations(self, population):
        np.testing.assert_array_equal(population.zone_populations(4), [2, 1, 2, 0])

    def test_zone_populations_rejects_small_world(self, population):
        with pytest.raises(ValueError):
            population.zone_populations(2)

    def test_clients_in_zone(self, population):
        np.testing.assert_array_equal(population.clients_in_zone(2), [3, 4])
        assert population.clients_in_zone(3).size == 0


class TestChurnTransforms:
    def test_with_joined_appends(self, population):
        joined = population.with_joined(np.array([10, 11]), np.array([3, 3]))
        assert joined.num_clients == 7
        np.testing.assert_array_equal(joined.nodes[-2:], [10, 11])
        # original untouched
        assert population.num_clients == 5

    def test_with_joined_shape_mismatch(self, population):
        with pytest.raises(ValueError):
            population.with_joined(np.array([1, 2]), np.array([0]))

    def test_with_left_removes_and_preserves_order(self, population):
        remaining = population.with_left(np.array([1, 3]))
        np.testing.assert_array_equal(remaining.nodes, [5, 7, 9])
        np.testing.assert_array_equal(remaining.zones, [0, 1, 2])

    def test_with_left_out_of_range(self, population):
        with pytest.raises(ValueError):
            population.with_left(np.array([99]))

    def test_with_moved_changes_zone_only(self, population):
        moved = population.with_moved(np.array([0, 4]), np.array([3, 0]))
        np.testing.assert_array_equal(moved.zones, [3, 0, 1, 2, 0])
        np.testing.assert_array_equal(moved.nodes, population.nodes)

    def test_with_moved_shape_mismatch(self, population):
        with pytest.raises(ValueError):
            population.with_moved(np.array([0]), np.array([1, 2]))

    def test_with_moved_out_of_range(self, population):
        with pytest.raises(ValueError):
            population.with_moved(np.array([7]), np.array([0]))

    def test_subset_reorders(self, population):
        sub = population.subset(np.array([4, 0]))
        np.testing.assert_array_equal(sub.nodes, [9, 5])
        np.testing.assert_array_equal(sub.zones, [2, 0])
