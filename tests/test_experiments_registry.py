"""Tests for repro.experiments.registry — the experiment id → driver mapping."""

from __future__ import annotations

import pytest

from repro.experiments.registry import EXPERIMENTS, experiment_ids, get_experiment


class TestExperimentRegistry:
    def test_every_paper_artifact_has_an_experiment(self):
        ids = experiment_ids()
        for expected in ("table1", "table3", "table4", "figure4", "figure5", "figure6"):
            assert expected in ids

    def test_extensions_registered(self):
        ids = experiment_ids()
        for expected in ("ablation", "baselines", "runtime", "dynamics", "controller"):
            assert expected in ids

    def test_ids_sorted(self):
        assert experiment_ids() == sorted(experiment_ids())

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("TABLE1") is EXPERIMENTS["table1"]

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            get_experiment("table99")

    def test_specs_are_complete(self):
        for spec in EXPERIMENTS.values():
            assert spec.description
            assert spec.paper_artifact
            assert callable(spec.run)
            assert callable(spec.format)

    def test_spec_run_and_format_compose(self):
        spec = get_experiment("figure5")
        result = spec.run(
            label="5s-15z-200c-100cp",
            correlations=[0.5],
            algorithms=["grez-virc"],
            num_runs=1,
            seed=0,
        )
        text = spec.format(result)
        assert "Figure 5" in text
