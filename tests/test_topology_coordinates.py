"""Tests for repro.topology.coordinates — Vivaldi-style network coordinates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.coordinates import (
    DEFAULT_COORDS_DIM,
    NetworkCoordinates,
    fit_network_coordinates,
)
from repro.topology.delay_backends import network_coordinates_for
from repro.topology.delays import DelayModel


@pytest.fixture(scope="module")
def model(small_topology):
    return DelayModel(small_topology)


@pytest.fixture(scope="module")
def coords(model) -> NetworkCoordinates:
    return fit_network_coordinates(model.rtt)


class TestFit:
    def test_shapes(self, model, coords):
        n = model.num_nodes
        assert coords.positions.shape == (n, DEFAULT_COORDS_DIM)
        assert coords.heights.shape == (n,)
        assert coords.num_nodes == n

    def test_deterministic(self, model, coords):
        again = fit_network_coordinates(model.rtt)
        np.testing.assert_array_equal(coords.positions, again.positions)
        np.testing.assert_array_equal(coords.heights, again.heights)

    def test_heights_non_negative(self, coords):
        assert (coords.heights >= 0.0).all()

    def test_read_only_state(self, coords):
        with pytest.raises(ValueError):
            coords.positions[0, 0] = 1.0
        with pytest.raises(ValueError):
            coords.heights[0] = 1.0

    def test_fit_quality(self, coords):
        # The embedding is approximate by design, but must be usable: the
        # published Vivaldi error on internet RTTs is ~10-15 %; allow slack
        # for the small synthetic topology.
        assert 0.0 < coords.fit_median_relative_error < 0.35
        assert coords.fit_rmse_ms > 0.0

    def test_rejects_bad_rtt(self):
        with pytest.raises(ValueError):
            fit_network_coordinates(np.zeros((3, 4)))


class TestPredict:
    def test_self_delay_is_zero(self, coords, model):
        nodes = np.arange(model.num_nodes)
        np.testing.assert_array_equal(coords.predict_pairs(nodes, nodes), 0.0)

    def test_non_negative(self, coords, model):
        rng = np.random.default_rng(0)
        u = rng.integers(0, model.num_nodes, size=64)
        v = rng.integers(0, model.num_nodes, size=64)
        assert (coords.predict_pairs(u, v) >= 0.0).all()

    def test_symmetric(self, coords, model):
        rng = np.random.default_rng(1)
        u = rng.integers(0, model.num_nodes, size=64)
        v = rng.integers(0, model.num_nodes, size=64)
        np.testing.assert_allclose(
            coords.predict_pairs(u, v), coords.predict_pairs(v, u), rtol=1e-12
        )

    def test_matrix_matches_pairs(self, coords, model):
        rows = np.arange(0, model.num_nodes, 3)
        cols = np.arange(1, model.num_nodes, 4)
        matrix = coords.predict_matrix(rows, cols)
        assert matrix.shape == (rows.size, cols.size)
        expected = coords.predict_pairs(
            np.repeat(rows, cols.size), np.tile(cols, rows.size)
        ).reshape(rows.size, cols.size)
        np.testing.assert_allclose(matrix, expected, rtol=1e-9, atol=1e-9)

    def test_matrix_zero_where_same_node(self, coords):
        nodes = np.array([0, 1, 2, 5])
        matrix = coords.predict_matrix(nodes, nodes)
        np.testing.assert_array_equal(np.diag(matrix), 0.0)


class TestCaching:
    def test_cached_per_model_and_dim(self, model):
        first = network_coordinates_for(model)
        assert network_coordinates_for(model) is first
        other_dim = network_coordinates_for(model, dim=3)
        assert other_dim is not first
        assert other_dim.positions.shape[1] == 3
        assert network_coordinates_for(model, dim=3) is other_dim
