"""Tests for the incremental churn pipeline: delta world/instance updates,
backend equivalence of the simulation engine, policy schedules and streaming.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

import repro.baselines  # noqa: F401  (registers the baseline solvers)
from repro.core.problem import CAPInstance
from repro.dynamics.churn import ChurnSpec, generate_churn
from repro.dynamics.engine import BACKENDS, ChurnSimulator, EpochRecord, SimulationState
from repro.dynamics.events import ChurnBatch, apply_churn
from repro.dynamics.policies import POLICY_ACTIONS, PolicySchedule, make_policy

#: The ≥3 churn mixes the acceptance criterion asks the equivalence property
#: to cover: balanced, join-heavy (population grows) and leave-heavy
#: (population shrinks), plus a move-only mix.
CHURN_SPECS = [
    ChurnSpec(20, 20, 20),
    ChurnSpec(40, 5, 10),
    ChurnSpec(5, 40, 10),
    ChurnSpec(0, 0, 30),
]


def _delta_instance(old_instance, churn, new_scenario):
    """Build the post-churn instance through the delta path."""
    return old_instance.apply_delta(
        old_to_new=churn.old_to_new,
        join_delays=new_scenario.client_server_delays[churn.new_client_indices],
        client_zones=new_scenario.population.zones,
        client_demands=new_scenario.client_demands,
    )


class TestScenarioChurnDelta:
    @pytest.mark.parametrize("spec", CHURN_SPECS, ids=lambda s: s.__repr__())
    def test_bit_identical_to_with_population(self, small_scenario, spec):
        batch = generate_churn(small_scenario, spec, seed=5)
        churn = apply_churn(small_scenario.population, batch)
        rebuilt = small_scenario.with_population(churn.population)
        delta = small_scenario.apply_churn_delta(churn)
        np.testing.assert_array_equal(rebuilt.client_server_delays, delta.client_server_delays)
        np.testing.assert_array_equal(rebuilt.client_demands, delta.client_demands)
        np.testing.assert_array_equal(rebuilt.population.nodes, delta.population.nodes)
        np.testing.assert_array_equal(rebuilt.population.zones, delta.population.zones)
        assert delta.server_server_delays is small_scenario.server_server_delays
        assert delta.topology is small_scenario.topology

    def test_population_mismatch_rejected(self, small_scenario):
        batch = generate_churn(small_scenario, ChurnSpec(10, 3, 3), seed=5)
        churn = apply_churn(small_scenario.population, batch)
        grown = small_scenario.with_population(churn.population)
        assert grown.num_clients != small_scenario.num_clients
        with pytest.raises(ValueError, match="generated against"):
            grown.apply_churn_delta(churn)  # churn refers to the *old* snapshot

    def test_multi_epoch_chain_matches_rebuild_chain(self, small_scenario):
        """Deltas compose: three chained epochs equal three chained rebuilds."""
        delta_scenario = rebuild_scenario = small_scenario
        for epoch in range(3):
            batch = generate_churn(rebuild_scenario, ChurnSpec(15, 10, 10), seed=100 + epoch)
            churn = apply_churn(rebuild_scenario.population, batch)
            rebuild_scenario = rebuild_scenario.with_population(churn.population)
            delta_scenario = delta_scenario.apply_churn_delta(churn)
            np.testing.assert_array_equal(
                rebuild_scenario.client_server_delays, delta_scenario.client_server_delays
            )
            np.testing.assert_array_equal(
                rebuild_scenario.client_demands, delta_scenario.client_demands
            )


class TestInstanceApplyDelta:
    @pytest.mark.parametrize("spec", CHURN_SPECS[:3], ids=["balanced", "join-heavy", "leave-heavy"])
    def test_bit_identical_to_from_scenario(self, small_scenario, small_instance, spec):
        batch = generate_churn(small_scenario, spec, seed=9)
        churn = apply_churn(small_scenario.population, batch)
        new_scenario = small_scenario.apply_churn_delta(churn)
        rebuilt = CAPInstance.from_scenario(new_scenario)
        delta = _delta_instance(small_instance, churn, new_scenario)
        np.testing.assert_array_equal(rebuilt.client_server_delays, delta.client_server_delays)
        np.testing.assert_array_equal(rebuilt.client_zones, delta.client_zones)
        np.testing.assert_array_equal(rebuilt.client_demands, delta.client_demands)
        np.testing.assert_array_equal(rebuilt.zone_demands(), delta.zone_demands())
        np.testing.assert_array_equal(rebuilt.zone_populations(), delta.zone_populations())
        assert delta.delay_bound == small_instance.delay_bound
        assert delta.num_zones == small_instance.num_zones

    def test_rejects_wrong_old_to_new_length(self, small_instance):
        with pytest.raises(ValueError, match="old_to_new"):
            small_instance.apply_delta(
                old_to_new=np.zeros(3, dtype=np.int64),
                join_delays=np.zeros((0, small_instance.num_servers)),
                client_zones=np.zeros(3, dtype=np.int64),
                client_demands=np.ones(3),
            )

    def test_rejects_negative_join_delays(self, small_instance):
        k = small_instance.num_clients
        with pytest.raises(ValueError, match="non-negative"):
            small_instance.apply_delta(
                old_to_new=np.arange(k, dtype=np.int64),
                join_delays=np.full((1, small_instance.num_servers), -1.0),
                client_zones=np.zeros(k + 1, dtype=np.int64),
                client_demands=np.ones(k + 1),
            )

    def test_rejects_unordered_survivor_map(self, small_instance):
        k = small_instance.num_clients
        scrambled = np.arange(k, dtype=np.int64)
        scrambled[0], scrambled[1] = scrambled[1], scrambled[0]
        with pytest.raises(ValueError, match="relative order"):
            small_instance.apply_delta(
                old_to_new=scrambled,
                join_delays=np.zeros((0, small_instance.num_servers)),
                client_zones=small_instance.client_zones,
                client_demands=small_instance.client_demands,
            )

    def test_rejects_out_of_range_zone(self, small_instance):
        k = small_instance.num_clients
        zones = small_instance.client_zones.copy()
        zones[0] = small_instance.num_zones
        with pytest.raises(ValueError, match="zone ids"):
            small_instance.apply_delta(
                old_to_new=np.arange(k, dtype=np.int64),
                join_delays=np.zeros((0, small_instance.num_servers)),
                client_zones=zones,
                client_demands=small_instance.client_demands,
            )


class TestDerivedQuantityCaches:
    def test_zone_demands_cached_and_read_only(self, small_instance):
        first = small_instance.zone_demands()
        assert first is small_instance.zone_demands()  # cached object reused
        assert not first.flags.writeable
        with pytest.raises(ValueError):
            first[0] = 1.0

    def test_zone_populations_cached_and_read_only(self, small_instance):
        first = small_instance.zone_populations()
        assert first is small_instance.zone_populations()
        assert not first.flags.writeable

    def test_invalidate_caches_recomputes(self, tiny_instance):
        before = tiny_instance.zone_demands()
        tiny_instance.invalidate_caches()
        after = tiny_instance.zone_demands()
        assert before is not after
        np.testing.assert_array_equal(before, after)


class TestBackendEquivalence:
    """Acceptance criterion: delta and rebuild backends produce bit-identical
    EpochRecord streams for the same seed, across churn specs and policies.
    """

    @pytest.mark.parametrize("spec", CHURN_SPECS, ids=["balanced", "join", "leave", "move"])
    def test_records_identical_across_backends(self, small_scenario, spec):
        runs = {}
        for backend in BACKENDS:
            simulator = ChurnSimulator(
                scenario=small_scenario,
                algorithms=["grez-grec", "ranz-virc"],
                churn_spec=spec,
                seed=123,
                backend=backend,
            )
            runs[backend] = simulator.run(num_epochs=3)
        assert len(runs["delta"]) == len(runs["rebuild"]) == 3 * 2
        for a, b in zip(runs["delta"], runs["rebuild"]):
            assert a == b  # reexecute policy computes every field — exact dataclass eq

    @pytest.mark.parametrize("policy", ["incremental", "warm_start"])
    def test_records_identical_across_backends_per_policy(self, small_scenario, policy):
        runs = {}
        for backend in BACKENDS:
            simulator = ChurnSimulator(
                scenario=small_scenario,
                algorithms=["grez-grec"],
                churn_spec=ChurnSpec(15, 15, 15),
                seed=7,
                policy=policy,
                backend=backend,
            )
            runs[backend] = simulator.run(num_epochs=4)
        for a, b in zip(runs["delta"], runs["rebuild"]):
            assert ChurnSimulator.records_equal(a, b)

    def test_unknown_backend_rejected(self, small_scenario):
        with pytest.raises(ValueError, match="backend"):
            ChurnSimulator(scenario=small_scenario, algorithms=["grez-grec"], backend="magic")


class TestPolicySchedules:
    def test_make_policy_names(self):
        for name in POLICY_ACTIONS:
            schedule = make_policy(name)
            assert schedule.action_for_epoch(0) == name
        periodic = make_policy("every_k_epochs", period=3)
        assert periodic.name == "every_3_epochs"
        assert [periodic.action_for_epoch(e) for e in range(6)] == [
            "incremental",
            "incremental",
            "reexecute",
            "incremental",
            "incremental",
            "reexecute",
        ]

    def test_make_policy_literal_spelling(self):
        assert make_policy("every_5_epochs").period == 5

    def test_make_policy_passthrough_and_errors(self):
        schedule = PolicySchedule(name="custom", action="warm_start", period=2)
        assert make_policy(schedule) is schedule
        with pytest.raises(ValueError):
            make_policy("every_k_epochs")  # missing period
        with pytest.raises(ValueError):
            make_policy("nonsense")
        with pytest.raises(ValueError):
            PolicySchedule(name="bad", action="nonsense")

    def test_policy_controls_computed_fields(self, small_scenario):
        def run(policy, **kw):
            return ChurnSimulator(
                scenario=small_scenario,
                algorithms=["grez-grec"],
                churn_spec=ChurnSpec(10, 10, 10),
                seed=5,
                policy=policy,
                **kw,
            ).run(num_epochs=2)

        for record in run("reexecute"):
            assert record.pqos_adopted == record.pqos_reexecuted
            assert not math.isnan(record.pqos_incremental)
        for record in run("incremental"):
            assert math.isnan(record.pqos_reexecuted)
            assert record.pqos_adopted == record.pqos_incremental
        for record in run("warm_start"):
            assert math.isnan(record.pqos_reexecuted)
            assert not math.isnan(record.pqos_adopted)
            # Warm start repairs from the carried-over assignment, never below it.
            assert record.pqos_adopted >= record.pqos_after - 1e-12
        periodic = run("every_k_epochs", policy_period=2)
        assert math.isnan(periodic[0].pqos_reexecuted)  # epoch 0: incremental
        assert not math.isnan(periodic[1].pqos_reexecuted)  # epoch 1: scheduled re-execute


class TestStreaming:
    def test_stream_is_lazy_generator(self, small_scenario):
        simulator = ChurnSimulator(
            scenario=small_scenario,
            algorithms=["grez-virc"],
            churn_spec=ChurnSpec(5, 5, 5),
            seed=2,
            policy="incremental",
        )
        stream = simulator.stream(num_epochs=50)
        first = next(stream)
        assert isinstance(first, EpochRecord)
        assert first.epoch == 0
        stream.close()  # consuming only a prefix is fine — nothing is buffered

    def test_stream_matches_run(self, small_scenario):
        def sim():
            return ChurnSimulator(
                scenario=small_scenario,
                algorithms=["grez-virc"],
                churn_spec=ChurnSpec(10, 10, 10),
                seed=9,
            )

        assert list(sim().stream(2)) == sim().run(2)

    def test_record_row_matches_fields(self, small_scenario):
        record = ChurnSimulator(
            scenario=small_scenario, algorithms=["grez-virc"], seed=0,
            churn_spec=ChurnSpec(5, 5, 5),
        ).run(1)[0]
        row = record.row()
        assert len(row) == len(EpochRecord.FIELDS)
        assert row[EpochRecord.FIELDS.index("algorithm")] == "grez-virc"


class TestSimulationState:
    def test_contacts_buffer_grows_and_is_reused(self, small_scenario):
        instance = CAPInstance.from_scenario(small_scenario)
        state = SimulationState(scenario=small_scenario, instance=instance, assignments={})
        buf = state.contacts_buffer(10)
        assert buf.shape[0] >= 10 and buf.dtype == np.int64
        again = state.contacts_buffer(8)
        assert again is buf  # no reallocation for smaller requests
        bigger = state.contacts_buffer(4 * buf.shape[0])
        assert bigger.shape[0] >= 4 * buf.shape[0]


class TestChurnEdgeCases:
    """Satellite: incremental_reassign (and the pipeline) on degenerate batches."""

    def _advance(self, scenario, batch):
        churn = apply_churn(scenario.population, batch)
        new_scenario = scenario.apply_churn_delta(churn)
        return churn, new_scenario, CAPInstance.from_scenario(new_scenario)

    def test_empty_churn_batch(self, small_scenario, small_instance):
        from repro.core.registry import solve as registry_solve
        from repro.dynamics.policies import carry_over_assignment, incremental_reassign

        old = registry_solve(small_instance, "grez-grec", seed=0)
        churn, _, new_instance = self._advance(small_scenario, ChurnBatch())
        assert new_instance.num_clients == small_instance.num_clients
        carried = carry_over_assignment(old, churn, new_instance)
        np.testing.assert_array_equal(carried.contact_of_client, old.contact_of_client)
        repaired = incremental_reassign(old, new_instance)
        assert repaired.pqos(new_instance) == pytest.approx(old.pqos(small_instance))

    def test_all_clients_leave(self, small_scenario, small_instance):
        from repro.core.registry import solve as registry_solve
        from repro.dynamics.policies import carry_over_assignment, incremental_reassign

        old = registry_solve(small_instance, "grez-grec", seed=0)
        batch = ChurnBatch(leave_indices=np.arange(small_instance.num_clients))
        churn, _, new_instance = self._advance(small_scenario, batch)
        assert new_instance.num_clients == 0
        carried = carry_over_assignment(old, churn, new_instance)
        assert carried.num_clients == 0
        assert carried.pqos(new_instance) == 1.0  # vacuously all clients have QoS
        assert not carried.capacity_exceeded  # no clients, no load
        repaired = incremental_reassign(old, new_instance)
        assert repaired.num_clients == 0
        assert repaired.pqos(new_instance) == 1.0

    def test_join_only_batch(self, small_scenario, small_instance):
        from repro.core.registry import solve as registry_solve
        from repro.dynamics.policies import incremental_reassign

        old = registry_solve(small_instance, "grez-grec", seed=0)
        rng = np.random.default_rng(3)
        join_nodes = rng.integers(0, small_scenario.topology.num_nodes, size=25)
        join_zones = rng.integers(0, small_scenario.num_zones, size=25)
        batch = ChurnBatch(join_nodes=join_nodes, join_zones=join_zones)
        churn, _, new_instance = self._advance(small_scenario, batch)
        assert new_instance.num_clients == small_instance.num_clients + 25
        repaired = incremental_reassign(old, new_instance)
        assert repaired.num_clients == new_instance.num_clients
        np.testing.assert_array_equal(repaired.zone_to_server, old.zone_to_server)
        assert repaired.contact_of_client.min() >= 0

    def test_zone_left_empty_after_churn(self, small_scenario, small_instance):
        from repro.core.registry import solve as registry_solve
        from repro.dynamics.policies import incremental_reassign

        zone = int(small_instance.client_zones[0])
        members = np.flatnonzero(small_instance.client_zones == zone)
        batch = ChurnBatch(leave_indices=members)
        churn, _, new_instance = self._advance(small_scenario, batch)
        assert new_instance.zone_populations()[zone] == 0
        assert new_instance.zone_demands()[zone] == 0.0
        old = registry_solve(small_instance, "grez-grec", seed=0)
        repaired = incremental_reassign(old, new_instance)
        assert repaired.num_clients == new_instance.num_clients
        # The emptied zone stays hosted (zones never churn), just demandless.
        assert 0 <= repaired.zone_to_server[zone] < new_instance.num_servers


class TestAdoptedNameNormalisation:
    def test_algorithm_name_does_not_compound_across_epochs(self, small_scenario, monkeypatch):
        """Repair suffixes must not accumulate epoch over epoch."""
        import repro.dynamics.engine as engine_module

        seen = []
        original = engine_module.warm_start_refine

        def spy(instance, assignment, **kwargs):
            seen.append(assignment.algorithm)
            return original(instance, assignment, **kwargs)

        monkeypatch.setattr(engine_module, "warm_start_refine", spy)
        ChurnSimulator(
            scenario=small_scenario,
            algorithms=["grez-grec"],
            churn_spec=ChurnSpec(10, 10, 10),
            seed=0,
            policy="warm_start",
        ).run(num_epochs=3)
        # Every epoch starts from the *base* name + one carry-over suffix.
        assert seen == ["grez-grec (carried over)"] * 3
