"""Tests for repro.core.validation — feasibility auditing of assignments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.validation import ValidationReport, Violation, validate_assignment


@pytest.fixture()
def good_assignment(tiny_instance):
    zone_map = np.array([0, 1, 2, 1])
    return Assignment(
        zone_to_server=zone_map,
        contact_of_client=zone_map[tiny_instance.client_zones],
        algorithm="good",
    )


class TestValidateAssignment:
    def test_valid_assignment_passes(self, tiny_instance, good_assignment):
        report = validate_assignment(tiny_instance, good_assignment)
        assert report.ok
        assert report.violations == []
        report.raise_if_invalid()  # must not raise

    def test_wrong_zone_shape(self, tiny_instance, good_assignment):
        bad = Assignment(
            zone_to_server=np.array([0, 1]),
            contact_of_client=good_assignment.contact_of_client,
        )
        report = validate_assignment(tiny_instance, bad)
        assert not report.ok
        assert any(v.kind == "shape" for v in report.violations)

    def test_wrong_contact_shape(self, tiny_instance, good_assignment):
        bad = Assignment(
            zone_to_server=good_assignment.zone_to_server,
            contact_of_client=np.array([0, 1, 2]),
        )
        report = validate_assignment(tiny_instance, bad)
        assert any(v.kind == "shape" for v in report.violations)

    def test_server_index_out_of_range(self, tiny_instance, good_assignment):
        bad = Assignment(
            zone_to_server=np.array([0, 1, 2, 9]),
            contact_of_client=good_assignment.contact_of_client,
        )
        report = validate_assignment(tiny_instance, bad)
        assert any(v.kind == "range" for v in report.violations)

    def test_capacity_violation_reported_per_server(self, good_assignment):
        from tests.conftest import make_tiny_instance

        overloaded = make_tiny_instance(capacities=(25.0, 25.0, 25.0))
        # zone_to_server [0,1,2,1] puts 40 on server 1, above its 25 capacity.
        report = validate_assignment(overloaded, good_assignment)
        assert not report.ok
        capacity_violations = [v for v in report.violations if v.kind == "capacity"]
        assert len(capacity_violations) == 1
        assert "server 1" in capacity_violations[0].message

    def test_raise_if_invalid_raises(self, tiny_instance):
        bad = Assignment(zone_to_server=np.array([0, 1]), contact_of_client=np.zeros(8, dtype=int))
        with pytest.raises(ValueError, match="not feasible"):
            validate_assignment(tiny_instance, bad).raise_if_invalid()

    def test_tolerance_allows_marginal_overshoot(self, tiny_instance, good_assignment):
        report = validate_assignment(tiny_instance, good_assignment, capacity_tolerance=0.5)
        assert report.ok


class TestReportObjects:
    def test_violation_str(self):
        violation = Violation("capacity", "server 3 is overloaded")
        assert "capacity" in str(violation)
        assert "server 3" in str(violation)

    def test_empty_report_ok(self):
        assert ValidationReport().ok
