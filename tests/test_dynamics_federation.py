"""Tests for repro.dynamics.federation_engine and the EpochSession step API."""

from __future__ import annotations

import math

import numpy as np
import pytest

import repro.baselines  # noqa: F401  (registers the baseline solvers)
from repro.core.arbitration import ProportionalArbiter
from repro.dynamics.churn import ChurnSpec
from repro.dynamics.engine import ChurnSimulator, EpochRecord
from repro.dynamics.federation_engine import (
    AGGREGATE_SHARD_ID,
    FederatedSimulator,
    _nan_weighted_mean,
)
from repro.dynamics.infrastructure import ServerChurnSpec
from repro.dynamics.migration import MigrationCostModel
from repro.world.federation import build_federation

from tests.conftest import make_small_config

CHURN = ChurnSpec(num_joins=15, num_leaves=15, num_moves=15)


@pytest.fixture(scope="module")
def federation3():
    return build_federation(
        make_small_config(), num_shards=3, seed=11, client_weights=[3, 2, 1]
    )


class TestEpochSession:
    def test_stream_equals_manual_stepping(self, small_scenario):
        sim = ChurnSimulator(
            scenario=small_scenario, algorithms=["grez-grec"], churn_spec=CHURN, seed=5
        )
        streamed = sim.run(3)
        session = ChurnSimulator(
            scenario=small_scenario, algorithms=["grez-grec"], churn_spec=CHURN, seed=5
        ).session(3)
        stepped = []
        while not session.done:
            stepped.extend(session.run_epoch())
        assert len(streamed) == len(stepped)
        for a, b in zip(streamed, stepped):
            assert ChurnSimulator.records_equal(a, b)

    def test_run_epoch_past_end_rejected(self, small_scenario):
        session = ChurnSimulator(
            scenario=small_scenario, algorithms=["grez-grec"], churn_spec=CHURN, seed=5
        ).session(1)
        session.run_epoch()
        with pytest.raises(ValueError, match="already ran"):
            session.run_epoch()

    def test_capacity_delta_applies_to_state(self, small_scenario):
        sim = ChurnSimulator(
            scenario=small_scenario, algorithms=["grez-grec"], churn_spec=CHURN, seed=5
        )
        session = sim.session(2)
        new_caps = small_scenario.servers.capacities * np.linspace(
            0.5, 1.5, small_scenario.num_servers
        )
        records = session.run_epoch(capacity_delta=new_caps)
        assert np.array_equal(session.state.instance.server_capacities, new_caps)
        assert np.array_equal(session.state.scenario.servers.capacities, new_caps)
        assert records[0].num_servers_after == small_scenario.num_servers
        # Same fleet nodes: no forced evacuations from a capacity-only delta.
        assert np.array_equal(
            session.state.scenario.servers.nodes, small_scenario.servers.nodes
        )

    def test_capacity_delta_consumes_no_randomness(self, small_scenario):
        def run(deltas):
            session = ChurnSimulator(
                scenario=small_scenario,
                algorithms=["grez-grec"],
                churn_spec=CHURN,
                seed=9,
            ).session(2)
            out = []
            for delta in deltas:
                out.extend(session.run_epoch(capacity_delta=delta))
            return out, session.state

        plain, state_plain = run([None, None])
        caps = small_scenario.servers.capacities
        shifted, state_shifted = run([None, caps * 1.0])
        # Epoch 0 is untouched; epoch 1's churn stream is identical (the
        # capacity delta is deterministic), so populations agree exactly.
        assert ChurnSimulator.records_equal(plain[0], shifted[0])
        assert np.array_equal(
            state_plain.scenario.population.zones, state_shifted.scenario.population.zones
        )

    def test_capacity_delta_with_server_churn_rejected(self, small_scenario):
        sim = ChurnSimulator(
            scenario=small_scenario,
            algorithms=["grez-grec"],
            churn_spec=CHURN,
            server_churn_spec=ServerChurnSpec(num_joins=1, num_leaves=1),
            seed=5,
        )
        session = sim.session(1)
        with pytest.raises(ValueError, match="server_churn_spec"):
            session.run_epoch(capacity_delta=small_scenario.servers.capacities)

    def test_capacity_delta_shape_validated(self, small_scenario):
        session = ChurnSimulator(
            scenario=small_scenario, algorithms=["grez-grec"], churn_spec=CHURN, seed=5
        ).session(1)
        with pytest.raises(ValueError, match="shape"):
            session.run_epoch(capacity_delta=np.ones(small_scenario.num_servers + 1))

    @pytest.mark.parametrize("backend", ["delta", "rebuild"])
    def test_capacity_delta_backends_bit_identical(self, small_scenario, backend):
        """A capacity re-slice takes the cheap path on delta; rebuild must agree."""

        def run(backend):
            session = ChurnSimulator(
                scenario=small_scenario,
                algorithms=["grez-grec"],
                churn_spec=CHURN,
                seed=13,
                backend=backend,
            ).session(3)
            caps = small_scenario.servers.capacities
            records = []
            for delta in (None, caps * 0.8 + caps.mean() * 0.2, None):
                records.extend(session.run_epoch(capacity_delta=delta))
            return records

        ref = run("rebuild")
        got = run(backend)
        for a, b in zip(ref, got):
            assert ChurnSimulator.records_equal(a, b)


class TestEpochRecordFederationFields:
    def test_shard_id_defaults_to_unsharded(self):
        record = EpochRecord(
            epoch=0,
            algorithm="x",
            pqos_before=1.0,
            pqos_after=1.0,
            pqos_reexecuted=1.0,
            pqos_incremental=1.0,
            utilization_before=0.5,
            utilization_reexecuted=0.5,
            num_clients_before=1,
            num_clients_after=1,
        )
        assert record.shard_id == AGGREGATE_SHARD_ID
        assert "shard_id" not in EpochRecord.FIELDS
        assert EpochRecord.FEDERATED_FIELDS == ("shard_id", *EpochRecord.FIELDS)
        assert record.federated_row() == [record.shard_id, *record.row()]

    def test_records_equal_ignores_shard_id(self):
        kwargs = dict(
            epoch=0,
            algorithm="x",
            pqos_before=1.0,
            pqos_after=1.0,
            pqos_reexecuted=float("nan"),
            pqos_incremental=1.0,
            utilization_before=0.5,
            utilization_reexecuted=0.5,
            num_clients_before=1,
            num_clients_after=1,
        )
        a = EpochRecord(shard_id=0, **kwargs)
        b = EpochRecord(shard_id=7, **kwargs)
        assert ChurnSimulator.records_equal(a, b)


class TestNanWeightedMean:
    def test_weighted(self):
        assert _nan_weighted_mean([1.0, 0.0], [3.0, 1.0]) == pytest.approx(0.75)

    def test_skips_nans(self):
        assert _nan_weighted_mean([1.0, float("nan")], [1.0, 100.0]) == pytest.approx(1.0)

    def test_all_nan(self):
        assert math.isnan(_nan_weighted_mean([float("nan")], [1.0]))

    def test_zero_weights_fall_back_to_plain_mean(self):
        assert _nan_weighted_mean([1.0, 3.0], [0.0, 0.0]) == pytest.approx(2.0)


class TestFederationIdentityAtOneShard:
    """Satellite: federation = identity at N=1 (bit-for-bit)."""

    @pytest.mark.parametrize("policy", ["reexecute", "warm_start", "every_2_epochs"])
    @pytest.mark.parametrize("backend", ["delta", "rebuild"])
    def test_single_shard_static_arbiter_matches_churn_simulator(self, policy, backend):
        fed = build_federation(make_small_config(), num_shards=1, seed=31)
        common = dict(
            algorithms=["grez-grec", "ranz-virc"],
            churn_spec=CHURN,
            migration_cost=MigrationCostModel(cost_per_client=1.0),
            seed=77,
            policy=policy,
            backend=backend,
        )
        federated = FederatedSimulator(world=fed, arbiter="static", **common).run(4)
        baseline = ChurnSimulator(scenario=fed.shards[0], **common).run(4)

        shard_records = [r for r in federated if r.shard_id == 0]
        assert len(shard_records) == len(baseline)
        for a, b in zip(shard_records, baseline):
            assert ChurnSimulator.records_equal(a, b)

    def test_single_shard_aggregate_equals_shard(self):
        fed = build_federation(make_small_config(), num_shards=1, seed=31)
        records = FederatedSimulator(
            world=fed, algorithms=["grez-grec"], arbiter="static", churn_spec=CHURN, seed=3
        ).run(2)
        shard = [r for r in records if r.shard_id == 0]
        aggregate = [r for r in records if r.shard_id == AGGREGATE_SHARD_ID]
        assert len(shard) == len(aggregate) == 2
        for a, b in zip(shard, aggregate):
            assert ChurnSimulator.records_equal(a, b)


class TestFederatedSimulator:
    def test_record_layout(self, federation3):
        algorithms = ["grez-grec", "ranz-virc"]
        records = FederatedSimulator(
            world=federation3, algorithms=algorithms, churn_spec=CHURN, seed=1
        ).run(2)
        # Per epoch: 3 shards x 2 algorithms, then 2 aggregates.
        assert len(records) == 2 * (3 * 2 + 2)
        epoch0 = records[: 3 * 2 + 2]
        assert [r.shard_id for r in epoch0] == [0, 0, 1, 1, 2, 2, -1, -1]
        assert all(r.epoch == 0 for r in epoch0)
        for r in records:
            assert r.num_servers_after == federation3.num_servers

    def test_aggregate_is_client_weighted(self, federation3):
        records = FederatedSimulator(
            world=federation3,
            algorithms=["grez-grec"],
            churn_spec=CHURN,
            seed=1,
            migration_cost=MigrationCostModel(cost_per_client=1.0),
        ).run(1)
        shards = [r for r in records if r.shard_id != AGGREGATE_SHARD_ID]
        agg = [r for r in records if r.shard_id == AGGREGATE_SHARD_ID][0]
        weights = [r.num_clients_after for r in shards]
        expected = sum(r.pqos_adopted * w for r, w in zip(shards, weights)) / sum(weights)
        assert agg.pqos_adopted == pytest.approx(expected)
        assert agg.num_clients_after == sum(weights)
        assert agg.clients_migrated == sum(r.clients_migrated for r in shards)
        assert agg.migration_cost == pytest.approx(
            sum(r.migration_cost for r in shards)
        )

    def test_proportional_arbiter_moves_capacity(self, federation3):
        """After the first arbitration, the skewed shards' capacities diverge."""
        sim = FederatedSimulator(
            world=federation3,
            algorithms=["grez-grec"],
            arbiter=ProportionalArbiter(min_slice_fraction=0.02),
            churn_spec=CHURN,
            seed=1,
        )
        records = sim.run(2)
        # Indirect but deterministic check: with the static arbiter the three
        # shard records of epoch 1 see equal total capacities (the initial
        # equal split); with the proportional arbiter the big shard's
        # utilisation drops because its denominator grew.
        static = FederatedSimulator(
            world=federation3,
            algorithms=["grez-grec"],
            arbiter="static",
            churn_spec=CHURN,
            seed=1,
        ).run(2)
        prop_epoch1 = [r for r in records if r.epoch == 1 and r.shard_id == 0]
        static_epoch1 = [r for r in static if r.epoch == 1 and r.shard_id == 0]
        assert prop_epoch1[0].utilization_adopted < static_epoch1[0].utilization_adopted

    def test_epoch0_identical_across_arbiters(self, federation3):
        """Arbitration first acts between epochs: epoch 0 is arbiter-independent."""
        runs = {}
        for arbiter in ("static", "proportional", "regret"):
            runs[arbiter] = [
                r
                for r in FederatedSimulator(
                    world=federation3,
                    algorithms=["grez-grec"],
                    arbiter=arbiter,
                    churn_spec=CHURN,
                    seed=6,
                ).run(1)
            ]
        for arbiter in ("proportional", "regret"):
            for a, b in zip(runs["static"], runs[arbiter]):
                assert ChurnSimulator.records_equal(a, b)

    def test_per_shard_churn_specs(self, federation3):
        specs = [
            ChurnSpec(num_joins=5, num_leaves=5, num_moves=5),
            ChurnSpec(num_joins=0, num_leaves=0, num_moves=0),
            ChurnSpec(num_joins=2, num_leaves=0, num_moves=0),
        ]
        records = FederatedSimulator(
            world=federation3, algorithms=["grez-grec"], churn_spec=specs, seed=1
        ).run(1)
        by_shard = {r.shard_id: r for r in records if r.shard_id != AGGREGATE_SHARD_ID}
        assert by_shard[1].num_clients_after == by_shard[1].num_clients_before
        assert (
            by_shard[2].num_clients_after == by_shard[2].num_clients_before + 2
        )

    def test_churn_spec_count_mismatch_rejected(self, federation3):
        sim = FederatedSimulator(
            world=federation3,
            algorithms=["grez-grec"],
            churn_spec=[CHURN, CHURN],
            seed=1,
        )
        with pytest.raises(ValueError, match="specs"):
            sim.run(1)

    def test_migration_budget_respected_per_shard(self, federation3):
        budget = 10.0
        records = FederatedSimulator(
            world=federation3,
            algorithms=["grez-grec"],
            arbiter="proportional",
            churn_spec=CHURN,
            migration_cost=MigrationCostModel(cost_per_client=1.0),
            policy_migration_budget=budget,
            seed=1,
        ).run(3)
        for r in records:
            if r.shard_id != AGGREGATE_SHARD_ID:
                assert r.migration_cost <= budget

    def test_num_epochs_validated(self, federation3):
        sim = FederatedSimulator(world=federation3, algorithms=["grez-grec"], seed=1)
        with pytest.raises(ValueError):
            sim.run(0)

    def test_worst_shard_pqos_helper(self, federation3):
        records = FederatedSimulator(
            world=federation3, algorithms=["grez-grec"], churn_spec=CHURN, seed=1
        ).run(2)
        worst = FederatedSimulator.worst_shard_pqos(records, "grez-grec")
        shard_means = []
        for shard in range(3):
            vals = [
                r.pqos_adopted
                for r in records
                if r.shard_id == shard and r.algorithm == "grez-grec"
            ]
            shard_means.append(sum(vals) / len(vals))
        assert worst == pytest.approx(min(shard_means))
        assert math.isnan(FederatedSimulator.worst_shard_pqos(records, "unknown"))
