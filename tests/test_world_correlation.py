"""Tests for repro.world.correlation — the physical↔virtual correlation model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.world.correlation import RegionZoneMap, correlated_zone_choice


class TestRegionZoneMap:
    def test_balanced_partition_sizes(self):
        regions = np.array([0, 1, 2, 3])
        mapping = RegionZoneMap.balanced(10, regions, seed=0)
        sizes = [mapping.zones_of_region(r).size for r in range(4)]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_every_zone_assigned_once(self):
        mapping = RegionZoneMap.balanced(12, np.array([0, 1, 2]), seed=1)
        all_zones = np.concatenate([mapping.zones_of_region(r) for r in range(3)])
        assert sorted(all_zones.tolist()) == list(range(12))

    def test_more_regions_than_zones_never_empty(self):
        mapping = RegionZoneMap.balanced(3, np.arange(10), seed=0)
        for region in range(10):
            assert mapping.zones_of_region(region).size >= 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            RegionZoneMap.balanced(0, np.array([0]))
        with pytest.raises(ValueError):
            RegionZoneMap.balanced(5, np.array([], dtype=int))

    def test_region_of_zone_validation(self):
        with pytest.raises(ValueError):
            RegionZoneMap(num_zones=2, region_of_zone=np.array([0, 7]), regions=np.array([0, 1]))

    def test_preference_matrix_keys(self):
        mapping = RegionZoneMap.balanced(6, np.array([3, 5]), seed=0)
        prefs = mapping.preference_matrix()
        assert set(prefs) == {3, 5}


class TestCorrelatedZoneChoice:
    def setup_method(self):
        self.region_map = RegionZoneMap.balanced(8, np.array([0, 1]), seed=0)
        self.weights = np.ones(8)

    def test_zero_delta_ignores_regions(self):
        regions = np.zeros(5000, dtype=int)
        zones = correlated_zone_choice(regions, self.weights, 0.0, self.region_map, seed=0)
        counts = np.bincount(zones, minlength=8)
        # All 8 zones get clients even though every client is from region 0.
        assert (counts > 0).all()

    def test_full_delta_respects_preference_groups(self):
        regions = np.array([0] * 100 + [1] * 100)
        zones = correlated_zone_choice(regions, self.weights, 1.0, self.region_map, seed=0)
        group0 = set(self.region_map.zones_of_region(0).tolist())
        group1 = set(self.region_map.zones_of_region(1).tolist())
        assert set(zones[:100].tolist()) <= group0
        assert set(zones[100:].tolist()) <= group1

    def test_intermediate_delta_mixes(self):
        regions = np.zeros(4000, dtype=int)
        zones = correlated_zone_choice(regions, self.weights, 0.5, self.region_map, seed=0)
        group0 = self.region_map.zones_of_region(0)
        in_group = np.isin(zones, group0).mean()
        # About delta + (1-delta) * |group|/|zones| = 0.5 + 0.5*0.5 = 0.75.
        assert 0.65 < in_group < 0.85

    def test_weights_respected(self):
        weights = np.ones(8)
        weights[3] = 50.0
        regions = np.zeros(4000, dtype=int)
        zones = correlated_zone_choice(regions, weights, 0.0, self.region_map, seed=0)
        assert (zones == 3).mean() > 0.5

    def test_invalid_delta(self):
        with pytest.raises(ValueError):
            correlated_zone_choice(np.array([0]), self.weights, 1.5, self.region_map)

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            correlated_zone_choice(np.array([0]), np.ones(3), 0.5, self.region_map)
        with pytest.raises(ValueError):
            correlated_zone_choice(np.array([0]), np.zeros(8), 0.5, self.region_map)

    def test_deterministic(self):
        regions = np.array([0, 1, 0, 1])
        a = correlated_zone_choice(regions, self.weights, 0.7, self.region_map, seed=9)
        b = correlated_zone_choice(regions, self.weights, 0.7, self.region_map, seed=9)
        np.testing.assert_array_equal(a, b)
