"""Tests for repro.topology.placement — server and client placement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.hierarchical import HierarchicalParams, hierarchical_topology
from repro.topology.placement import (
    ClusteredPlacementParams,
    place_clients_clustered,
    place_clients_uniform,
    place_servers,
)
from repro.topology.waxman import waxman_topology


@pytest.fixture(scope="module")
def flat_topology():
    return waxman_topology(30, seed=1)


@pytest.fixture(scope="module")
def domain_topology():
    return hierarchical_topology(HierarchicalParams(num_as=6, routers_per_as=5), seed=1)


class TestPlaceServers:
    def test_distinct_nodes(self, flat_topology):
        nodes = place_servers(flat_topology, 8, seed=0)
        assert nodes.size == 8
        assert np.unique(nodes).size == 8
        assert nodes.max() < flat_topology.num_nodes

    def test_spread_across_domains(self, domain_topology):
        nodes = place_servers(domain_topology, 6, seed=0)
        domains = domain_topology.node_domain[nodes]
        assert np.unique(domains).size == 6

    def test_more_servers_than_domains_falls_back(self, domain_topology):
        nodes = place_servers(domain_topology, 10, seed=0)
        assert np.unique(nodes).size == 10

    def test_no_spreading_when_disabled(self, domain_topology):
        nodes = place_servers(domain_topology, 6, seed=0, spread_across_domains=False)
        assert np.unique(nodes).size == 6

    def test_too_many_servers(self, flat_topology):
        with pytest.raises(ValueError):
            place_servers(flat_topology, flat_topology.num_nodes + 1)

    def test_deterministic(self, flat_topology):
        a = place_servers(flat_topology, 5, seed=3)
        b = place_servers(flat_topology, 5, seed=3)
        np.testing.assert_array_equal(a, b)

    def test_invalid_count(self, flat_topology):
        with pytest.raises(ValueError):
            place_servers(flat_topology, 0)


class TestPlaceClientsUniform:
    def test_within_range(self, flat_topology):
        nodes = place_clients_uniform(flat_topology, 100, seed=0)
        assert nodes.size == 100
        assert nodes.min() >= 0 and nodes.max() < flat_topology.num_nodes

    def test_zero_clients(self, flat_topology):
        assert place_clients_uniform(flat_topology, 0, seed=0).size == 0

    def test_exclude_nodes_honoured(self, flat_topology):
        excluded = np.array([0, 1, 2])
        nodes = place_clients_uniform(flat_topology, 200, seed=0, exclude_nodes=excluded)
        assert not np.isin(nodes, excluded).any()

    def test_exclude_everything_raises(self):
        topo = waxman_topology(3, seed=0)
        with pytest.raises(ValueError):
            place_clients_uniform(topo, 5, exclude_nodes=np.arange(3))

    def test_negative_count(self, flat_topology):
        with pytest.raises(ValueError):
            place_clients_uniform(flat_topology, -1)

    def test_roughly_uniform(self, flat_topology):
        nodes = place_clients_uniform(flat_topology, 6000, seed=0)
        counts = np.bincount(nodes, minlength=flat_topology.num_nodes)
        # Expected 200 per node; no node should be empty or wildly dominant.
        assert counts.min() > 100
        assert counts.max() < 350


class TestPlaceClientsClustered:
    def test_hotspots_receive_most_clients(self, flat_topology):
        params = ClusteredPlacementParams(num_hotspots=3, hotspot_fraction=0.8)
        nodes = place_clients_clustered(flat_topology, 2000, params=params, seed=0)
        counts = np.bincount(nodes, minlength=flat_topology.num_nodes)
        top3 = np.sort(counts)[-3:].sum()
        assert top3 / 2000 > 0.6

    def test_fraction_zero_is_uniform_like(self, flat_topology):
        params = ClusteredPlacementParams(num_hotspots=3, hotspot_fraction=0.0)
        nodes = place_clients_clustered(flat_topology, 500, params=params, seed=0)
        counts = np.bincount(nodes, minlength=flat_topology.num_nodes)
        assert counts.max() < 500 * 0.2

    def test_deterministic(self, flat_topology):
        a = place_clients_clustered(flat_topology, 50, seed=9)
        b = place_clients_clustered(flat_topology, 50, seed=9)
        np.testing.assert_array_equal(a, b)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ClusteredPlacementParams(num_hotspots=0)
        with pytest.raises(ValueError):
            ClusteredPlacementParams(hotspot_fraction=1.5)
