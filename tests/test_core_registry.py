"""Tests for repro.core.registry — the named solver registry."""

from __future__ import annotations

import pytest

import repro.baselines  # noqa: F401  (ensures the baseline solvers are registered)
from repro.core.registry import (
    ensure_registered,
    get_solver,
    register_solver,
    solve,
    solver_names,
)
from repro.core.validation import validate_assignment


class TestRegistryContents:
    def test_paper_algorithms_registered(self):
        names = solver_names()
        for expected in ("ranz-virc", "ranz-grec", "grez-virc", "grez-grec", "optimal"):
            assert expected in names

    def test_baselines_registered(self):
        names = solver_names()
        assert "load-balance" in names
        assert "nearest-server" in names

    def test_names_sorted(self):
        assert solver_names() == sorted(solver_names())


class TestLookupAndSolve:
    def test_get_solver_case_insensitive(self):
        assert get_solver("GREZ-GREC") is get_solver("grez-grec")

    def test_unknown_solver(self):
        with pytest.raises(KeyError):
            get_solver("quantum-annealer")

    def test_solve_by_name(self, small_instance):
        assignment = solve(small_instance, "grez-grec", seed=0)
        assert assignment.algorithm == "grez-grec"
        assert validate_assignment(small_instance, assignment).ok

    def test_solve_baseline_by_name(self, small_instance):
        assignment = solve(small_instance, "load-balance", seed=0)
        assert assignment.algorithm == "load-balance"

    def test_ensure_registered(self):
        ensure_registered(["grez-grec", "optimal"])
        with pytest.raises(KeyError):
            ensure_registered(["grez-grec", "missing-solver"])


class TestRegistration:
    def test_register_and_overwrite_semantics(self, tiny_instance):
        def fake_solver(instance, seed=None):
            return solve(instance, "grez-virc", seed=seed).with_algorithm("fake")

        register_solver("test-fake-solver", fake_solver, overwrite=True)
        try:
            assert "test-fake-solver" in solver_names()
            result = solve(tiny_instance, "test-fake-solver")
            assert result.algorithm == "fake"
            with pytest.raises(KeyError):
                register_solver("test-fake-solver", fake_solver)  # no overwrite
        finally:
            # Clean up so other tests see the standard registry.
            from repro.core import registry as registry_module

            registry_module._REGISTRY.pop("test-fake-solver", None)
