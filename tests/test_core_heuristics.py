"""Tests for the four phase heuristics: RanZ, GreZ (IAP) and VirC, GreC (RAP)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import ZoneAssignment
from repro.core.costs import initial_cost_matrix
from repro.core.grec import assign_contacts_greedy
from repro.core.grez import assign_zones_greedy
from repro.core.problem import CAPInstance
from repro.core.ranz import assign_zones_random
from repro.core.virc import assign_contacts_virtual
from tests.conftest import make_tiny_instance


class TestRanZ:
    def test_all_zones_assigned_within_capacity(self, small_instance):
        result = assign_zones_random(small_instance, seed=0)
        assert result.num_zones == small_instance.num_zones
        assert (result.zone_to_server >= 0).all()
        assert (result.zone_to_server < small_instance.num_servers).all()
        loads = result.server_zone_loads(small_instance)
        assert (loads <= small_instance.server_capacities * (1 + 1e-6)).all()
        assert not result.capacity_exceeded

    def test_deterministic_for_seed(self, small_instance):
        a = assign_zones_random(small_instance, seed=5)
        b = assign_zones_random(small_instance, seed=5)
        np.testing.assert_array_equal(a.zone_to_server, b.zone_to_server)

    def test_different_seeds_generally_differ(self, small_instance):
        a = assign_zones_random(small_instance, seed=1)
        b = assign_zones_random(small_instance, seed=2)
        assert not np.array_equal(a.zone_to_server, b.zone_to_server)

    def test_algorithm_name_and_runtime(self, tiny_instance):
        result = assign_zones_random(tiny_instance, seed=0)
        assert result.algorithm == "ranz"
        assert result.runtime_seconds >= 0.0

    def test_overload_flagged_when_capacity_insufficient(self, overloaded_instance):
        result = assign_zones_random(overloaded_instance, seed=0)
        assert result.capacity_exceeded
        assert (result.zone_to_server >= 0).all()

    def test_ignores_delays(self, tiny_instance):
        # RanZ is delay-oblivious: doubling all delays cannot change the result
        # for the same seed because delays never enter its decisions.
        doubled = tiny_instance.with_delays(
            client_server_delays=2 * tiny_instance.client_server_delays
        )
        a = assign_zones_random(tiny_instance, seed=3)
        b = assign_zones_random(doubled, seed=3)
        np.testing.assert_array_equal(a.zone_to_server, b.zone_to_server)

    def test_rng_draw_order_matches_reference_scan(self, small_instance):
        # The incremental feasibility-mask maintenance must leave the feasible
        # sets — and hence the RNG draw sequence — bit-identical to the
        # original per-zone scan.
        from repro.utils.rng import as_generator

        def reference(instance, seed):
            rng = as_generator(seed)
            zone_demands = instance.zone_demands()
            populations = instance.zone_populations()
            capacities = instance.server_capacities
            loads = np.zeros(instance.num_servers)
            zone_to_server = np.full(instance.num_zones, -1, dtype=np.int64)
            for zone in np.argsort(-populations, kind="stable"):
                demand = zone_demands[zone]
                feasible = np.flatnonzero(loads + demand <= capacities + 1e-9)
                if feasible.size:
                    server = int(rng.choice(feasible))
                else:
                    server = int(np.argmax(capacities - loads))
                zone_to_server[zone] = server
                loads[server] += demand
            return zone_to_server

        for seed in range(10):
            np.testing.assert_array_equal(
                assign_zones_random(small_instance, seed=seed).zone_to_server,
                reference(small_instance, seed),
            )


class TestGreZ:
    def test_tiny_instance_gets_obvious_assignment(self, tiny_instance):
        result = assign_zones_greedy(tiny_instance)
        # Zones 0-2 must go to their dedicated server; zone 3's best is server 1.
        np.testing.assert_array_equal(result.zone_to_server[:3], [0, 1, 2])
        assert result.zone_to_server[3] == 1
        assert result.algorithm == "grez"
        assert not result.capacity_exceeded

    def test_capacity_respected(self, tight_instance):
        result = assign_zones_greedy(tight_instance)
        loads = result.server_zone_loads(tight_instance)
        assert (loads <= tight_instance.server_capacities * (1 + 1e-6)).all()
        assert not result.capacity_exceeded

    def test_overloaded_instance_flags(self, overloaded_instance):
        result = assign_zones_greedy(overloaded_instance)
        assert result.capacity_exceeded

    def test_never_worse_than_random_on_average(self, small_instance):
        greedy_cost = _zone_assignment_cost(small_instance, assign_zones_greedy(small_instance))
        random_costs = [
            _zone_assignment_cost(small_instance, assign_zones_random(small_instance, seed=s))
            for s in range(5)
        ]
        assert greedy_cost <= np.mean(random_costs)

    def test_dynamic_variant_name(self, tiny_instance):
        result = assign_zones_greedy(tiny_instance, recompute_regret=True)
        assert result.algorithm == "grez-dynamic"
        np.testing.assert_array_equal(result.zone_to_server[:3], [0, 1, 2])

    def test_deterministic(self, small_instance):
        a = assign_zones_greedy(small_instance)
        b = assign_zones_greedy(small_instance)
        np.testing.assert_array_equal(a.zone_to_server, b.zone_to_server)


def _zone_assignment_cost(instance: CAPInstance, zones: ZoneAssignment) -> float:
    """Total IAP cost C^I(x) of a zone assignment (number of QoS misses)."""
    cost = initial_cost_matrix(instance)
    return float(cost[zones.zone_to_server, np.arange(instance.num_zones)].sum())


class TestVirC:
    def test_contact_equals_target(self, tiny_instance):
        zones = ZoneAssignment(zone_to_server=np.array([0, 1, 2, 0]), algorithm="grez")
        assignment = assign_contacts_virtual(tiny_instance, zones)
        np.testing.assert_array_equal(
            assignment.contact_of_client, zones.targets_of_clients(tiny_instance)
        )
        assert assignment.algorithm == "grez-virc"
        assert not assignment.forwarded_mask(tiny_instance).any()

    def test_no_forwarding_overhead(self, tiny_instance):
        zones = ZoneAssignment(zone_to_server=np.array([0, 1, 2, 0]))
        assignment = assign_contacts_virtual(tiny_instance, zones)
        np.testing.assert_allclose(
            assignment.server_loads(tiny_instance), zones.server_zone_loads(tiny_instance)
        )

    def test_zone_count_mismatch_rejected(self, tiny_instance):
        zones = ZoneAssignment(zone_to_server=np.array([0, 1]))
        with pytest.raises(ValueError):
            assign_contacts_virtual(tiny_instance, zones)

    def test_propagates_capacity_flag(self, tiny_instance):
        zones = ZoneAssignment(zone_to_server=np.array([0, 1, 2, 0]), capacity_exceeded=True)
        assert assign_contacts_virtual(tiny_instance, zones).capacity_exceeded


class TestGreC:
    def test_forwards_clients_over_the_mesh(self, tiny_instance):
        # Host zone 3 on server 0 so clients 6, 7 miss the bound directly
        # (120 > 100) but can make it through server 1 (60 + 30 = 90).
        zones = ZoneAssignment(zone_to_server=np.array([0, 1, 2, 0]), algorithm="grez")
        assignment = assign_contacts_greedy(tiny_instance, zones)
        assert assignment.algorithm == "grez-grec"
        assert assignment.contact_of_client[6] == 1
        assert assignment.contact_of_client[7] == 1
        assert assignment.pqos(tiny_instance) == pytest.approx(1.0)

    def test_satisfied_clients_keep_their_target(self, tiny_instance):
        zones = ZoneAssignment(zone_to_server=np.array([0, 1, 2, 0]))
        assignment = assign_contacts_greedy(tiny_instance, zones)
        targets = zones.targets_of_clients(tiny_instance)
        np.testing.assert_array_equal(assignment.contact_of_client[:6], targets[:6])

    def test_respects_residual_capacity(self):
        # Give server 1 no headroom for forwarding: capacity exactly its zone load.
        instance = make_tiny_instance(capacities=(1000.0, 20.0, 1000.0))
        zones = ZoneAssignment(zone_to_server=np.array([0, 1, 2, 0]))
        assignment = assign_contacts_greedy(instance, zones)
        # Server 1 cannot take the extra 2×10 per client, so clients 6, 7 cannot
        # be forwarded through it.
        assert (assignment.contact_of_client[6] != 1) or assignment.is_capacity_feasible(
            instance
        )
        assert assignment.is_capacity_feasible(instance)

    def test_falls_back_to_target_when_nothing_fits(self):
        instance = make_tiny_instance(capacities=(1000.0, 20.0, 20.0))
        zones = ZoneAssignment(zone_to_server=np.array([0, 1, 2, 0]))
        assignment = assign_contacts_greedy(instance, zones)
        # No server has room: the two needy clients stay on their target server.
        np.testing.assert_array_equal(assignment.contact_of_client[6:], [0, 0])

    def test_never_reduces_pqos_vs_virc(self, small_instance):
        zones = assign_zones_greedy(small_instance)
        virc = assign_contacts_virtual(small_instance, zones)
        grec = assign_contacts_greedy(small_instance, zones)
        assert grec.pqos(small_instance) >= virc.pqos(small_instance) - 1e-12

    def test_zone_count_mismatch_rejected(self, tiny_instance):
        with pytest.raises(ValueError):
            assign_contacts_greedy(tiny_instance, ZoneAssignment(zone_to_server=np.array([0])))

    def test_dynamic_variant_name(self, tiny_instance):
        zones = ZoneAssignment(zone_to_server=np.array([0, 1, 2, 0]), algorithm="grez")
        result = assign_contacts_greedy(tiny_instance, zones, recompute_regret=True)
        assert result.algorithm == "grez-grec-dynamic"


class TestSolverBackendEquivalence:
    """End-to-end GreZ / GreC assignments are bit-identical across backends."""

    @pytest.mark.parametrize("recompute", [False, True])
    def test_grez_backends_agree(self, small_instance, recompute):
        loop = assign_zones_greedy(small_instance, recompute_regret=recompute, backend="loop")
        vec = assign_zones_greedy(
            small_instance, recompute_regret=recompute, backend="vectorized"
        )
        np.testing.assert_array_equal(loop.zone_to_server, vec.zone_to_server)
        assert loop.capacity_exceeded == vec.capacity_exceeded

    @pytest.mark.parametrize("recompute", [False, True])
    def test_grec_backends_agree(self, small_instance, recompute):
        zones = assign_zones_greedy(small_instance)
        loop = assign_contacts_greedy(
            small_instance, zones, recompute_regret=recompute, backend="loop"
        )
        vec = assign_contacts_greedy(
            small_instance, zones, recompute_regret=recompute, backend="vectorized"
        )
        np.testing.assert_array_equal(loop.contact_of_client, vec.contact_of_client)
        assert loop.capacity_exceeded == vec.capacity_exceeded

    @pytest.mark.slow
    @pytest.mark.parametrize("algorithm", ["grez-grec", "grez-grec-dynamic", "ranz-grec"])
    def test_paper_scale_scenario_backends_agree(self, algorithm):
        # The paper's default configuration (20s-80z-1000c-500cp) exercises
        # thousands of placements with real capacity contention.
        from repro.core.registry import solve as registry_solve
        from repro.core.problem import CAPInstance
        from repro.experiments.config import config_from_label
        from repro.world.scenario import build_scenario

        config = config_from_label("20s-80z-1000c-500cp", correlation=0.0)
        scenario = build_scenario(config, seed=11)
        instance = CAPInstance.from_scenario(scenario)
        loop = registry_solve(instance, algorithm, seed=5, backend="loop")
        vec = registry_solve(instance, algorithm, seed=5, backend="vectorized")
        np.testing.assert_array_equal(loop.zone_to_server, vec.zone_to_server)
        np.testing.assert_array_equal(loop.contact_of_client, vec.contact_of_client)
        assert loop.capacity_exceeded == vec.capacity_exceeded
