"""Tests for repro.core.two_phase — the four two-phase CAP algorithms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.two_phase import (
    PAPER_ALGORITHMS,
    STANDARD_ALGORITHMS,
    TwoPhaseAlgorithm,
    available_algorithms,
    solve_cap,
)
from repro.core.validation import validate_assignment


class TestRegistryContents:
    def test_paper_has_exactly_four(self):
        assert set(PAPER_ALGORITHMS) == {"ranz-virc", "ranz-grec", "grez-virc", "grez-grec"}

    def test_standard_superset_of_paper(self):
        assert set(PAPER_ALGORITHMS) <= set(STANDARD_ALGORITHMS)

    def test_available_algorithms_sorted(self):
        names = available_algorithms()
        assert names == sorted(names)
        assert "grez-grec" in names


class TestSolveCap:
    @pytest.mark.parametrize("algorithm", sorted(PAPER_ALGORITHMS))
    def test_produces_valid_assignment(self, small_instance, algorithm):
        assignment = solve_cap(small_instance, algorithm, seed=0)
        assert assignment.algorithm == algorithm
        assert assignment.num_clients == small_instance.num_clients
        assert assignment.num_zones == small_instance.num_zones
        report = validate_assignment(small_instance, assignment)
        assert report.ok, str(report.violations)

    def test_case_insensitive_name(self, tiny_instance):
        assignment = solve_cap(tiny_instance, "GreZ-GreC", seed=0)
        assert assignment.algorithm == "grez-grec"

    def test_unknown_algorithm(self, tiny_instance):
        with pytest.raises(KeyError):
            solve_cap(tiny_instance, "does-not-exist")

    def test_default_is_grez_grec(self, tiny_instance):
        assert solve_cap(tiny_instance, seed=0).algorithm == "grez-grec"

    def test_seed_only_affects_ranz(self, small_instance):
        a = solve_cap(small_instance, "grez-grec", seed=1)
        b = solve_cap(small_instance, "grez-grec", seed=2)
        np.testing.assert_array_equal(a.zone_to_server, b.zone_to_server)
        c = solve_cap(small_instance, "ranz-virc", seed=1)
        d = solve_cap(small_instance, "ranz-virc", seed=2)
        assert not np.array_equal(c.zone_to_server, d.zone_to_server)

    def test_custom_registry(self, tiny_instance):
        custom = {"only": STANDARD_ALGORITHMS["grez-virc"]}
        # The algorithm keeps its own name even when registered under another key.
        result = solve_cap(tiny_instance, "only", registry=custom)
        assert result.algorithm == "grez-virc"
        with pytest.raises(KeyError):
            solve_cap(tiny_instance, "grez-grec", registry=custom)


class TestPaperOrdering:
    def test_grez_beats_ranz_on_tiny_instance(self, tiny_instance):
        grez = solve_cap(tiny_instance, "grez-grec", seed=0)
        ranz_pqos = np.mean(
            [solve_cap(tiny_instance, "ranz-virc", seed=s).pqos(tiny_instance) for s in range(8)]
        )
        assert grez.pqos(tiny_instance) >= ranz_pqos

    def test_grec_refinement_never_hurts(self, small_instance):
        virc = solve_cap(small_instance, "grez-virc", seed=0)
        grec = solve_cap(small_instance, "grez-grec", seed=0)
        assert grec.pqos(small_instance) >= virc.pqos(small_instance) - 1e-12

    def test_virc_has_lowest_utilization(self, small_instance):
        virc = solve_cap(small_instance, "grez-virc", seed=0)
        grec = solve_cap(small_instance, "grez-grec", seed=0)
        assert virc.resource_utilization(small_instance) <= grec.resource_utilization(
            small_instance
        ) + 1e-12


class TestTwoPhaseAlgorithmObject:
    def test_solve_composes_phases(self, tiny_instance):
        algo = PAPER_ALGORITHMS["grez-grec"]
        assert isinstance(algo, TwoPhaseAlgorithm)
        assignment = algo.solve(tiny_instance, seed=0)
        assert assignment.algorithm == "grez-grec"
        assert assignment.pqos(tiny_instance) == pytest.approx(1.0)

    def test_description_present(self):
        for algo in PAPER_ALGORITHMS.values():
            assert algo.description
