"""Tests for repro.dynamics.scenarios — the incident scenario library.

Covers the spec-string DSL, canonical (order-deterministic) timeline
composition, the per-epoch runtime plans (capacity gating, flash-crowd decay,
diurnal modulation, delay overlays), backend bit-identity of scenario runs
(delta|rebuild × full|incremental), graceful degradation end to end through
the engine / controller / federation, and the recovery metrics.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.baselines  # noqa: F401  (registers the baseline solvers)
from repro.dynamics.churn import ChurnSpec
from repro.dynamics.controller import RebalanceController, RebalancePolicy
from repro.dynamics.degradation import AdmissionPolicy
from repro.dynamics.engine import ChurnSimulator, EpochRecord

records_equal = ChurnSimulator.records_equal
from repro.dynamics.federation_engine import AGGREGATE_SHARD_ID, FederatedSimulator
from repro.dynamics.infrastructure import ServerChurnSpec
from repro.dynamics.scenarios import (
    MIN_GATED_CAPACITY_BPS,
    SCENARIO_LIBRARY,
    DiurnalEvent,
    FlashCrowdEvent,
    LinkDegradationEvent,
    MaintenanceEvent,
    OutageEvent,
    ScenarioRuntime,
    ScenarioTimeline,
    build_timeline,
    parse_scenario,
)
from repro.metrics.recovery import recovery_report
from repro.world.federation import build_federation
from repro.world.scenario import build_scenario

from tests.conftest import make_small_config

#: Small-world churn used by every engine-level scenario test.
CHURN = ChurnSpec(num_joins=10, num_leaves=10, num_moves=5)


def _scenario(delay_backend="dense", **overrides):
    params = dict(num_clients=120, num_zones=8, num_servers=6, correlation=0.0)
    params.update(overrides)
    config = make_small_config(delay_backend=delay_backend, **params)
    return build_scenario(config, seed=1)


def _simulate(
    scenario,
    timeline,
    num_epochs,
    backend="delta",
    measurement_backend="full",
    patience=6,
    seed=7,
    algorithms=("grez-grec",),
):
    simulator = ChurnSimulator(
        scenario=scenario,
        algorithms=list(algorithms),
        churn_spec=CHURN,
        seed=seed,
        backend=backend,
        measurement_backend=measurement_backend,
        scenario_timeline=timeline,
        admission_policy=AdmissionPolicy(patience_epochs=patience),
    )
    return simulator.run(num_epochs)


# ---------------------------------------------------------------------- #
# DSL parsing and timeline composition.
# ---------------------------------------------------------------------- #
class TestParseScenario:
    def test_round_trips_every_kind(self):
        event = parse_scenario("outage:zone=3,radius=2,start=1,duration=4")
        assert event == OutageEvent(zone=3, radius=2, start=1, duration=4)
        event = parse_scenario("flashcrowd:zone=2,clients=50,tau=1.5,start=2")
        assert event == FlashCrowdEvent(zone=2, clients=50, tau=1.5, start=2)
        event = parse_scenario("diurnal:amplitude=0.4,period=6")
        assert event == DiurnalEvent(amplitude=0.4, period=6)
        event = parse_scenario("maintenance:period=4,window=2,frac=0.5,factor=0.1")
        assert event == MaintenanceEvent(period=4, window=2, fraction=0.5, factor=0.1)
        event = parse_scenario("linkdegrade:zone=1,radius=5,factor=2.5")
        assert event == LinkDegradationEvent(zone=1, radius=5, factor=2.5)

    def test_kind_alone_uses_defaults(self):
        assert parse_scenario("diurnal") == DiurnalEvent()

    def test_aliases(self):
        event = parse_scenario("maintenance:fraction=0.5,group_start=2")
        assert event == parse_scenario("maintenance:frac=0.5,group=2")

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError, match="unknown scenario kind"):
            parse_scenario("earthquake:zone=0")

    def test_unknown_parameter_raises(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            parse_scenario("outage:zone=0,blast=3")

    def test_malformed_parameter_raises(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_scenario("outage:zone")

    def test_event_validation(self):
        with pytest.raises(ValueError):
            parse_scenario("outage:radius=0")
        with pytest.raises(ValueError):
            parse_scenario("outage:duration=0")
        with pytest.raises(ValueError):
            parse_scenario("flashcrowd:tau=0")
        with pytest.raises(ValueError):
            parse_scenario("maintenance:frac=1.5")
        with pytest.raises(ValueError):
            parse_scenario("linkdegrade:factor=0")


class TestTimeline:
    def test_composition_is_order_deterministic(self):
        a = build_timeline(["diurnal", "regional-outage"])
        b = build_timeline(["regional-outage", "diurnal"])
        assert a == b
        assert a.events == b.events

    def test_direct_construction_sorts_too(self):
        outage = OutageEvent(zone=0, radius=2, start=3)
        wave = DiurnalEvent()
        assert ScenarioTimeline((outage, wave)) == ScenarioTimeline((wave, outage))

    def test_library_names_expand(self):
        timeline = build_timeline("outage-flash-crowd")
        assert len(timeline) == 2
        kinds = {event.kind for event in timeline}
        assert kinds == {"outage", "flashcrowd"}

    def test_single_spec_string(self):
        timeline = build_timeline("outage:zone=0,radius=2")
        assert len(timeline) == 1 and not timeline.is_empty

    def test_non_event_raises(self):
        with pytest.raises(TypeError):
            ScenarioTimeline((42,))

    def test_every_library_entry_parses(self):
        for name in SCENARIO_LIBRARY:
            timeline = build_timeline(name)
            assert not timeline.is_empty


# ---------------------------------------------------------------------- #
# Runtime plans: gating, decay, modulation.
# ---------------------------------------------------------------------- #
class TestScenarioRuntime:
    @pytest.fixture(scope="class")
    def world(self):
        return _scenario()

    def test_outage_gates_and_restores_bit_exactly(self, world):
        timeline = build_timeline("outage:zone=0,radius=3,start=2,duration=2")
        runtime = ScenarioRuntime(timeline, world, num_epochs=6, seed=0)
        original = np.array(world.servers.capacities, dtype=np.float64)

        plan0 = runtime.plan_epoch(0, CHURN)
        assert plan0.server_churn is None  # nothing active yet

        plan2 = runtime.plan_epoch(2, CHURN)
        assert plan2.server_churn is not None
        gated = plan2.server_churn.servers.capacities
        assert (gated == MIN_GATED_CAPACITY_BPS).sum() == 3
        assert (gated > MIN_GATED_CAPACITY_BPS).any()  # at least one survivor

        # Second gated epoch: capacities unchanged -> no delta emitted.
        assert runtime.plan_epoch(3, CHURN).server_churn is None

        # Restoration is bit-exact.
        plan4 = runtime.plan_epoch(4, CHURN)
        assert plan4.server_churn is not None
        np.testing.assert_array_equal(plan4.server_churn.servers.capacities, original)
        assert runtime.plan_epoch(5, CHURN).server_churn is None

    def test_outage_keeps_one_server_even_at_full_radius(self, world):
        timeline = build_timeline(f"outage:zone=0,radius={world.num_servers + 5},start=0")
        runtime = ScenarioRuntime(timeline, world, num_epochs=2, seed=0)
        plan = runtime.plan_epoch(0, CHURN)
        gated = plan.server_churn.servers.capacities
        assert (gated > MIN_GATED_CAPACITY_BPS).sum() >= 1

    def test_flash_crowd_decays_exponentially(self, world):
        timeline = build_timeline("flashcrowd:zone=2,clients=40,tau=2,start=1,duration=4")
        runtime = ScenarioRuntime(timeline, world, num_epochs=6, seed=3)
        sizes = [runtime.plan_epoch(e, CHURN).extra_join_nodes.size for e in range(6)]
        expected = [0, 40] + [round(40 * np.exp(-t / 2)) for t in (1, 2, 3)] + [0]
        assert sizes == expected
        plan = runtime.plan_epoch(1, CHURN)
        assert (plan.extra_join_zones == 2).all()

    def test_diurnal_modulates_churn_spec(self, world):
        timeline = build_timeline("diurnal:amplitude=1.0,period=4,start=0")
        runtime = ScenarioRuntime(timeline, world, num_epochs=4, seed=0)
        crest = runtime.plan_epoch(1, CHURN).churn_spec  # sin(pi/2) = 1 -> x2 joins
        trough = runtime.plan_epoch(3, CHURN).churn_spec  # sin(3pi/2) = -1 -> 0 joins
        assert crest.num_joins == 2 * CHURN.num_joins
        assert crest.num_leaves == 0
        assert trough.num_joins == 0
        assert trough.num_leaves == 2 * CHURN.num_leaves

    def test_link_degradation_sets_node_factors(self, world):
        timeline = build_timeline("linkdegrade:zone=1,radius=10,factor=3,start=0,duration=1")
        runtime = ScenarioRuntime(timeline, world, num_epochs=2, seed=0)
        factors = runtime.plan_epoch(0, CHURN).node_delay_factors
        assert factors is not None
        assert (factors == 3.0).sum() == 10
        assert runtime.plan_epoch(1, CHURN).node_delay_factors is None

    def test_zone_out_of_range_raises(self, world):
        timeline = build_timeline(f"outage:zone={world.num_zones}")
        with pytest.raises(ValueError, match="zone"):
            ScenarioRuntime(timeline, world, num_epochs=2, seed=0)

    def test_plans_are_deterministic_for_a_seed(self, world):
        timeline = build_timeline("outage-flash-crowd")
        a = ScenarioRuntime(timeline, world, num_epochs=5, seed=11)
        b = ScenarioRuntime(timeline, world, num_epochs=5, seed=11)
        for epoch in range(5):
            pa, pb = a.plan_epoch(epoch, CHURN), b.plan_epoch(epoch, CHURN)
            np.testing.assert_array_equal(pa.extra_join_nodes, pb.extra_join_nodes)
            assert pa.churn_spec == pb.churn_spec


# ---------------------------------------------------------------------- #
# Backend bit-identity and composition determinism through the engine.
# ---------------------------------------------------------------------- #
class TestScenarioBackendIdentity:
    EPOCHS = 6

    @pytest.mark.parametrize("name", sorted(SCENARIO_LIBRARY))
    def test_delta_rebuild_x_full_incremental_bit_identical(self, name):
        world = _scenario()
        runs = {
            (backend, measurement): _simulate(
                world, name, self.EPOCHS, backend=backend, measurement_backend=measurement
            )
            for backend in ("delta", "rebuild")
            for measurement in ("full", "incremental")
        }
        reference = runs[("delta", "full")]
        assert any(r.clients_degraded > 0 for r in reference) or all(
            r.capacity_deficit == 0.0 for r in reference
        )
        for key, records in runs.items():
            assert len(records) == len(reference), key
            for a, b in zip(reference, records):
                assert records_equal(a, b, fields=EpochRecord.SCENARIO_FIELDS), (key, a.epoch)

    @pytest.mark.parametrize("delay_backend", ["coords", "sparse"])
    def test_compact_backends_run_and_stay_identical(self, delay_backend):
        world = _scenario(delay_backend=delay_backend, num_clients=100)
        delta = _simulate(world, "outage-flash-crowd", 5, backend="delta")
        rebuild = _simulate(world, "outage-flash-crowd", 5, backend="rebuild")
        for a, b in zip(delta, rebuild):
            assert records_equal(a, b, fields=EpochRecord.SCENARIO_FIELDS)

    def test_composition_order_is_immaterial_end_to_end(self):
        world = _scenario()
        forward = build_timeline(["diurnal:amplitude=0.6,period=4", "regional-outage"])
        backward = build_timeline(["regional-outage", "diurnal:amplitude=0.6,period=4"])
        records_f = _simulate(world, forward, 5)
        records_b = _simulate(world, backward, 5)
        for a, b in zip(records_f, records_b):
            assert records_equal(a, b, fields=EpochRecord.SCENARIO_FIELDS)


# ---------------------------------------------------------------------- #
# Graceful degradation end to end.
# ---------------------------------------------------------------------- #
class TestGracefulDegradation:
    def test_infeasible_world_never_raises_and_pool_drains(self):
        world = _scenario()
        records = _simulate(world, "outage-flash-crowd", 18)
        degraded = [r.clients_degraded for r in records]
        assert max(degraded) > 0  # the incident actually bit
        assert degraded[-1] == 0  # ... and the pool drained
        assert all(r.capacity_deficit >= 0.0 for r in records)
        report = recovery_report(records, algorithm="grez-grec")
        assert report.first_impact is not None
        assert report.degraded_client_epochs == sum(degraded)

    def test_outage_recovers_after_restoration(self):
        world = _scenario(total_capacity_mbps=40.0)
        records = _simulate(world, "regional-outage", 14)
        degraded = [r.clients_degraded for r in records]
        assert max(degraded) > 0
        assert degraded[-1] == 0
        report = recovery_report(records, algorithm="grez-grec")
        assert report.recovered
        assert report.time_to_recover > 0
        assert report.dip_depth > 0.0

    def test_classic_run_reports_zero_degradation(self):
        world = _scenario()
        simulator = ChurnSimulator(
            scenario=world, algorithms=["grez-grec"], churn_spec=CHURN, seed=7
        )
        records = simulator.run(3)
        assert all(r.clients_degraded == 0 and r.capacity_deficit == 0.0 for r in records)
        # Wide tolerance: ordinary churn jitter is not an incident.
        report = recovery_report(records, algorithm="grez-grec", tolerance=0.1)
        assert report.time_to_recover == 0 and report.recovered
        assert report.degraded_client_epochs == 0

    def test_scenario_rejects_explicit_server_churn(self):
        world = _scenario()
        with pytest.raises(ValueError, match="server"):
            ChurnSimulator(
                scenario=world,
                algorithms=["grez-grec"],
                churn_spec=CHURN,
                seed=7,
                server_churn_spec=ServerChurnSpec(num_joins=1, num_leaves=1),
                scenario_timeline="regional-outage",
            )

    def test_controller_runs_scenarios_without_raising(self):
        world = _scenario(total_capacity_mbps=40.0)
        controller = RebalanceController(
            scenario=world,
            algorithm="grez-grec",
            churn_spec=CHURN,
            policy=RebalancePolicy(),
            seed=7,
            scenario_timeline="regional-outage",
            admission_policy=AdmissionPolicy(patience_epochs=4),
        )
        trace = controller.run(10)
        assert len(trace.records) == 10
        degraded = [r.clients_degraded for r in trace.records]
        assert max(degraded) > 0
        assert degraded[-1] == 0

    def test_federation_aggregates_degradation(self):
        config = make_small_config(
            num_clients=120,
            num_zones=8,
            num_servers=6,
            correlation=0.0,
            total_capacity_mbps=40.0,
        )
        world = build_federation(config, num_shards=2, seed=5)
        simulator = FederatedSimulator(
            world=world,
            algorithms=["grez-grec"],
            churn_spec=CHURN,
            seed=7,
            scenario_timeline="regional-outage",
            admission_policy=AdmissionPolicy(patience_epochs=4),
        )
        records = simulator.run(10)
        shard_deg = {}
        for record in records:
            shard_deg.setdefault(record.epoch, {})[record.shard_id] = record.clients_degraded
        for epoch, by_shard in shard_deg.items():
            expected = sum(v for k, v in by_shard.items() if k != AGGREGATE_SHARD_ID)
            assert by_shard[AGGREGATE_SHARD_ID] == expected
        final = shard_deg[max(shard_deg)][AGGREGATE_SHARD_ID]
        assert final == 0


# ---------------------------------------------------------------------- #
# Recovery metrics.
# ---------------------------------------------------------------------- #
class TestRecoveryReport:
    def _record(self, epoch, pqos, degraded=0, deficit=0.0):
        return EpochRecord(
            epoch=epoch,
            algorithm="grez-grec",
            pqos_before=pqos,
            pqos_after=pqos,
            pqos_reexecuted=pqos,
            pqos_incremental=pqos,
            pqos_adopted=pqos,
            utilization_before=0.5,
            utilization_reexecuted=0.5,
            utilization_adopted=0.5,
            num_clients_before=100,
            num_clients_after=100,
            num_servers_after=5,
            policy="reexecute",
            zones_migrated=0,
            clients_migrated=0,
            migration_cost=0.0,
            clients_degraded=degraded,
            capacity_deficit=deficit,
        )

    def test_dip_and_recovery(self):
        records = [
            self._record(0, 0.95),
            self._record(1, 0.60, degraded=30, deficit=1e6),
            self._record(2, 0.70, degraded=10),
            self._record(3, 0.95, degraded=0),
        ]
        report = recovery_report(records)
        assert report.first_impact == 1
        assert report.time_to_recover == 2  # impacted at 1, healthy at 3
        assert report.recovered
        assert report.dip_depth == pytest.approx(0.35)
        assert report.dip_area == pytest.approx(0.35 + 0.25)
        assert report.degraded_client_epochs == 40
        assert report.max_clients_degraded == 30
        assert report.max_capacity_deficit == 1e6

    def test_unrecovered_run(self):
        records = [self._record(0, 0.95), self._record(1, 0.5, degraded=20)]
        report = recovery_report(records)
        assert not report.recovered
        assert report.time_to_recover == 1  # degraded from epoch 1 to the end

    def test_no_impact(self):
        records = [self._record(e, 0.95) for e in range(4)]
        report = recovery_report(records)
        assert report.first_impact is None
        assert report.time_to_recover == 0 and report.recovered

    def test_validation(self):
        with pytest.raises(ValueError):
            recovery_report([], baseline_epochs=1)
        with pytest.raises(ValueError):
            recovery_report([self._record(0, 0.9)], baseline_epochs=0)
        with pytest.raises(ValueError):
            recovery_report([self._record(0, 0.9)], tolerance=-0.1)
