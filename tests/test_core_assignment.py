"""Tests for repro.core.assignment — ZoneAssignment / Assignment result objects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import Assignment, ZoneAssignment, server_loads, zone_server_loads


@pytest.fixture()
def zone_map():
    return np.array([0, 1, 2, 0])


@pytest.fixture()
def direct_assignment(tiny_instance, zone_map):
    """Contact = target for every client (a VirC-style solution)."""
    contacts = zone_map[tiny_instance.client_zones]
    return Assignment(zone_to_server=zone_map, contact_of_client=contacts, algorithm="test")


@pytest.fixture()
def forwarded_assignment(tiny_instance, zone_map):
    """Clients 6 and 7 (zone 3, hosted on server 0) forward through server 1."""
    contacts = zone_map[tiny_instance.client_zones].copy()
    contacts[6] = 1
    contacts[7] = 1
    return Assignment(zone_to_server=zone_map, contact_of_client=contacts, algorithm="fwd")


class TestZoneAssignment:
    def test_targets_of_clients(self, tiny_instance, zone_map):
        za = ZoneAssignment(zone_to_server=zone_map, algorithm="x")
        np.testing.assert_array_equal(
            za.targets_of_clients(tiny_instance), [0, 0, 1, 1, 2, 2, 0, 0]
        )

    def test_server_zone_loads(self, tiny_instance, zone_map):
        za = ZoneAssignment(zone_to_server=zone_map)
        np.testing.assert_allclose(za.server_zone_loads(tiny_instance), [40.0, 20.0, 20.0])

    def test_unassigned_zone_rejected(self):
        with pytest.raises(ValueError):
            ZoneAssignment(zone_to_server=np.array([0, -1]))

    def test_num_zones(self, zone_map):
        assert ZoneAssignment(zone_to_server=zone_map).num_zones == 4


class TestAssignmentMetrics:
    def test_client_delays_direct(self, tiny_instance, direct_assignment):
        np.testing.assert_allclose(
            direct_assignment.client_delays(tiny_instance),
            [50, 50, 50, 50, 50, 50, 120, 120],
        )

    def test_client_delays_forwarded(self, tiny_instance, forwarded_assignment):
        delays = forwarded_assignment.client_delays(tiny_instance)
        assert delays[6] == pytest.approx(90.0)
        assert delays[7] == pytest.approx(90.0)

    def test_pqos(self, tiny_instance, direct_assignment, forwarded_assignment):
        assert direct_assignment.pqos(tiny_instance) == pytest.approx(6 / 8)
        assert forwarded_assignment.pqos(tiny_instance) == pytest.approx(1.0)

    def test_qos_mask(self, tiny_instance, direct_assignment):
        mask = direct_assignment.qos_mask(tiny_instance)
        assert mask.sum() == 6
        assert not mask[6] and not mask[7]

    def test_forwarded_mask(self, tiny_instance, direct_assignment, forwarded_assignment):
        assert not direct_assignment.forwarded_mask(tiny_instance).any()
        np.testing.assert_array_equal(
            np.flatnonzero(forwarded_assignment.forwarded_mask(tiny_instance)), [6, 7]
        )

    def test_server_loads_direct(self, tiny_instance, direct_assignment):
        np.testing.assert_allclose(
            direct_assignment.server_loads(tiny_instance), [40.0, 20.0, 20.0]
        )

    def test_server_loads_with_forwarding(self, tiny_instance, forwarded_assignment):
        # Server 1 also carries 2 × RT for each of the two forwarded clients.
        np.testing.assert_allclose(
            forwarded_assignment.server_loads(tiny_instance), [40.0, 60.0, 20.0]
        )

    def test_resource_utilization(self, tiny_instance, direct_assignment, forwarded_assignment):
        assert direct_assignment.resource_utilization(tiny_instance) == pytest.approx(80 / 3000)
        assert forwarded_assignment.resource_utilization(tiny_instance) == pytest.approx(
            120 / 3000
        )

    def test_capacity_feasibility(self, tiny_instance, forwarded_assignment):
        assert forwarded_assignment.is_capacity_feasible(tiny_instance)
        tight = tiny_instance.with_delay_bound(100.0)
        # Shrink capacities below the loads to make it infeasible.
        from tests.conftest import make_tiny_instance

        tiny_overloaded = make_tiny_instance(capacities=(30.0, 30.0, 30.0))
        assert not forwarded_assignment.is_capacity_feasible(tiny_overloaded)
        del tight

    def test_empty_instance_pqos_is_one(self):
        from tests.conftest import make_tiny_instance  # noqa: F401 (documentation import)

        import numpy as np
        from repro.core.problem import CAPInstance

        empty = CAPInstance(
            client_server_delays=np.zeros((0, 2)),
            server_server_delays=np.zeros((2, 2)),
            client_zones=np.zeros(0, dtype=int),
            client_demands=np.zeros(0),
            server_capacities=np.ones(2),
            delay_bound=100.0,
            num_zones=1,
        )
        assignment = Assignment(
            zone_to_server=np.array([0]), contact_of_client=np.zeros(0, dtype=int)
        )
        assert assignment.pqos(empty) == 1.0


class TestAssignmentBookkeeping:
    def test_with_algorithm_renames_only(self, direct_assignment):
        renamed = direct_assignment.with_algorithm("grez-grec")
        assert renamed.algorithm == "grez-grec"
        np.testing.assert_array_equal(renamed.zone_to_server, direct_assignment.zone_to_server)
        assert direct_assignment.algorithm == "test"

    def test_negative_contact_rejected(self, zone_map):
        with pytest.raises(ValueError):
            Assignment(zone_to_server=zone_map, contact_of_client=np.array([-1, 0]))

    def test_dimension_properties(self, direct_assignment):
        assert direct_assignment.num_zones == 4
        assert direct_assignment.num_clients == 8


class TestLoadHelpers:
    def test_zone_server_loads_matches_manual(self, tiny_instance, zone_map):
        loads = zone_server_loads(tiny_instance, zone_map)
        expected = np.zeros(3)
        for zone, server in enumerate(zone_map):
            expected[server] += tiny_instance.zone_demands()[zone]
        np.testing.assert_allclose(loads, expected)

    def test_server_loads_counts_forwarding_once(self, tiny_instance, zone_map):
        contacts = zone_map[tiny_instance.client_zones].copy()
        contacts[0] = 1  # client 0 (zone 0 → server 0) forwards via server 1
        loads = server_loads(tiny_instance, zone_map, contacts)
        np.testing.assert_allclose(loads, [40.0, 40.0, 20.0])

    def test_forwarding_to_own_target_costs_nothing(self, tiny_instance, zone_map):
        contacts = zone_map[tiny_instance.client_zones]
        loads = server_loads(tiny_instance, zone_map, contacts)
        np.testing.assert_allclose(loads, zone_server_loads(tiny_instance, zone_map))
