"""Tests for repro.utils.rng — deterministic RNG plumbing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import (
    as_generator,
    derive_seed,
    hash_label,
    random_subset,
    spawn_generators,
)


class TestAsGenerator:
    def test_none_returns_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = as_generator(123).integers(0, 1_000_000, size=10)
        b = as_generator(123).integers(0, 1_000_000, size=10)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = as_generator(1).integers(0, 1_000_000, size=20)
        b = as_generator(2).integers(0, 1_000_000, size=20)
        assert not np.array_equal(a, b)

    def test_generator_passthrough(self):
        rng = np.random.default_rng(0)
        assert as_generator(rng) is rng

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(42)
        gen = as_generator(ss)
        assert isinstance(gen, np.random.Generator)

    def test_numpy_integer_seed_accepted(self):
        gen = as_generator(np.int64(5))
        assert isinstance(gen, np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            as_generator(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_generator("not-a-seed")  # type: ignore[arg-type]


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(0, 4)
        assert len(gens) == 4
        assert all(isinstance(g, np.random.Generator) for g in gens)

    def test_deterministic_from_int_seed(self):
        a = [g.integers(0, 10**9) for g in spawn_generators(99, 3)]
        b = [g.integers(0, 10**9) for g in spawn_generators(99, 3)]
        assert a == b

    def test_streams_are_independent(self):
        g1, g2 = spawn_generators(7, 2)
        x = g1.integers(0, 10**9, size=50)
        y = g2.integers(0, 10**9, size=50)
        assert not np.array_equal(x, y)

    def test_zero_generators(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_spawn_from_generator(self):
        rng = np.random.default_rng(11)
        gens = spawn_generators(rng, 2)
        assert len(gens) == 2

    def test_spawn_from_seed_sequence(self):
        gens = spawn_generators(np.random.SeedSequence(3), 2)
        assert len(gens) == 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, "topology") == derive_seed(5, "topology")

    def test_labels_distinguish(self):
        assert derive_seed(5, "topology") != derive_seed(5, "placement")

    def test_base_seed_distinguishes(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_int_labels_accepted(self):
        assert isinstance(derive_seed(0, 3, 4), int)

    def test_none_seed_accepted(self):
        assert isinstance(derive_seed(None, "a"), int)


class TestHashLabel:
    def test_stable_known_value(self):
        # FNV-1a is process independent; the same string always hashes equal.
        assert hash_label("topology") == hash_label("topology")

    def test_distinct_labels(self):
        assert hash_label("a") != hash_label("b")

    def test_32_bit_range(self):
        assert 0 <= hash_label("anything at all") < 2**32


class TestRandomSubset:
    def test_without_replacement_unique(self):
        rng = np.random.default_rng(0)
        picked = random_subset(rng, list(range(20)), 10)
        assert len(picked) == 10
        assert len(set(picked.tolist())) == 10

    def test_too_large_without_replacement(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_subset(rng, [1, 2, 3], 5)

    def test_with_replacement_allows_oversampling(self):
        rng = np.random.default_rng(0)
        picked = random_subset(rng, [1, 2, 3], 10, replace=True)
        assert len(picked) == 10

    def test_negative_size_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_subset(rng, [1, 2, 3], -1)
