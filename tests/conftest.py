"""Shared fixtures for the test suite.

The expensive objects (topologies, scenarios) are session-scoped so the whole
suite builds them once; individual tests must never mutate them (all library
objects are immutable dataclasses, so accidental mutation raises).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.baselines  # noqa: F401  (registers baseline solvers for registry tests)
from repro.core.problem import CAPInstance
from repro.topology.brite import BriteConfig
from repro.topology.waxman import waxman_topology
from repro.world.scenario import DVEConfig, DVEScenario, build_scenario

#: A small hierarchical topology configuration used throughout the tests —
#: same generative structure as the paper's 500-node substrate, scaled down
#: so the suite stays fast.
SMALL_BRITE = BriteConfig(model="hierarchical", num_nodes=60, num_as=6, routers_per_as=10)


def make_small_config(**overrides) -> DVEConfig:
    """A small-but-realistic DVE configuration for tests."""
    params = dict(
        num_servers=5,
        num_zones=12,
        num_clients=150,
        total_capacity_mbps=100.0,
        min_server_capacity_mbps=5.0,
        topology=SMALL_BRITE,
    )
    params.update(overrides)
    return DVEConfig(**params)


@pytest.fixture(scope="session")
def small_config() -> DVEConfig:
    """Session-wide small configuration (5 servers, 12 zones, 150 clients)."""
    return make_small_config()


@pytest.fixture(scope="session")
def small_scenario(small_config: DVEConfig) -> DVEScenario:
    """Session-wide materialised small scenario."""
    return build_scenario(small_config, seed=7)


@pytest.fixture(scope="session")
def small_instance(small_scenario: DVEScenario) -> CAPInstance:
    """CAP instance of the small scenario."""
    return CAPInstance.from_scenario(small_scenario)


@pytest.fixture(scope="session")
def small_topology():
    """A small flat Waxman topology (40 nodes) for topology-level tests."""
    return waxman_topology(40, seed=3, name="test-waxman-40")


def make_tiny_instance(
    delay_bound: float = 100.0,
    capacities=(1000.0, 1000.0, 1000.0),
) -> CAPInstance:
    """A hand-crafted 3-server / 4-zone / 8-client instance with known structure.

    * Zone 0's clients (0, 1) are close only to server 0.
    * Zone 1's clients (2, 3) are close only to server 1.
    * Zone 2's clients (4, 5) are close only to server 2.
    * Zone 3's clients (6, 7) are 120 ms from server 0, 60 ms from server 1 and
      far from server 2 — so if zone 3 is hosted by server 0 they miss the
      100 ms bound directly but can reach it by forwarding through server 1
      (60 + 30 = 90 ms).
    """
    client_server_delays = np.array(
        [
            [50.0, 300.0, 300.0],
            [50.0, 300.0, 300.0],
            [300.0, 50.0, 300.0],
            [300.0, 50.0, 300.0],
            [300.0, 300.0, 50.0],
            [300.0, 300.0, 50.0],
            [120.0, 60.0, 300.0],
            [120.0, 60.0, 300.0],
        ]
    )
    server_server_delays = np.array(
        [
            [0.0, 30.0, 40.0],
            [30.0, 0.0, 50.0],
            [40.0, 50.0, 0.0],
        ]
    )
    client_zones = np.array([0, 0, 1, 1, 2, 2, 3, 3])
    client_demands = np.full(8, 10.0)
    return CAPInstance(
        client_server_delays=client_server_delays,
        server_server_delays=server_server_delays,
        client_zones=client_zones,
        client_demands=client_demands,
        server_capacities=np.asarray(capacities, dtype=float),
        delay_bound=delay_bound,
        num_zones=4,
    )


@pytest.fixture()
def tiny_instance() -> CAPInstance:
    """Fresh hand-crafted tiny instance (cheap to build, so function-scoped)."""
    return make_tiny_instance()


@pytest.fixture()
def tight_instance() -> CAPInstance:
    """Tiny instance whose capacities only just fit the zone demands.

    Each zone demands 20 (two clients × 10) and each server can hold at most
    two zones (45 < 3 × 20), so capacity-aware placement becomes observable
    while the instance stays feasible overall (135 > 80).
    """
    return make_tiny_instance(capacities=(45.0, 45.0, 45.0))


@pytest.fixture()
def overloaded_instance() -> CAPInstance:
    """Tiny instance whose total demand (80) exceeds the total capacity (75).

    Used to exercise the best-effort fallbacks and the ``capacity_exceeded``
    flags of the heuristics.
    """
    return make_tiny_instance(capacities=(25.0, 25.0, 25.0))
