"""Tests for repro.utils.timing."""

from __future__ import annotations

import time

import pytest

from repro.utils.timing import Timer, time_call


class TestTimer:
    def test_context_manager_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_start_stop(self):
        t = Timer().start()
        time.sleep(0.005)
        elapsed = t.stop()
        assert elapsed == t.elapsed
        assert elapsed > 0.0

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.002)
        assert t.elapsed >= 0.0
        assert t.elapsed != first or t.elapsed >= 0.0


class TestTimeCall:
    def test_returns_elapsed_and_result(self):
        elapsed, result = time_call(lambda x: x * 2, 21)
        assert result == 42
        assert elapsed >= 0.0

    def test_repeats_keeps_best(self):
        calls = []

        def fn():
            calls.append(1)
            return len(calls)

        elapsed, result = time_call(fn, repeats=3)
        assert len(calls) == 3
        assert result == 3
        assert elapsed >= 0.0

    def test_invalid_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)

    def test_kwargs_forwarded(self):
        _, result = time_call(lambda a, b=1: a + b, 2, b=3)
        assert result == 5
