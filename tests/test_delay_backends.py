"""Tests for repro.topology.delay_backends and the compact-instance plumbing.

Covers the three contracts of the pluggable delay backends:

* ``dense`` through the new abstraction is bit-identical to the historical
  construction (including the zero mesh diagonal and the delta fast paths);
* :class:`CompactDelayMatrix` gathers and zone fast paths agree with the
  densified matrix they virtualise; and
* ``coords`` / ``sparse`` scenarios flow through the solvers, the churn
  engine and the CLI, producing capacity-feasible assignments whose pQoS is
  within a stated tolerance of dense on small worlds.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.baselines  # noqa: F401  (registers the baseline solvers)
from repro.cli import build_parser
from repro.core.problem import CAPInstance
from repro.core.registry import solve as registry_solve
from repro.dynamics.churn import ChurnSpec
from repro.dynamics.engine import ChurnSimulator
from repro.dynamics.infrastructure import ServerChurnSpec
from repro.experiments.config import ExperimentConfig, apply_delay_backend
from repro.topology.delay_backends import (
    DEFAULT_SPARSE_TOP_K,
    SPARSE_FILL_DELAY_MS,
    CompactDelayMatrix,
    make_delay_backend,
)
from repro.world.scenario import build_scenario

from tests.conftest import make_small_config

#: pQoS tolerance of the approximate backends vs dense on the small world.
PQOS_TOLERANCE = 0.15


def _scenario(backend: str, **overrides):
    config = make_small_config(delay_backend=backend, **overrides)
    return build_scenario(config, seed=7)


@pytest.fixture(scope="module")
def dense_scenario():
    return _scenario("dense")


@pytest.fixture(scope="module")
def coords_scenario():
    return _scenario("coords")


@pytest.fixture(scope="module")
def sparse_scenario():
    return _scenario("sparse")


# ---------------------------------------------------------------------- #
# Dense through the abstraction: the executable spec stays bit-identical.
# ---------------------------------------------------------------------- #
class TestDenseBitIdentity:
    def test_matches_direct_construction(self, dense_scenario, small_scenario):
        # small_scenario is built with the default config (no backend field
        # set) and the same seed: every array must be bit-identical.
        np.testing.assert_array_equal(
            dense_scenario.client_server_delays, small_scenario.client_server_delays
        )
        np.testing.assert_array_equal(
            dense_scenario.server_server_delays, small_scenario.server_server_delays
        )
        np.testing.assert_array_equal(
            dense_scenario.population.nodes, small_scenario.population.nodes
        )
        np.testing.assert_array_equal(
            dense_scenario.servers.capacities, small_scenario.servers.capacities
        )

    def test_zero_mesh_diagonal(self, dense_scenario):
        np.testing.assert_array_equal(np.diag(dense_scenario.server_server_delays), 0.0)

    def test_matches_delay_model_gather(self, dense_scenario):
        expected = dense_scenario.delay_model.client_server_delays(
            dense_scenario.population.nodes, dense_scenario.servers.nodes
        )
        np.testing.assert_array_equal(dense_scenario.client_server_delays, expected)

    def test_has_dense_delays(self, dense_scenario):
        assert dense_scenario.has_dense_delays
        assert CAPInstance.from_scenario(dense_scenario).has_dense_delays

    def test_delta_fast_path_identity(self, dense_scenario):
        from repro.dynamics.churn import generate_churn
        from repro.dynamics.events import apply_churn

        batch = generate_churn(
            dense_scenario, ChurnSpec(num_joins=10, num_leaves=10, num_moves=10), seed=5
        )
        churn = apply_churn(dense_scenario.population, batch)
        delta = dense_scenario.apply_churn_delta(churn)
        rebuilt = dense_scenario.with_population(churn.population)
        np.testing.assert_array_equal(
            delta.client_server_delays, rebuilt.client_server_delays
        )

    def test_dense_accessors_mirror_fancy_indexing(self, small_instance):
        delays = small_instance.client_server_delays
        clients = np.array([0, 3, 5])
        servers = np.array([1, 0, 2])
        np.testing.assert_array_equal(small_instance.delay_rows(clients), delays[clients])
        np.testing.assert_array_equal(
            small_instance.delay_pairs(clients, servers), delays[clients, servers]
        )
        np.testing.assert_array_equal(
            small_instance.dense_client_server_delays(), delays
        )


# ---------------------------------------------------------------------- #
# CompactDelayMatrix semantics vs its densified self.
# ---------------------------------------------------------------------- #
@pytest.fixture(scope="module", params=["coords", "sparse"])
def compact_scenario(request, coords_scenario, sparse_scenario):
    return coords_scenario if request.param == "coords" else sparse_scenario


class TestCompactDelayMatrix:
    def test_type_and_shape(self, compact_scenario):
        delays = compact_scenario.client_server_delays
        assert isinstance(delays, CompactDelayMatrix)
        assert delays.shape == (
            compact_scenario.num_clients,
            compact_scenario.num_servers,
        )
        assert not compact_scenario.has_dense_delays

    def test_rows_and_pairs_match_toarray(self, compact_scenario):
        delays = compact_scenario.client_server_delays
        dense = delays.toarray()
        clients = np.array([0, 2, 9, 2])
        servers = np.array([1, 0, 3, 3])
        np.testing.assert_array_equal(delays.rows(clients), dense[clients])
        np.testing.assert_array_equal(delays.rows(3), dense[3])
        np.testing.assert_array_equal(
            delays.pairs(clients, servers), dense[clients, servers]
        )
        np.testing.assert_array_equal(delays.pairs(5, 2), dense[5, 2])

    def test_rows_are_writable_copies(self, compact_scenario):
        delays = compact_scenario.client_server_delays
        row = delays.rows(0)
        row[0] = -1.0  # must not corrupt the shared node->server table
        assert delays.rows(0)[0] != -1.0

    def test_zone_over_bound_counts_match_scatter(self, compact_scenario):
        instance = CAPInstance.from_scenario(compact_scenario)
        delays = instance.client_server_delays
        dense = delays.toarray()
        expected = np.zeros((instance.num_zones, instance.num_servers))
        np.add.at(expected, instance.client_zones, (dense > instance.delay_bound))
        got = delays.zone_over_bound_counts(
            instance.delay_bound, instance.client_zones, instance.num_zones
        )
        np.testing.assert_array_equal(got, expected)

    def test_zone_direct_aggregates_match_scatter(self, compact_scenario):
        instance = CAPInstance.from_scenario(compact_scenario)
        delays = instance.client_server_delays
        dense = delays.toarray()
        self_delays = np.diag(instance.server_server_delays)
        direct = dense + self_delays[None, :]
        bound = instance.delay_bound
        within_expected = np.zeros((instance.num_zones, instance.num_servers))
        excess_expected = np.zeros_like(within_expected)
        np.add.at(within_expected, instance.client_zones, (direct <= bound).astype(float))
        np.add.at(excess_expected, instance.client_zones, np.maximum(direct - bound, 0.0))
        within, excess = delays.zone_direct_aggregates(
            bound, instance.client_zones, instance.num_zones, self_delays
        )
        np.testing.assert_array_equal(within, within_expected)
        np.testing.assert_allclose(excess, excess_expected, rtol=1e-9, atol=1e-6)

    def test_zone_delay_sums_match_scatter(self, compact_scenario):
        instance = CAPInstance.from_scenario(compact_scenario)
        delays = instance.client_server_delays
        dense = delays.toarray()
        expected = np.zeros((instance.num_zones, instance.num_servers))
        np.add.at(expected, instance.client_zones, dense)
        got = delays.zone_delay_sums(instance.client_zones, instance.num_zones)
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-6)

    def test_with_clients_shares_table(self, compact_scenario):
        delays = compact_scenario.client_server_delays
        perm = np.random.default_rng(2).permutation(delays.num_clients)
        zones = None
        if delays.zone_candidates is not None:
            zones = delays.client_zones[perm]
        moved = delays.with_clients(delays.client_nodes[perm], zones)
        assert moved.node_server is delays.node_server
        np.testing.assert_array_equal(moved.toarray(), delays.toarray()[perm])

    def test_nbytes_compact(self, compact_scenario):
        delays = compact_scenario.client_server_delays
        dense_bytes = delays.num_clients * delays.num_servers * 8
        assert delays.nbytes < dense_bytes + delays.node_server.nbytes


class TestSparseSemantics:
    def test_non_candidates_get_sentinel(self, sparse_scenario):
        delays = sparse_scenario.client_server_delays
        dense = delays.toarray()
        allowed = np.zeros((delays.num_zones, delays.num_servers), dtype=bool)
        for zone, candidates in enumerate(delays.zone_candidates):
            allowed[zone, candidates] = True
        client_allowed = allowed[delays.client_zones]
        assert (dense[~client_allowed] == SPARSE_FILL_DELAY_MS).all()
        exact = delays.node_server[delays.client_nodes]
        np.testing.assert_array_equal(dense[client_allowed], exact[client_allowed])

    def test_candidate_sets_cover_fleet(self, sparse_scenario):
        delays = sparse_scenario.client_server_delays
        top_k = delays.zone_candidates.shape[1]
        assert top_k == min(DEFAULT_SPARSE_TOP_K, delays.num_servers)
        # Each zone's candidates are distinct.
        for candidates in delays.zone_candidates:
            assert np.unique(candidates).size == candidates.size


# ---------------------------------------------------------------------- #
# Solver equivalence and approximation quality.
# ---------------------------------------------------------------------- #
class TestSolvers:
    def test_compact_solve_matches_densified(self, compact_scenario):
        instance = CAPInstance.from_scenario(compact_scenario)
        densified = instance.with_delays(
            client_server_delays=instance.client_server_delays.toarray()
        )
        compact = registry_solve(instance, "grez-grec", seed=3)
        dense = registry_solve(densified, "grez-grec", seed=3)
        np.testing.assert_array_equal(compact.zone_to_server, dense.zone_to_server)
        np.testing.assert_array_equal(compact.contact_of_client, dense.contact_of_client)

    @pytest.mark.parametrize("backend", ["coords", "sparse"])
    @pytest.mark.parametrize("algorithm", ["grez-grec", "grez-virc", "nearest-server"])
    def test_feasible_and_close_to_dense(
        self, backend, algorithm, dense_scenario, coords_scenario, sparse_scenario
    ):
        scenario = coords_scenario if backend == "coords" else sparse_scenario
        instance = CAPInstance.from_scenario(scenario)
        dense_instance = CAPInstance.from_scenario(dense_scenario)
        assignment = registry_solve(instance, algorithm, seed=3)
        baseline = registry_solve(dense_instance, algorithm, seed=3)
        if not baseline.capacity_exceeded:
            assert assignment.is_capacity_feasible(instance)
        # Evaluated on the true (dense) delays, the approximate backends must
        # stay within the stated tolerance of the dense solve.
        pqos_true = assignment.pqos(dense_instance)
        assert pqos_true >= baseline.pqos(dense_instance) - PQOS_TOLERANCE

    def test_warm_start_refine_runs_compact(self, compact_scenario):
        from repro.core.local_search import warm_start_refine

        instance = CAPInstance.from_scenario(compact_scenario)
        seeded = registry_solve(instance, "grez-grec", seed=3)
        result = warm_start_refine(instance, seeded)
        assert result.final_pqos >= result.initial_pqos - 1e-12
        assert result.assignment.pqos(instance) == pytest.approx(result.final_pqos)


# ---------------------------------------------------------------------- #
# Deltas, churn engine and server churn on compact scenarios.
# ---------------------------------------------------------------------- #
class TestCompactDeltas:
    def test_apply_delta_raises_on_compact(self, compact_scenario):
        instance = CAPInstance.from_scenario(compact_scenario)
        with pytest.raises(TypeError):
            instance.apply_delta(
                survivor_indices=np.arange(5),
                join_delays=np.zeros((0, instance.num_servers)),
                client_zones=instance.client_zones[:5],
                client_demands=instance.client_demands[:5],
            )

    def test_engine_delta_equals_rebuild(self, compact_scenario):
        records = {}
        for backend in ("delta", "rebuild"):
            simulator = ChurnSimulator(
                scenario=compact_scenario,
                algorithms=["grez-grec"],
                churn_spec=ChurnSpec(num_joins=8, num_leaves=8, num_moves=8),
                seed=5,
                backend=backend,
            )
            records[backend] = [record.row() for record in simulator.run(3)]
        assert records["delta"] == records["rebuild"]

    def test_engine_server_churn_stays_compact(self, compact_scenario):
        simulator = ChurnSimulator(
            scenario=compact_scenario,
            algorithms=["grez-grec"],
            churn_spec=ChurnSpec(num_joins=5, num_leaves=5, num_moves=5),
            server_churn_spec=ServerChurnSpec(num_joins=1, num_leaves=1),
            seed=5,
        )
        session = simulator.session(2)
        while not session.done:
            for record in session.run_epoch():
                assert np.isfinite(record.pqos_after)
        assert not session.state.scenario.has_dense_delays

    def test_with_servers_matches_fresh_build(self, compact_scenario):
        scenario = compact_scenario
        moved = scenario.with_servers(scenario.servers)
        old = scenario.client_server_delays
        new = moved.client_server_delays
        np.testing.assert_array_equal(new.toarray(), old.toarray())
        np.testing.assert_array_equal(
            moved.server_server_delays, scenario.server_server_delays
        )


# ---------------------------------------------------------------------- #
# DelayModel.copy semantics (the double-allocation fix).
# ---------------------------------------------------------------------- #
class TestDelayModelCopy:
    def test_default_is_read_only(self, small_scenario):
        model = small_scenario.delay_model
        delays = model.client_server_delays(np.array([0, 1]), np.array([2, 3]))
        assert not delays.flags.writeable
        with pytest.raises(ValueError):
            delays[0, 0] = 1.0

    def test_copy_opt_in_is_writable(self, small_scenario):
        model = small_scenario.delay_model
        nodes = np.array([0, 1])
        servers = np.array([2, 3])
        frozen = model.client_server_delays(nodes, servers)
        writable = model.client_server_delays(nodes, servers, copy=True)
        assert writable.flags.writeable
        np.testing.assert_array_equal(writable, frozen)
        writable[0, 0] = -5.0  # private copy: the model's view is untouched
        assert frozen[0, 0] != -5.0


# ---------------------------------------------------------------------- #
# Configuration plumbing: ExperimentConfig, apply_delay_backend, CLI.
# ---------------------------------------------------------------------- #
class TestConfigPlumbing:
    def test_experiment_config_validates(self):
        with pytest.raises(ValueError):
            ExperimentConfig(delay_backend="nope")

    def test_run_kwargs_include_backend_only_when_set(self):
        assert "delay_backend" not in ExperimentConfig().run_kwargs()
        assert ExperimentConfig(delay_backend="coords").run_kwargs()[
            "delay_backend"
        ] == "coords"

    def test_apply_delay_backend(self, small_config):
        assert apply_delay_backend(small_config, None) is small_config
        updated = apply_delay_backend(small_config, "sparse")
        assert updated.delay_backend == "sparse"
        assert small_config.delay_backend == "dense"

    def test_dve_config_validates_backend(self):
        with pytest.raises(ValueError):
            make_small_config(delay_backend="nope")
        with pytest.raises(ValueError):
            make_small_config(delay_backend="sparse", sparse_top_k=0)
        with pytest.raises(ValueError):
            make_small_config(delay_backend="coords", coords_dim=0)

    def test_make_delay_backend_rejects_unknown(self, small_scenario):
        with pytest.raises(ValueError):
            make_delay_backend("nope", small_scenario.delay_model)

    @pytest.mark.parametrize("command", ["solve", "simulate", "federate", "experiment"])
    def test_cli_flag_parses(self, command):
        parser = build_parser()
        tail = ["table1"] if command == "experiment" else []
        args = parser.parse_args([command, *tail, "--delay-backend", "coords"])
        assert args.delay_backend == "coords"
        defaults = parser.parse_args([command, *tail])
        assert defaults.delay_backend is None

    def test_cli_flag_rejects_unknown(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["solve", "--delay-backend", "nope"])
