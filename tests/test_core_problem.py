"""Tests for repro.core.problem — the CAPInstance problem container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.problem import CAPInstance
from tests.conftest import make_tiny_instance


class TestConstruction:
    def test_dimensions(self, tiny_instance):
        assert tiny_instance.num_clients == 8
        assert tiny_instance.num_servers == 3
        assert tiny_instance.num_zones == 4

    def test_arrays_cast_to_float_and_int(self, tiny_instance):
        assert tiny_instance.client_server_delays.dtype == np.float64
        assert tiny_instance.client_zones.dtype == np.int64

    def test_bad_delay_matrix_shape(self):
        with pytest.raises(ValueError):
            CAPInstance(
                client_server_delays=np.zeros(5),
                server_server_delays=np.zeros((2, 2)),
                client_zones=np.zeros(5, dtype=int),
                client_demands=np.ones(5),
                server_capacities=np.ones(2),
                delay_bound=100.0,
                num_zones=2,
            )

    def test_mismatched_server_mesh(self):
        with pytest.raises(ValueError):
            CAPInstance(
                client_server_delays=np.ones((4, 3)),
                server_server_delays=np.zeros((2, 2)),
                client_zones=np.zeros(4, dtype=int),
                client_demands=np.ones(4),
                server_capacities=np.ones(3),
                delay_bound=100.0,
                num_zones=1,
            )

    def test_zone_ids_out_of_range(self):
        with pytest.raises(ValueError):
            CAPInstance(
                client_server_delays=np.ones((2, 2)),
                server_server_delays=np.zeros((2, 2)),
                client_zones=np.array([0, 5]),
                client_demands=np.ones(2),
                server_capacities=np.ones(2),
                delay_bound=100.0,
                num_zones=2,
            )

    def test_negative_delays_rejected(self):
        with pytest.raises(ValueError):
            CAPInstance(
                client_server_delays=np.full((2, 2), -1.0),
                server_server_delays=np.zeros((2, 2)),
                client_zones=np.zeros(2, dtype=int),
                client_demands=np.ones(2),
                server_capacities=np.ones(2),
                delay_bound=100.0,
                num_zones=1,
            )

    def test_non_positive_demand_rejected(self):
        # The paper requires RT(c) > 0 for every client.
        with pytest.raises(ValueError):
            CAPInstance(
                client_server_delays=np.ones((2, 2)),
                server_server_delays=np.zeros((2, 2)),
                client_zones=np.zeros(2, dtype=int),
                client_demands=np.array([1.0, 0.0]),
                server_capacities=np.ones(2),
                delay_bound=100.0,
                num_zones=1,
            )

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ValueError):
            make_tiny_instance(capacities=(10.0, 0.0, 10.0))

    def test_invalid_delay_bound(self):
        with pytest.raises(ValueError):
            make_tiny_instance(delay_bound=0.0)


class TestDerivedQuantities:
    def test_zone_demands(self, tiny_instance):
        np.testing.assert_allclose(tiny_instance.zone_demands(), [20.0, 20.0, 20.0, 20.0])

    def test_zone_populations(self, tiny_instance):
        np.testing.assert_array_equal(tiny_instance.zone_populations(), [2, 2, 2, 2])

    def test_clients_of_zone(self, tiny_instance):
        np.testing.assert_array_equal(tiny_instance.clients_of_zone(3), [6, 7])
        with pytest.raises(ValueError):
            tiny_instance.clients_of_zone(9)

    def test_forwarding_demands_are_double(self, tiny_instance):
        np.testing.assert_allclose(
            tiny_instance.forwarding_demands(), 2.0 * tiny_instance.client_demands
        )

    def test_totals(self, tiny_instance):
        assert tiny_instance.total_demand() == pytest.approx(80.0)
        assert tiny_instance.total_capacity() == pytest.approx(3000.0)


class TestTransformations:
    def test_from_scenario(self, small_scenario):
        instance = CAPInstance.from_scenario(small_scenario)
        assert instance.num_clients == small_scenario.num_clients
        assert instance.num_servers == small_scenario.num_servers
        assert instance.delay_bound == small_scenario.delay_bound_ms
        np.testing.assert_allclose(
            instance.client_server_delays, small_scenario.client_server_delays
        )

    def test_from_scenario_delay_bound_override(self, small_scenario):
        instance = CAPInstance.from_scenario(small_scenario, delay_bound=123.0)
        assert instance.delay_bound == 123.0

    def test_with_delays_substitutes_only_given_matrices(self, tiny_instance):
        new_cs = tiny_instance.client_server_delays + 5.0
        swapped = tiny_instance.with_delays(client_server_delays=new_cs)
        np.testing.assert_allclose(swapped.client_server_delays, new_cs)
        np.testing.assert_allclose(
            swapped.server_server_delays, tiny_instance.server_server_delays
        )
        # The original is untouched (immutability).
        assert tiny_instance.client_server_delays[0, 0] == 50.0

    def test_with_delay_bound(self, tiny_instance):
        assert tiny_instance.with_delay_bound(200.0).delay_bound == 200.0
        assert tiny_instance.delay_bound == 100.0

    def test_frozen(self, tiny_instance):
        with pytest.raises(AttributeError):
            tiny_instance.delay_bound = 50.0  # type: ignore[misc]
