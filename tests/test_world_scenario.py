"""Tests for repro.world.scenario — configuration and scenario assembly."""

from __future__ import annotations

import numpy as np
import pytest

from tests.conftest import SMALL_BRITE, make_small_config
from repro.world.clients import ClientPopulation
from repro.world.scenario import DVEConfig, build_scenario


class TestDVEConfig:
    def test_paper_defaults(self):
        config = DVEConfig()
        assert config.num_servers == 20
        assert config.num_zones == 80
        assert config.num_clients == 1000
        assert config.total_capacity_mbps == 500.0
        assert config.delay_bound_ms == 250.0
        assert config.correlation == 0.5
        assert config.label == "20s-80z-1000c-500cp"

    def test_label_formatting(self):
        config = DVEConfig(num_servers=5, num_zones=15, num_clients=200, total_capacity_mbps=100)
        assert config.label == "5s-15z-200c-100cp"

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            DVEConfig(num_servers=0)
        with pytest.raises(ValueError):
            DVEConfig(correlation=2.0)
        with pytest.raises(ValueError):
            DVEConfig(total_capacity_mbps=0)

    def test_with_updates(self):
        config = make_small_config()
        updated = config.with_updates(correlation=0.9, delay_bound_ms=200.0)
        assert updated.correlation == 0.9
        assert updated.delay_bound_ms == 200.0
        assert updated.num_servers == config.num_servers
        assert config.correlation == 0.5  # original unchanged

    def test_distribution_spec_propagation(self):
        config = make_small_config(virtual_distribution="clustered", hot_zone_factor=5.0)
        spec = config.distribution_spec
        assert spec.virtual == "clustered"
        assert spec.hot_zone_factor == 5.0

    def test_bandwidth_model_propagation(self):
        config = make_small_config(frame_rate=50.0, message_bytes=200.0)
        assert config.bandwidth_model.stream_bps == pytest.approx(50 * 200 * 8)


class TestBuildScenario:
    def test_dimensions(self, small_scenario, small_config):
        assert small_scenario.num_servers == small_config.num_servers
        assert small_scenario.num_zones == small_config.num_zones
        assert small_scenario.num_clients == small_config.num_clients
        assert small_scenario.client_server_delays.shape == (
            small_config.num_clients,
            small_config.num_servers,
        )
        assert small_scenario.server_server_delays.shape == (
            small_config.num_servers,
            small_config.num_servers,
        )

    def test_total_capacity_matches_config(self, small_scenario, small_config):
        assert small_scenario.servers.total_capacity_mbps == pytest.approx(
            small_config.total_capacity_mbps
        )

    def test_delays_non_negative_and_bounded(self, small_scenario, small_config):
        assert (small_scenario.client_server_delays >= 0).all()
        assert small_scenario.client_server_delays.max() <= small_config.max_rtt_ms + 1e-9

    def test_server_mesh_is_discounted(self, small_scenario):
        mesh = small_scenario.server_server_delays
        assert np.allclose(np.diag(mesh), 0.0)
        nodes = small_scenario.servers.nodes
        full = small_scenario.delay_model.rtt[np.ix_(nodes, nodes)]
        off = ~np.eye(len(nodes), dtype=bool)
        np.testing.assert_allclose(mesh[off], 0.5 * full[off])

    def test_reproducible_for_seed(self, small_config):
        a = build_scenario(small_config, seed=123)
        b = build_scenario(small_config, seed=123)
        np.testing.assert_array_equal(a.population.zones, b.population.zones)
        np.testing.assert_array_equal(a.servers.nodes, b.servers.nodes)
        np.testing.assert_allclose(a.client_server_delays, b.client_server_delays)

    def test_different_seeds_differ(self, small_config):
        a = build_scenario(small_config, seed=1)
        b = build_scenario(small_config, seed=2)
        assert not np.array_equal(a.population.nodes, b.population.nodes)

    def test_shared_topology_reused(self, small_scenario, small_config):
        rebuilt = build_scenario(
            small_config,
            seed=99,
            topology=small_scenario.topology,
            delay_model=small_scenario.delay_model,
        )
        assert rebuilt.topology is small_scenario.topology
        assert rebuilt.delay_model is small_scenario.delay_model

    def test_mismatched_delay_model_rejected(self, small_scenario, small_config):
        other = build_scenario(small_config, seed=5)
        with pytest.raises(ValueError):
            build_scenario(
                small_config,
                seed=5,
                topology=other.topology,
                delay_model=small_scenario.delay_model,
            )

    def test_zone_demands_consistency(self, small_scenario):
        zone_demands = small_scenario.zone_demands()
        assert zone_demands.sum() == pytest.approx(small_scenario.total_demand())
        assert zone_demands.shape == (small_scenario.num_zones,)

    def test_summary_keys(self, small_scenario):
        summary = small_scenario.summary()
        assert summary["servers"] == small_scenario.num_servers
        assert summary["label"] == small_scenario.config.label
        assert 0 < summary["load_factor"]


class TestWithPopulation:
    def test_population_swap_recomputes_delays_and_demands(self, small_scenario):
        population = ClientPopulation(
            nodes=small_scenario.population.nodes[:50],
            zones=small_scenario.population.zones[:50],
        )
        updated = small_scenario.with_population(population)
        assert updated.num_clients == 50
        assert updated.client_server_delays.shape == (50, small_scenario.num_servers)
        assert updated.topology is small_scenario.topology
        # Demands are recomputed for the smaller zone populations.
        assert updated.total_demand() < small_scenario.total_demand()

    def test_population_with_invalid_zone_rejected(self, small_scenario):
        population = ClientPopulation(
            nodes=np.array([0]), zones=np.array([small_scenario.num_zones + 3])
        )
        with pytest.raises(ValueError):
            small_scenario.with_population(population)


class TestSmallBriteFixture:
    def test_small_brite_is_hierarchical(self):
        assert SMALL_BRITE.model == "hierarchical"
        assert SMALL_BRITE.num_nodes == SMALL_BRITE.num_as * SMALL_BRITE.routers_per_as
