"""Tests for repro.topology.delays — the RTT delay model with server-mesh discount."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.delays import DEFAULT_MAX_RTT_MS, DEFAULT_SERVER_MESH_FACTOR, DelayModel
from repro.topology.waxman import waxman_topology


@pytest.fixture(scope="module")
def model(small_topology_module):
    return DelayModel(small_topology_module)


@pytest.fixture(scope="module")
def small_topology_module():
    return waxman_topology(30, seed=2)


class TestDefaults:
    def test_paper_defaults(self):
        assert DEFAULT_MAX_RTT_MS == 500.0
        assert DEFAULT_SERVER_MESH_FACTOR == 0.5

    def test_invalid_mesh_factor(self, small_topology_module):
        with pytest.raises(ValueError):
            DelayModel(small_topology_module, server_mesh_factor=1.5)

    def test_invalid_max_rtt(self, small_topology_module):
        with pytest.raises(ValueError):
            DelayModel(small_topology_module, max_rtt_ms=-1.0)


class TestRttMatrix:
    def test_max_rtt_matches_setting(self, model):
        assert model.rtt.max() == pytest.approx(DEFAULT_MAX_RTT_MS)

    def test_zero_diagonal(self, model):
        np.testing.assert_allclose(np.diag(model.rtt), 0.0)

    def test_symmetric(self, model):
        np.testing.assert_allclose(model.rtt, model.rtt.T)

    def test_cached(self, model):
        assert model.rtt is model.rtt

    def test_node_rtt_scalar(self, model):
        assert model.node_rtt(0, 1) == pytest.approx(model.rtt[0, 1])


class TestClientServerDelays:
    def test_shape_and_values(self, model):
        clients = np.array([0, 1, 2, 3])
        servers = np.array([10, 20])
        matrix = model.client_server_delays(clients, servers)
        assert matrix.shape == (4, 2)
        assert matrix[1, 1] == pytest.approx(model.rtt[1, 20])

    def test_empty_clients(self, model):
        matrix = model.client_server_delays(np.array([], dtype=int), np.array([0, 1]))
        assert matrix.shape == (0, 2)

    def test_out_of_range_rejected(self, model):
        with pytest.raises(ValueError):
            model.client_server_delays(np.array([0]), np.array([1000]))

    def test_non_1d_rejected(self, model):
        with pytest.raises(ValueError):
            model.client_server_delays(np.array([[0]]), np.array([1]))


class TestServerMesh:
    def test_discount_factor_applied(self, model):
        servers = np.array([0, 5, 10])
        mesh = model.server_server_delays(servers)
        full = model.rtt[np.ix_(servers, servers)]
        off_diag = ~np.eye(3, dtype=bool)
        np.testing.assert_allclose(mesh[off_diag], 0.5 * full[off_diag])

    def test_zero_diagonal_even_for_repeated_nodes(self, small_topology_module):
        model = DelayModel(small_topology_module)
        mesh = model.server_server_delays(np.array([3, 3]))
        # RTT between a node and itself is zero, and the diagonal is forced to 0.
        assert mesh[0, 0] == 0.0 and mesh[1, 1] == 0.0

    def test_mesh_factor_zero_means_free_mesh(self, small_topology_module):
        model = DelayModel(small_topology_module, server_mesh_factor=0.0)
        mesh = model.server_server_delays(np.array([0, 1, 2]))
        np.testing.assert_allclose(mesh, 0.0)

    def test_mesh_never_slower_than_direct(self, model):
        servers = np.arange(10)
        mesh = model.server_server_delays(servers)
        direct = model.rtt[np.ix_(servers, servers)]
        assert (mesh <= direct + 1e-9).all()


class TestEccentricity:
    def test_all_nodes(self, model):
        ecc = model.eccentricity()
        assert ecc.shape == (model.num_nodes,)
        assert ecc.max() == pytest.approx(DEFAULT_MAX_RTT_MS)

    def test_subset(self, model):
        ecc = model.eccentricity(np.array([0, 1]))
        assert ecc.shape == (2,)
