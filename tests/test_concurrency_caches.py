"""Concurrent-access regression tests for the lazily-filled shared caches.

Thread-parallel shard stepping shares the topology / delay model (and, per
shard, the CAP instance) read-only by identity, so every lazy cache those
objects fill on first use must be safe to race on: concurrent first readers
must agree on a *single* cached object and the underlying computation must
run at most once.  These tests hammer each cache from a barrier-synchronised
thread pack so the first resolution really is concurrent.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

import repro.topology.delay_backends as delay_backends
from repro.core.problem import CAPInstance
from repro.topology.delay_backends import network_coordinates_for
from repro.topology.delays import DelayModel
from repro.world.scenario import build_scenario
from tests.conftest import make_small_config

NUM_THREADS = 8
NUM_ROUNDS = 5


def _hammer(fn, num_threads: int = NUM_THREADS):
    """Run ``fn`` once per thread, released simultaneously; return results."""
    barrier = threading.Barrier(num_threads)

    def call(_):
        barrier.wait()
        return fn()

    with ThreadPoolExecutor(max_workers=num_threads) as pool:
        return list(pool.map(call, range(num_threads)))


def _fresh_delay_model(seed: int = 0) -> DelayModel:
    scenario = build_scenario(make_small_config(), seed=seed)
    return DelayModel(scenario.topology)


class TestDelayModelRttCache:
    def test_concurrent_first_reads_agree(self):
        for round_no in range(NUM_ROUNDS):
            model = _fresh_delay_model(seed=round_no)
            results = _hammer(lambda: model.rtt)
            assert all(r is results[0] for r in results)
            np.testing.assert_array_equal(
                results[0], model.topology.round_trip_delays(max_rtt_ms=model.max_rtt_ms)
            )


class TestNetworkCoordinatesCache:
    def test_concurrent_first_fit_happens_once(self, monkeypatch):
        fits = []
        real_fit = delay_backends.fit_network_coordinates

        def counting_fit(rtt, dim):
            fits.append(dim)
            return real_fit(rtt, dim=dim)

        monkeypatch.setattr(delay_backends, "fit_network_coordinates", counting_fit)
        for round_no in range(NUM_ROUNDS):
            fits.clear()
            model = _fresh_delay_model(seed=round_no)
            results = _hammer(lambda: network_coordinates_for(model))
            assert all(r is results[0] for r in results)
            assert len(fits) == 1, f"embedding fitted {len(fits)} times under contention"

    def test_distinct_dims_cached_separately(self):
        model = _fresh_delay_model()
        five = network_coordinates_for(model, dim=5)
        seven = network_coordinates_for(model, dim=7)
        assert five is not seven
        assert network_coordinates_for(model, dim=5) is five


class TestZoneCaches:
    @pytest.mark.parametrize("method", ["zone_demands", "zone_populations"])
    def test_concurrent_first_reads_agree(self, method):
        for round_no in range(NUM_ROUNDS):
            scenario = build_scenario(make_small_config(), seed=100 + round_no)
            instance = CAPInstance.from_scenario(scenario)
            results = _hammer(getattr(instance, method))
            assert all(r is results[0] for r in results)
            assert not results[0].flags.writeable


class TestCompactMatrixCaches:
    def _sparse_instance(self, seed: int = 0) -> CAPInstance:
        scenario = build_scenario(make_small_config(delay_backend="sparse"), seed=seed)
        return CAPInstance.from_scenario(scenario)

    def test_concurrent_candidate_mask_agrees(self):
        for round_no in range(NUM_ROUNDS):
            delays = self._sparse_instance(seed=round_no).client_server_delays
            results = _hammer(delays.candidate_mask)
            assert all(r is results[0] for r in results)

    def test_concurrent_candidate_rows_agree(self):
        delays = self._sparse_instance().client_server_delays
        clients = np.arange(delays.shape[0], dtype=np.int64)
        results = _hammer(lambda: delays.candidate_rows(clients))
        servers0, delays0 = results[0]
        for servers, values in results[1:]:
            np.testing.assert_array_equal(servers, servers0)
            np.testing.assert_array_equal(values, delays0)
