"""Tests for repro.io.ascii_plot — terminal charts for the paper's figures."""

from __future__ import annotations

import numpy as np
import pytest

from repro.io.ascii_plot import cdf_chart, line_chart, sparkline
from repro.metrics.cdf import delay_cdf


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series_uses_increasing_levels(self):
        text = sparkline([0, 1, 2, 3, 4, 5])
        assert text[0] == " " and text[-1] == "@"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "@@@"

    def test_empty(self):
        assert sparkline([]) == ""

    def test_explicit_bounds(self):
        clipped = sparkline([5.0], lo=0.0, hi=10.0)
        assert len(clipped) == 1


class TestLineChart:
    def test_contains_title_axis_and_legend(self):
        text = line_chart(
            [0, 1, 2, 3],
            {"grez-grec": [0.9, 0.92, 0.95, 0.99], "ranz-virc": [0.6, 0.59, 0.61, 0.6]},
            title="pQoS vs correlation",
            x_label="correlation",
            y_label="pQoS",
        )
        assert "pQoS vs correlation" in text
        assert "legend:" in text
        assert "grez-grec" in text and "ranz-virc" in text
        assert "correlation" in text

    def test_markers_distinct_per_series(self):
        text = line_chart([0, 1], {"a": [0, 1], "b": [1, 0]})
        assert "* a" in text and "+ b" in text

    def test_dimensions(self):
        text = line_chart([0, 1, 2], {"s": [1, 2, 3]}, width=30, height=8)
        plot_lines = [l for l in text.splitlines() if "|" in l]
        assert len(plot_lines) == 8
        assert all(len(l.split("|", 1)[1]) <= 30 for l in plot_lines)

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart([], {"a": []})
        with pytest.raises(ValueError):
            line_chart([0, 1], {})
        with pytest.raises(ValueError):
            line_chart([0, 1], {"a": [1]})
        with pytest.raises(ValueError):
            line_chart([0, 1], {"a": [1, 2]}, width=5)

    def test_constant_series_does_not_crash(self):
        text = line_chart([0, 1, 2], {"flat": [0.5, 0.5, 0.5]})
        assert "flat" in text


class TestCdfChart:
    def test_plots_shared_grid(self):
        grid = np.linspace(250, 500, 11)
        cdfs = {
            "grez-grec": delay_cdf(np.random.default_rng(0).uniform(100, 300, 500), grid=grid),
            "ranz-virc": delay_cdf(np.random.default_rng(1).uniform(150, 500, 500), grid=grid),
        }
        text = cdf_chart(cdfs, title="Figure 4")
        assert "Figure 4" in text
        assert "delay (ms)" in text
        assert "CDF" in text

    def test_mismatched_grids_rejected(self):
        a = delay_cdf(np.array([300.0]), grid=np.linspace(250, 500, 5))
        b = delay_cdf(np.array([300.0]), grid=np.linspace(250, 500, 7))
        with pytest.raises(ValueError):
            cdf_chart({"a": a, "b": b})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cdf_chart({})
