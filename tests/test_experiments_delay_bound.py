"""Tests for repro.experiments.delay_bound — the D-sensitivity extension (E10)."""

from __future__ import annotations

import pytest

import repro.baselines  # noqa: F401
from repro.experiments.delay_bound import (
    DEFAULT_BOUNDS_MS,
    format_delay_bound,
    run_delay_bound,
)

SMALL_LABEL = "5s-15z-200c-100cp"


class TestRunDelayBound:
    @pytest.fixture(scope="class")
    def result(self):
        return run_delay_bound(
            label=SMALL_LABEL,
            bounds_ms=[100.0, 250.0, 500.0],
            algorithms=["ranz-virc", "grez-virc", "grez-grec"],
            num_runs=2,
            seed=0,
        )

    def test_structure(self, result):
        assert result.bounds_ms == [100.0, 250.0, 500.0]
        assert set(result.results) == {100.0, 250.0, 500.0}
        rows = result.rows("pqos")
        assert len(rows) == 3 and len(rows[0]) == 4

    def test_pqos_monotone_in_delay_bound(self, result):
        """A looser bound can only admit more clients."""
        for algorithm in result.algorithms:
            series = result.pqos_series(algorithm)
            assert series == sorted(series)

    def test_everyone_qualifies_at_max_rtt(self, result):
        # D = 500 ms equals the maximum RTT, so every client has QoS.
        assert result.results[500.0].pqos("grez-grec") == pytest.approx(1.0, abs=1e-6)

    def test_grez_dominates_ranz_at_every_bound(self, result):
        for i in range(len(result.bounds_ms)):
            assert result.pqos_series("grez-grec")[i] >= result.pqos_series("ranz-virc")[i]

    def test_refinement_gain_non_negative(self, result):
        gains = result.refinement_gain_series()
        assert all(g >= -1e-9 for g in gains)

    def test_rows_validation(self, result):
        with pytest.raises(ValueError):
            result.rows("latency")

    def test_refinement_gain_requires_both_algorithms(self):
        partial = run_delay_bound(
            label=SMALL_LABEL,
            bounds_ms=[250.0],
            algorithms=["grez-grec"],
            num_runs=1,
            seed=0,
        )
        with pytest.raises(ValueError):
            partial.refinement_gain_series()


class TestFormatting:
    def test_format_contains_both_panels(self):
        result = run_delay_bound(
            label=SMALL_LABEL,
            bounds_ms=[200.0, 400.0],
            algorithms=["grez-virc", "grez-grec"],
            num_runs=1,
            seed=0,
        )
        text = format_delay_bound(result)
        assert "pQoS" in text
        assert "resource utilisation" in text
        assert "Where the refined phase pays off" in text

    def test_default_bounds_cover_game_genres(self):
        assert min(DEFAULT_BOUNDS_MS) <= 100.0
        assert max(DEFAULT_BOUNDS_MS) >= 500.0

    def test_registered_in_experiment_registry(self):
        from repro.experiments.registry import get_experiment

        spec = get_experiment("delay-bound")
        assert callable(spec.run) and callable(spec.format)
