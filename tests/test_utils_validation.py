"""Tests for repro.utils.validation — argument validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    check_array_shape,
    check_in_range,
    check_integer_array,
    check_non_negative,
    check_positive,
    check_probability,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_rejects(self, value):
        with pytest.raises(ValueError):
            check_positive(value, "x")

    def test_error_message_names_parameter(self):
        with pytest.raises(ValueError, match="bandwidth"):
            check_positive(-3, "bandwidth")


class TestCheckNonNegative:
    def test_accepts_zero(self):
        assert check_non_negative(0.0, "x") == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-0.1, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_non_negative(float("nan"), "x")


class TestCheckProbability:
    @pytest.mark.parametrize("value", [0.0, 0.5, 1.0])
    def test_accepts_unit_interval(self, value):
        assert check_probability(value, "p") == value

    @pytest.mark.parametrize("value", [-0.01, 1.01, float("nan")])
    def test_rejects_outside(self, value):
        with pytest.raises(ValueError):
            check_probability(value, "p")


class TestCheckInRange:
    def test_accepts_bounds_inclusive(self):
        assert check_in_range(0.0, 0.0, 1.0, "x") == 0.0
        assert check_in_range(1.0, 0.0, 1.0, "x") == 1.0

    def test_rejects_outside(self):
        with pytest.raises(ValueError):
            check_in_range(1.5, 0.0, 1.0, "x")


class TestCheckArrayShape:
    def test_exact_shape(self):
        arr = np.zeros((3, 4))
        out = check_array_shape(arr, (3, 4), "m")
        assert out.shape == (3, 4)

    def test_wildcard_axis(self):
        arr = np.zeros((7, 2))
        assert check_array_shape(arr, (None, 2), "m").shape == (7, 2)

    def test_wrong_ndim(self):
        with pytest.raises(ValueError):
            check_array_shape(np.zeros(3), (3, 1), "m")

    def test_wrong_extent(self):
        with pytest.raises(ValueError):
            check_array_shape(np.zeros((3, 4)), (3, 5), "m")


class TestCheckIntegerArray:
    def test_int_array_passthrough(self):
        out = check_integer_array(np.array([1, 2, 3]), "z")
        assert out.dtype == np.int64

    def test_integral_floats_accepted(self):
        out = check_integer_array(np.array([1.0, 2.0]), "z")
        np.testing.assert_array_equal(out, [1, 2])

    def test_fractional_floats_rejected(self):
        with pytest.raises(ValueError):
            check_integer_array(np.array([1.5, 2.0]), "z")
