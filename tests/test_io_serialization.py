"""Tests for repro.io.serialization — JSON round-trips of assignments and configs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.io.serialization import (
    assignment_from_dict,
    assignment_to_dict,
    config_from_dict,
    config_to_dict,
    dump_json,
    load_json,
    to_jsonable,
)
from repro.topology.brite import BriteConfig
from repro.world.scenario import DVEConfig


def _sample_assignment() -> Assignment:
    return Assignment(
        zone_to_server=np.array([0, 1, 1, 2]),
        contact_of_client=np.array([0, 1, 2, 2, 0]),
        algorithm="grez-grec",
        capacity_exceeded=False,
        runtime_seconds=0.01,
        metadata={"note": "test"},
    )


class TestToJsonable:
    def test_scalars_passthrough(self):
        assert to_jsonable(3) == 3
        assert to_jsonable("x") == "x"
        assert to_jsonable(None) is None

    def test_numpy_scalars(self):
        assert to_jsonable(np.int64(4)) == 4
        assert to_jsonable(np.float64(0.5)) == 0.5

    def test_arrays_become_lists(self):
        assert to_jsonable(np.array([1, 2])) == [1, 2]

    def test_nested_dataclass(self):
        config = DVEConfig(num_servers=3, num_zones=6, num_clients=10, total_capacity_mbps=50)
        data = to_jsonable(config)
        assert data["num_servers"] == 3
        assert data["topology"]["model"] == "hierarchical"

    def test_unserialisable_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())


class TestAssignmentRoundTrip:
    def test_round_trip_preserves_arrays(self):
        original = _sample_assignment()
        restored = assignment_from_dict(assignment_to_dict(original))
        np.testing.assert_array_equal(restored.zone_to_server, original.zone_to_server)
        np.testing.assert_array_equal(restored.contact_of_client, original.contact_of_client)
        assert restored.algorithm == original.algorithm
        assert restored.metadata == {"note": "test"}

    def test_missing_optional_fields_default(self):
        restored = assignment_from_dict(
            {"zone_to_server": [0, 1], "contact_of_client": [0, 1, 1]}
        )
        assert restored.algorithm == "unknown"
        assert restored.capacity_exceeded is False


class TestConfigRoundTrip:
    def test_round_trip(self):
        config = DVEConfig(
            num_servers=4,
            num_zones=8,
            num_clients=20,
            total_capacity_mbps=80,
            correlation=0.25,
            topology=BriteConfig(model="waxman", num_nodes=30),
        )
        restored = config_from_dict(config_to_dict(config))
        assert restored == config

    def test_default_config_round_trip(self):
        config = DVEConfig()
        assert config_from_dict(config_to_dict(config)) == config


class TestJsonFiles:
    def test_dump_and_load(self, tmp_path):
        payload = {"values": np.array([1.5, 2.5]), "name": "x"}
        path = dump_json(payload, tmp_path / "data.json")
        loaded = load_json(path)
        assert loaded == {"values": [1.5, 2.5], "name": "x"}

    def test_dump_creates_directories(self, tmp_path):
        path = dump_json({"a": 1}, tmp_path / "sub" / "dir" / "x.json")
        assert path.exists()
