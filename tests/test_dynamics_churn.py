"""Tests for repro.dynamics.churn — random churn generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dynamics.churn import ChurnSpec, generate_churn
from repro.dynamics.events import apply_churn


class TestChurnSpec:
    def test_paper_defaults(self):
        spec = ChurnSpec()
        assert (spec.num_joins, spec.num_leaves, spec.num_moves) == (200, 200, 200)
        assert spec.adjacent_moves is False

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ChurnSpec(num_joins=-1)


class TestGenerateChurn:
    def test_counts_match_spec(self, small_scenario):
        spec = ChurnSpec(num_joins=20, num_leaves=15, num_moves=10)
        batch = generate_churn(small_scenario, spec, seed=0)
        assert batch.num_joins == 20
        assert batch.num_leaves == 15
        assert batch.num_moves == 10

    def test_movers_and_leavers_disjoint(self, small_scenario):
        batch = generate_churn(small_scenario, ChurnSpec(50, 50, 50), seed=1)
        assert np.intersect1d(batch.leave_indices, batch.move_indices).size == 0

    def test_moves_go_to_different_zone(self, small_scenario):
        batch = generate_churn(small_scenario, ChurnSpec(0, 0, 40), seed=2)
        current = small_scenario.population.zones[batch.move_indices]
        assert (batch.move_zones != current).all()

    def test_adjacent_moves_stay_in_neighbourhood(self, small_scenario):
        batch = generate_churn(
            small_scenario, ChurnSpec(0, 0, 30, adjacent_moves=True), seed=3
        )
        world = small_scenario.world
        for client, new_zone in zip(batch.move_indices, batch.move_zones):
            origin = int(small_scenario.population.zones[client])
            assert int(new_zone) in world.neighbors(origin)

    def test_joins_within_world_bounds(self, small_scenario):
        batch = generate_churn(small_scenario, ChurnSpec(100, 0, 0), seed=4)
        assert batch.join_zones.max() < small_scenario.num_zones
        assert batch.join_nodes.max() < small_scenario.topology.num_nodes

    def test_oversized_churn_clamped_to_population(self, small_scenario):
        n = small_scenario.num_clients
        batch = generate_churn(small_scenario, ChurnSpec(0, n + 500, n + 500), seed=5)
        assert batch.num_leaves == n
        assert batch.num_moves == 0  # nothing left to move after everyone leaves

    def test_deterministic(self, small_scenario):
        a = generate_churn(small_scenario, ChurnSpec(10, 10, 10), seed=9)
        b = generate_churn(small_scenario, ChurnSpec(10, 10, 10), seed=9)
        np.testing.assert_array_equal(a.leave_indices, b.leave_indices)
        np.testing.assert_array_equal(a.join_zones, b.join_zones)
        np.testing.assert_array_equal(a.move_zones, b.move_zones)

    def test_generated_batch_applies_cleanly(self, small_scenario):
        spec = ChurnSpec(num_joins=30, num_leaves=20, num_moves=25)
        batch = generate_churn(small_scenario, spec, seed=6)
        result = apply_churn(small_scenario.population, batch)
        assert result.population.num_clients == small_scenario.num_clients + 30 - 20
