"""Package-level tests: top-level exports, version, and the documented quickstart."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPackage:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.{name} missing"

    def test_subpackages_importable(self):
        for sub in (
            "core",
            "topology",
            "world",
            "dynamics",
            "measurement",
            "metrics",
            "baselines",
            "experiments",
            "io",
            "utils",
            "cli",
        ):
            importlib.import_module(f"repro.{sub}")

    def test_readme_quickstart_flow(self):
        """The flow shown in README / the package docstring works end to end."""
        from repro import CAPInstance, DVEConfig, build_scenario, solve_cap

        scenario = build_scenario(
            DVEConfig(num_servers=5, num_zones=15, num_clients=200, total_capacity_mbps=100),
            seed=42,
        )
        instance = CAPInstance.from_scenario(scenario)
        assignment = solve_cap(instance, "grez-grec", seed=0)
        assert 0.0 <= assignment.pqos(instance) <= 1.0
        assert assignment.is_capacity_feasible(instance)

    def test_metrics_exports_work(self, small_instance):
        from repro import pqos, qos_report, resource_report, resource_utilization, solve_cap

        assignment = solve_cap(small_instance, "grez-virc", seed=0)
        assert pqos(small_instance, assignment) == pytest.approx(
            qos_report(small_instance, assignment).pqos
        )
        assert resource_utilization(small_instance, assignment) == pytest.approx(
            resource_report(small_instance, assignment).utilization
        )

    def test_py_typed_marker_shipped(self):
        """PEP 561: the package carries a py.typed marker next to __init__."""
        from pathlib import Path

        assert (Path(repro.__file__).parent / "py.typed").exists()
