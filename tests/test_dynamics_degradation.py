"""Tests for repro.dynamics.degradation — the graceful-degradation layer.

Covers the FIFO degraded pool (including abandonment), the deterministic
batch-rewriting admission control, the evacuation host pick used by
``remap_assignment_servers`` when no server has free capacity, and the
sparse backend's candidate re-cover guard under server churn.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.baselines  # noqa: F401  (registers the baseline solvers)
from repro.core.assignment import Assignment
from repro.core.problem import CAPInstance
from repro.dynamics.degradation import (
    AdmissionPolicy,
    DegradedPool,
    admission_control,
    pick_evacuation_host,
)
from repro.dynamics.events import ChurnBatch
from repro.dynamics.infrastructure import ServerChurnResult
from repro.dynamics.policies import remap_assignment_servers
from repro.world.clients import ClientPopulation
from repro.world.servers import ServerSet

from tests.conftest import make_small_config


def _population(zones, nodes=None):
    zones = np.asarray(zones, dtype=np.int64)
    if nodes is None:
        nodes = np.arange(zones.size, dtype=np.int64)
    return ClientPopulation(nodes=nodes, zones=zones)


class TestDegradedPool:
    def test_push_pop_is_fifo(self):
        pool = DegradedPool()
        pool.push([10, 11], [0, 1], epoch=0)
        pool.push([12], [2], epoch=1)
        assert pool.size == 3
        nodes, zones = pool.pop_front(2)
        np.testing.assert_array_equal(nodes, [10, 11])
        np.testing.assert_array_equal(zones, [0, 1])
        assert pool.size == 1
        np.testing.assert_array_equal(pool.shed_epochs, [1])

    def test_pop_more_than_size_raises(self):
        pool = DegradedPool()
        pool.push([1], [0])
        with pytest.raises(ValueError):
            pool.pop_front(2)

    def test_mismatched_arrays_raise(self):
        with pytest.raises(ValueError):
            DegradedPool(nodes=np.arange(2), zones=np.arange(3))
        pool = DegradedPool()
        with pytest.raises(ValueError):
            pool.push([1, 2], [0])

    def test_expire_drops_only_old_entries(self):
        pool = DegradedPool()
        pool.push([1], [0], epoch=0)
        pool.push([2], [0], epoch=4)
        # At epoch 5 with patience 2, entries shed at epoch <= 3 abandon.
        assert pool.expire(5, 2) == 1
        assert pool.size == 1
        np.testing.assert_array_equal(pool.nodes, [2])
        # None = infinite patience: nothing ever expires.
        assert pool.expire(100, None) == 0
        assert pool.size == 1


class TestAdmissionPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionPolicy(max_load_factor=0.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(readmit_load_factor=1.2, max_load_factor=1.0)
        with pytest.raises(ValueError):
            AdmissionPolicy(patience_epochs=0)

    def test_defaults(self):
        policy = AdmissionPolicy()
        assert policy.patience_epochs is None
        assert policy.readmit_load_factor < policy.max_load_factor


class TestAdmissionControl:
    POLICY = AdmissionPolicy()

    def _run(self, batch, population, capacity, pool=None, seed=0, epoch=0, policy=None):
        # stream_bps=1 keeps the quadratic demand numbers human-readable:
        # a zone with population p demands p * (p + 1).
        return admission_control(
            batch,
            population,
            num_zones=4,
            stream_bps=1.0,
            total_capacity=capacity,
            pool=pool if pool is not None else DegradedPool(),
            policy=policy or self.POLICY,
            rng=np.random.default_rng(seed),
            epoch=epoch,
        )

    def test_feasible_batch_is_untouched_and_consumes_no_rng(self):
        population = _population([0, 0, 1])
        batch = ChurnBatch(join_nodes=[9], join_zones=[2])
        rng = np.random.default_rng(7)
        state_before = rng.bit_generator.state
        pool = DegradedPool()
        out, stats = admission_control(
            batch, population, 4, 1.0, 100.0, pool, self.POLICY, rng
        )
        assert out is batch
        assert stats.num_shed == 0 and stats.clients_degraded == 0
        assert stats.capacity_deficit == 0.0
        assert rng.bit_generator.state == state_before

    def test_sheds_joiners_before_survivors(self):
        # Zone 0 holds 2 clients (demand 6); 3 joins into zone 1 add 12.
        population = _population([0, 0])
        batch = ChurnBatch(join_nodes=[10, 11, 12], join_zones=[1, 1, 1])
        out, stats = self._run(batch, population, capacity=10.0)
        # 18 -> shed one joiner (-6) -> 12 -> shed another (-4) -> 8 <= 10.
        assert stats.num_shed == 2
        assert stats.clients_degraded == 2
        assert stats.capacity_deficit == 8.0
        assert out.num_joins == 1
        # Survivors were never touched.
        assert out.leave_indices.size == 0

    def test_shedding_is_deterministic_for_a_seed(self):
        population = _population([0, 0])
        batch = ChurnBatch(join_nodes=[10, 11, 12], join_zones=[1, 1, 1])
        out_a, _ = self._run(batch, population, capacity=10.0, seed=3)
        out_b, _ = self._run(batch, population, capacity=10.0, seed=3)
        np.testing.assert_array_equal(out_a.join_nodes, out_b.join_nodes)

    def test_sheds_survivors_when_joiner_shedding_is_not_enough(self):
        # 4 clients in zone 0 demand 20; no joins; capacity 10.
        population = _population([0, 0, 0, 0])
        pool = DegradedPool()
        out, stats = self._run(ChurnBatch(), population, capacity=10.0, pool=pool)
        # 20 -> -8 -> 12 -> -6 -> 6 <= 10: two survivors shed.
        assert stats.num_shed == 2
        assert out.leave_indices.size == 2
        assert pool.size == 2
        # Pool entries carry the shed clients' physical nodes.
        assert set(pool.nodes) <= set(population.nodes)

    def test_shed_mover_is_pooled_at_destination_and_move_cancelled(self):
        population = _population([0, 0, 0, 0])
        batch = ChurnBatch(move_indices=[0], move_zones=[1])
        pool = DegradedPool()
        # Capacity so tight everyone is shed.
        out, stats = self._run(batch, population, capacity=0.5, pool=pool)
        assert stats.num_shed == 4
        assert out.move_indices.size == 0
        assert sorted(out.leave_indices) == [0, 1, 2, 3]
        # Client 0 (node 0) was counted at its destination zone 1.
        zone_of_node0 = int(pool.zones[pool.nodes == 0][0])
        assert zone_of_node0 == 1

    def test_readmission_is_fifo_with_hysteresis(self):
        population = _population(np.zeros(0, dtype=np.int64))
        pool = DegradedPool()
        pool.push([20], [1], epoch=0)
        pool.push([21], [2], epoch=0)
        pool.push([22], [3], epoch=1)
        # Each re-admission into an empty zone adds 2; readmit threshold is
        # 0.9 * 5 = 4.5, so exactly two clients fit (demand 0 -> 2 -> 4).
        out, stats = self._run(ChurnBatch(), population, capacity=5.0, pool=pool)
        assert stats.num_readmitted == 2
        assert stats.clients_degraded == 1
        np.testing.assert_array_equal(out.join_nodes, [20, 21])
        np.testing.assert_array_equal(pool.nodes, [22])

    def test_abandonment_expires_before_anything_else(self):
        population = _population(np.zeros(0, dtype=np.int64))
        pool = DegradedPool()
        pool.push([20], [1], epoch=0)
        pool.push([21], [2], epoch=4)
        policy = AdmissionPolicy(patience_epochs=2, readmit_load_factor=0.001)
        out, stats = self._run(
            ChurnBatch(), population, capacity=5.0, pool=pool, epoch=5, policy=policy
        )
        # Entry from epoch 0 abandoned (5 - 2 = 3 >= 0); epoch-4 entry stays
        # (readmit threshold is too low to admit it).
        assert stats.num_abandoned == 1
        assert stats.num_readmitted == 0
        np.testing.assert_array_equal(pool.nodes, [21])


class TestPickEvacuationHost:
    def test_most_free_capacity_wins(self):
        assert pick_evacuation_host(np.array([1.0, 5.0, 3.0]), np.array([10.0, 10.0, 10.0])) == 1

    def test_all_overloaded_picks_least_relative_overload(self):
        free = np.array([-10.0, -2.0, -8.0])
        caps = np.array([100.0, 10.0, 400.0])
        # Relative overloads: -0.1, -0.2, -0.02 -> server 2.
        assert pick_evacuation_host(free, caps) == 2

    def test_ties_break_to_lowest_index(self):
        assert pick_evacuation_host(np.array([-5.0, -5.0]), np.array([10.0, 10.0])) == 0

    def test_zero_free_space_counts_as_overloaded(self):
        # free == 0 is not headroom; the relative rule still picks it over
        # a genuinely overloaded server.
        assert pick_evacuation_host(np.array([0.0, -1.0]), np.array([10.0, 10.0])) == 0

    def test_empty_fleet_raises(self):
        with pytest.raises(ValueError):
            pick_evacuation_host(np.zeros(0), np.zeros(0))


class TestRemapEvacuationWithoutFreeCapacity:
    """Satellite: fleet evacuation stays deterministic on infeasible worlds."""

    def _two_server_instance(self, capacities):
        delays = np.array(
            [
                [50.0, 300.0],
                [50.0, 300.0],
                [300.0, 50.0],
                [300.0, 50.0],
                [120.0, 60.0],
                [120.0, 60.0],
                [100.0, 100.0],
                [100.0, 100.0],
            ]
        )
        return CAPInstance(
            client_server_delays=delays,
            server_server_delays=np.array([[0.0, 30.0], [30.0, 0.0]]),
            client_zones=np.array([0, 0, 1, 1, 2, 2, 3, 3]),
            client_demands=np.full(8, 10.0),
            server_capacities=np.asarray(capacities, dtype=float),
            delay_bound=250.0,
            num_zones=4,
        )

    def test_orphaned_zone_lands_on_least_overloaded_server(self):
        # Zones 0, 1 -> server 0; zone 2 -> server 1; zone 3 was hosted by the
        # departing server 2.  Each zone demands 20; capacities (25, 15) mean
        # both survivors are already overloaded (free -15 and -5), so the
        # orphan goes to server 1 (least relative overload: -1/3 vs -3/5).
        assignment = Assignment(
            zone_to_server=np.array([0, 0, 1, 2]),
            contact_of_client=np.array([0, 0, 0, 0, 1, 1, 2, 2]),
            algorithm="test",
        )
        churn = ServerChurnResult(
            servers=ServerSet(nodes=np.array([0, 1]), capacities=np.array([25.0, 15.0])),
            old_to_new=np.array([0, 1, -1]),
            new_server_indices=np.zeros(0, dtype=np.int64),
        )
        new_instance = self._two_server_instance((25.0, 15.0))
        remapped = remap_assignment_servers(
            assignment, churn, new_instance, new_instance.client_zones
        )
        assert int(remapped.zone_to_server[3]) == 1
        # Contacts on the departed server fall back to the zone's new host.
        assert remapped.contact_of_client.max() < 2
        # Deterministic: a second call produces the identical mapping.
        again = remap_assignment_servers(
            assignment, churn, new_instance, new_instance.client_zones
        )
        np.testing.assert_array_equal(remapped.zone_to_server, again.zone_to_server)
        np.testing.assert_array_equal(remapped.contact_of_client, again.contact_of_client)


class TestSparseRecoverGuard:
    """Satellite: candidate re-cover after server churn must keep coverage."""

    @pytest.fixture(scope="class")
    def sparse_scenario(self):
        from repro.world.scenario import build_scenario

        config = make_small_config(delay_backend="sparse", num_servers=8, sparse_top_k=2)
        return build_scenario(config, seed=7)

    def test_with_servers_recovers_every_zone(self, sparse_scenario):
        matrix = sparse_scenario.client_server_delays
        # Remove the two servers zone 0's candidate set points at — the exact
        # shape of churn that used to risk a sentinel-only candidate set.
        victims = set(int(s) for s in np.asarray(matrix.zone_candidates)[0])
        keep = [i for i in range(matrix.server_nodes.size) if i not in victims]
        rebuilt = matrix.with_servers(matrix.server_nodes[keep])
        from repro.topology.delay_backends import SPARSE_FILL_DELAY_MS

        anchor_delays = rebuilt.node_server[
            rebuilt.zone_anchors[:, None], rebuilt.zone_candidates
        ]
        assert (anchor_delays < SPARSE_FILL_DELAY_MS).any(axis=1).all()

    def test_broken_recover_raises(self, sparse_scenario, monkeypatch):
        import repro.topology.delay_backends as db

        matrix = sparse_scenario.client_server_delays

        def out_of_range(node_server, anchors, width):
            return np.full((anchors.size, width), node_server.shape[1], dtype=np.int64)

        monkeypatch.setattr(db, "_candidates_from_anchors", out_of_range)
        with pytest.raises(ValueError, match="re-cover"):
            matrix.with_servers(matrix.server_nodes[:-1])

    def test_sentinel_only_recover_raises(self, sparse_scenario, monkeypatch):
        import repro.topology.delay_backends as db

        matrix = sparse_scenario.client_server_delays

        # Simulate a broken rebuild: the node->server table degenerates to
        # all-sentinel rows, so even in-range candidates cover nothing.
        def sentinel_table(self, server_nodes):
            return np.full(
                (matrix.node_server.shape[0], np.asarray(server_nodes).size),
                db.SPARSE_FILL_DELAY_MS,
            )

        monkeypatch.setattr(type(matrix.backend), "node_server_table", sentinel_table)
        with pytest.raises(ValueError, match="sentinel-only"):
            matrix.with_servers(matrix.server_nodes[:-1])
