"""Determinism contract of thread-parallel federated shard stepping.

The headline guarantee (mirroring the replication engine's): for the same
seed, :meth:`FederatedSimulator.stream` emits a byte-identical record stream
for every ``shard_workers`` value — across arbiters, world-advance backends
and measurement backends.  Shards own their state and RNG streams; threads
only change *when* a shard steps, never what it computes, and the engine
buffers per-shard records to keep the emission order deterministic.
"""

from __future__ import annotations

from typing import List, Optional

import pytest

import repro.baselines  # noqa: F401  (registers the baseline solvers)
from repro.dynamics.churn import ChurnSpec
from repro.dynamics.engine import ChurnSimulator, EpochRecord
from repro.dynamics.federation_engine import FederatedSimulator
from repro.world.federation import build_federation

from tests.conftest import make_small_config

CHURN = ChurnSpec(num_joins=10, num_leaves=10, num_moves=10)
NUM_EPOCHS = 3

# shard_id is compared explicitly on top of the scenario measurement columns:
# parallel stepping must preserve the per-shard emission order exactly.
COMPARE_FIELDS = EpochRecord.SCENARIO_FIELDS


def _run(
    shard_workers: Optional[int],
    arbiter: str = "proportional",
    backend: str = "delta",
    measurement_backend: str = "full",
) -> List[EpochRecord]:
    world = build_federation(
        make_small_config(), num_shards=4, seed=11, client_weights=[4, 3, 2, 1]
    )
    simulator = FederatedSimulator(
        world=world,
        algorithms=["grez-grec"],
        arbiter=arbiter,
        churn_spec=CHURN,
        seed=5,
        backend=backend,
        measurement_backend=measurement_backend,
        shard_workers=shard_workers,
    )
    return simulator.run(NUM_EPOCHS)


def _assert_identical(serial: List[EpochRecord], parallel: List[EpochRecord]) -> None:
    assert len(serial) == len(parallel)
    for a, b in zip(serial, parallel):
        assert a.shard_id == b.shard_id
        assert a.epoch == b.epoch
        assert a.algorithm == b.algorithm
        assert ChurnSimulator.records_equal(a, b, fields=COMPARE_FIELDS)


class TestParallelShardDeterminism:
    @pytest.mark.parametrize("shard_workers", [2, 4])
    @pytest.mark.parametrize("arbiter", ["static", "proportional", "regret"])
    @pytest.mark.parametrize("backend", ["delta", "rebuild"])
    @pytest.mark.parametrize("measurement_backend", ["full", "incremental"])
    def test_bit_identical_to_serial(
        self, shard_workers, arbiter, backend, measurement_backend
    ):
        serial = _run(None, arbiter, backend, measurement_backend)
        parallel = _run(shard_workers, arbiter, backend, measurement_backend)
        _assert_identical(serial, parallel)

    def test_workers_all_cpus_identical(self):
        _assert_identical(_run(None), _run(0))

    def test_oversubscribed_workers_identical(self):
        # More threads than shards: resolve_workers caps at the shard count.
        _assert_identical(_run(None), _run(16))


class TestParallelProfile:
    def test_profile_populated(self):
        world = build_federation(make_small_config(), num_shards=3, seed=11)
        simulator = FederatedSimulator(
            world=world,
            algorithms=["grez-grec"],
            arbiter="proportional",
            churn_spec=CHURN,
            seed=5,
            shard_workers=2,
        )
        simulator.run(NUM_EPOCHS)
        profile = simulator.last_profile
        assert profile is not None
        assert profile.shard_workers == 2
        assert profile.num_epochs == NUM_EPOCHS
        assert len(profile.shard_wall_seconds) == 3
        assert all(w > 0 for w in profile.shard_wall_seconds)
        assert all(b >= 0 for b in profile.shard_barrier_seconds)
        # The fastest shard of each epoch waits; at least one wait is nonzero.
        assert sum(profile.shard_barrier_seconds) > 0
        assert all(s > 0 for s in profile.shard_solve_seconds)
        assert profile.arbiter_seconds > 0

    def test_serial_profile_has_no_barrier(self):
        world = build_federation(make_small_config(), num_shards=3, seed=11)
        simulator = FederatedSimulator(
            world=world,
            algorithms=["grez-grec"],
            arbiter="proportional",
            churn_spec=CHURN,
            seed=5,
        )
        simulator.run(NUM_EPOCHS)
        profile = simulator.last_profile
        assert profile is not None
        assert profile.shard_workers == 1
        assert profile.shard_barrier_seconds == [0.0, 0.0, 0.0]
        assert all(w > 0 for w in profile.shard_wall_seconds)
