"""Tests for elastic infrastructure churn: server join/leave/drift batches,
scenario and instance server deltas, zone migration costs, and the engine's
backend equivalence under combined client+server churn.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.baselines  # noqa: F401  (registers the baseline solvers)
from repro.core.problem import CAPInstance
from repro.core.registry import solve as registry_solve
from repro.dynamics.churn import ChurnSpec, generate_churn
from repro.dynamics.engine import BACKENDS, ChurnSimulator
from repro.dynamics.events import apply_churn
from repro.dynamics.infrastructure import (
    ServerChurnBatch,
    ServerChurnSpec,
    apply_server_churn,
    generate_server_churn,
)
from repro.dynamics.migration import MigrationCostModel, count_zone_migrations
from repro.dynamics.policies import carry_over_assignment, remap_assignment_servers
from repro.world.servers import MBPS

#: Client churn mixes crossed with the server churn mixes below in the
#: acceptance property test.
CLIENT_CHURN = [ChurnSpec(20, 20, 20), ChurnSpec(5, 30, 10)]

#: Server churn mixes: grow, shrink, drift-only, and everything at once.
SERVER_CHURN = [
    ServerChurnSpec(num_joins=1),
    ServerChurnSpec(num_leaves=1),
    ServerChurnSpec(capacity_drift=0.1),
    ServerChurnSpec(num_joins=1, num_leaves=1, capacity_drift=0.05),
]


class TestServerChurnSpec:
    def test_defaults_are_static(self):
        spec = ServerChurnSpec()
        assert spec.is_static
        assert not ServerChurnSpec(num_joins=1).is_static
        assert not ServerChurnSpec(capacity_drift=0.01).is_static

    def test_validation(self):
        with pytest.raises(ValueError):
            ServerChurnSpec(num_joins=-1)
        with pytest.raises(ValueError):
            ServerChurnSpec(capacity_drift=-0.1)
        with pytest.raises(ValueError):
            ServerChurnSpec(join_capacity_mbps=0.0)
        with pytest.raises(ValueError):
            ServerChurnSpec(min_capacity_mbps=0.0)


class TestGenerateServerChurn:
    def test_deterministic(self, small_scenario):
        spec = ServerChurnSpec(num_joins=2, num_leaves=2, capacity_drift=0.1)
        a = generate_server_churn(
            small_scenario.servers, spec, num_nodes=small_scenario.topology.num_nodes, seed=5
        )
        b = generate_server_churn(
            small_scenario.servers, spec, num_nodes=small_scenario.topology.num_nodes, seed=5
        )
        np.testing.assert_array_equal(a.join_nodes, b.join_nodes)
        np.testing.assert_array_equal(a.leave_indices, b.leave_indices)
        np.testing.assert_array_equal(a.capacity_factors, b.capacity_factors)

    def test_leaves_capped_to_preserve_fleet(self, small_scenario):
        spec = ServerChurnSpec(num_leaves=1000)
        batch = generate_server_churn(small_scenario.servers, spec, seed=0)
        assert batch.num_leaves == small_scenario.num_servers - 1
        result = apply_server_churn(small_scenario.servers, batch)
        assert result.servers.num_servers == 1

    def test_joins_need_num_nodes(self, small_scenario):
        with pytest.raises(ValueError, match="num_nodes"):
            generate_server_churn(small_scenario.servers, ServerChurnSpec(num_joins=1), seed=0)

    def test_joins_prefer_unoccupied_nodes(self, small_scenario):
        spec = ServerChurnSpec(num_joins=3)
        batch = generate_server_churn(
            small_scenario.servers, spec, num_nodes=small_scenario.topology.num_nodes, seed=1
        )
        assert batch.num_joins == 3
        assert not np.isin(batch.join_nodes, small_scenario.servers.nodes).any()
        np.testing.assert_array_equal(
            batch.join_capacities, np.full(3, spec.join_capacity_mbps * MBPS)
        )

    def test_drift_factors_positive(self, small_scenario):
        batch = generate_server_churn(
            small_scenario.servers, ServerChurnSpec(capacity_drift=0.5), seed=2
        )
        assert batch.capacity_factors.shape == (small_scenario.num_servers,)
        assert (batch.capacity_factors > 0).all()


class TestApplyServerChurn:
    def test_empty_batch_is_identity(self, small_scenario):
        """Satellite edge case: an empty server batch changes nothing."""
        result = apply_server_churn(small_scenario.servers, ServerChurnBatch())
        assert result.is_identity
        np.testing.assert_array_equal(result.servers.nodes, small_scenario.servers.nodes)
        np.testing.assert_array_equal(
            result.servers.capacities, small_scenario.servers.capacities
        )
        np.testing.assert_array_equal(
            result.old_to_new, np.arange(small_scenario.num_servers)
        )
        assert result.new_server_indices.size == 0

    def test_layout_survivors_then_joiners(self, small_scenario):
        servers = small_scenario.servers
        batch = ServerChurnBatch(
            join_nodes=np.array([0, 1]),
            join_capacities=np.array([5.0 * MBPS, 6.0 * MBPS]),
            leave_indices=np.array([1]),
        )
        result = apply_server_churn(servers, batch)
        assert result.servers.num_servers == servers.num_servers + 1
        assert result.old_to_new[1] == -1
        survivors = np.flatnonzero(result.old_to_new >= 0)
        np.testing.assert_array_equal(
            result.old_to_new[survivors], np.arange(survivors.size)
        )
        np.testing.assert_array_equal(
            result.servers.nodes[: survivors.size], servers.nodes[survivors]
        )
        np.testing.assert_array_equal(
            result.servers.nodes[survivors.size:], batch.join_nodes
        )
        assert not result.is_identity

    def test_drift_applied_with_floor(self, small_scenario):
        servers = small_scenario.servers
        factors = np.full(servers.num_servers, 1e-12)
        batch = ServerChurnBatch(capacity_factors=factors, min_capacity=2.0 * MBPS)
        result = apply_server_churn(servers, batch)
        np.testing.assert_allclose(
            result.servers.capacities, np.full(servers.num_servers, 2.0 * MBPS)
        )

    def test_rejects_bad_batches(self, small_scenario):
        servers = small_scenario.servers
        with pytest.raises(ValueError, match="out of range"):
            apply_server_churn(servers, ServerChurnBatch(leave_indices=[99]))
        with pytest.raises(ValueError, match="distinct"):
            apply_server_churn(servers, ServerChurnBatch(leave_indices=[0, 0]))
        with pytest.raises(ValueError, match="at least one server"):
            apply_server_churn(
                servers, ServerChurnBatch(leave_indices=np.arange(servers.num_servers))
            )


class TestServerSetTransforms:
    def test_subset_and_with_joined(self, small_scenario):
        servers = small_scenario.servers
        sub = servers.subset([2, 0])
        np.testing.assert_array_equal(sub.nodes, servers.nodes[[2, 0]])
        grown = servers.with_joined([5], [10.0 * MBPS])
        assert grown.num_servers == servers.num_servers + 1
        with pytest.raises(ValueError):
            servers.subset([servers.num_servers])
        with pytest.raises(ValueError):
            servers.with_joined([1, 2], [1.0 * MBPS])


class TestScenarioServerDelta:
    @pytest.mark.parametrize("spec", SERVER_CHURN, ids=["join", "leave", "drift", "mixed"])
    def test_bit_identical_to_with_servers(self, small_scenario, spec):
        batch = generate_server_churn(
            small_scenario.servers, spec, num_nodes=small_scenario.topology.num_nodes, seed=11
        )
        churn = apply_server_churn(small_scenario.servers, batch)
        rebuilt = small_scenario.with_servers(churn.servers)
        delta = small_scenario.apply_server_delta(churn)
        np.testing.assert_array_equal(
            rebuilt.client_server_delays, delta.client_server_delays
        )
        np.testing.assert_array_equal(
            rebuilt.server_server_delays, delta.server_server_delays
        )
        np.testing.assert_array_equal(
            rebuilt.servers.capacities, delta.servers.capacities
        )
        assert delta.population is small_scenario.population
        assert delta.client_demands is small_scenario.client_demands

    def test_fleet_mismatch_rejected(self, small_scenario):
        batch = generate_server_churn(
            small_scenario.servers, ServerChurnSpec(num_leaves=1), seed=3
        )
        churn = apply_server_churn(small_scenario.servers, batch)
        shrunk = small_scenario.apply_server_delta(churn)
        with pytest.raises(ValueError, match="generated against"):
            shrunk.apply_server_delta(churn)  # churn refers to the *old* fleet


class TestInstanceServerDelta:
    def _server_churn(self, small_scenario, spec, seed=7):
        batch = generate_server_churn(
            small_scenario.servers, spec, num_nodes=small_scenario.topology.num_nodes, seed=seed
        )
        return apply_server_churn(small_scenario.servers, batch)

    @pytest.mark.parametrize("spec", SERVER_CHURN, ids=["join", "leave", "drift", "mixed"])
    def test_bit_identical_to_rebuild(self, small_scenario, small_instance, spec):
        churn = self._server_churn(small_scenario, spec)
        new_scenario = small_scenario.apply_server_delta(churn)
        rebuilt = CAPInstance.from_scenario(new_scenario)
        delta = small_instance.apply_server_delta(
            old_to_new=churn.old_to_new,
            join_delays=new_scenario.client_server_delays[:, churn.new_server_indices],
            server_server_delays=new_scenario.server_server_delays,
            server_capacities=new_scenario.servers.capacities,
        )
        np.testing.assert_array_equal(rebuilt.client_server_delays, delta.client_server_delays)
        np.testing.assert_array_equal(rebuilt.server_server_delays, delta.server_server_delays)
        np.testing.assert_array_equal(rebuilt.server_capacities, delta.server_capacities)
        assert delta.client_zones is small_instance.client_zones
        assert delta.client_demands is small_instance.client_demands

    def test_zone_caches_carried_over(self, small_scenario, small_instance):
        churn = self._server_churn(small_scenario, ServerChurnSpec(capacity_drift=0.1))
        demands_before = small_instance.zone_demands()  # warm the cache
        pops_before = small_instance.zone_populations()
        new_scenario = small_scenario.apply_server_delta(churn)
        delta = small_instance.apply_server_delta(
            old_to_new=churn.old_to_new,
            join_delays=np.zeros((small_instance.num_clients, 0)),
            server_server_delays=new_scenario.server_server_delays,
            server_capacities=new_scenario.servers.capacities,
        )
        # Cache maintenance: the derived aggregates are the same objects.
        assert delta.zone_demands() is demands_before
        assert delta.zone_populations() is pops_before

    def test_delta_only_validation(self, small_instance):
        m, k = small_instance.num_servers, small_instance.num_clients
        identity = np.arange(m, dtype=np.int64)
        mesh = small_instance.server_server_delays
        caps = small_instance.server_capacities
        none = np.zeros((k, 0))
        scrambled = identity.copy()
        scrambled[0], scrambled[1] = scrambled[1], scrambled[0]
        with pytest.raises(ValueError, match="relative order"):
            small_instance.apply_server_delta(scrambled, none, mesh, caps)
        with pytest.raises(ValueError, match="old_to_new"):
            small_instance.apply_server_delta(np.arange(m + 1), none, mesh, caps)
        with pytest.raises(ValueError, match="non-negative"):
            small_instance.apply_server_delta(
                identity, np.full((k, 1), -1.0), np.zeros((m + 1, m + 1)), np.ones(m + 1)
            )
        with pytest.raises(ValueError, match="server_server_delays"):
            small_instance.apply_server_delta(identity, none, np.zeros((m + 1, m + 1)), caps)
        with pytest.raises(ValueError, match="strictly positive"):
            small_instance.apply_server_delta(identity, none, mesh, np.zeros(m))
        with pytest.raises(ValueError, match="at least one server"):
            small_instance.apply_server_delta(
                np.full(m, -1, dtype=np.int64), none, np.zeros((0, 0)), np.zeros(0)
            )

    def test_combined_delta_matches_sequential(self, small_scenario, small_instance):
        """The combined client+server apply_delta equals server-then-client."""
        server_churn = self._server_churn(
            small_scenario, ServerChurnSpec(num_joins=1, num_leaves=1, capacity_drift=0.1)
        )
        mid_scenario = small_scenario.apply_server_delta(server_churn)
        batch = generate_churn(mid_scenario, ChurnSpec(10, 10, 10), seed=21)
        churn = apply_churn(mid_scenario.population, batch)
        new_scenario = mid_scenario.apply_churn_delta(churn)

        combined = small_instance.apply_delta(
            old_to_new=churn.old_to_new,
            join_delays=new_scenario.client_server_delays[churn.new_client_indices],
            client_zones=new_scenario.population.zones,
            client_demands=new_scenario.client_demands,
            server_old_to_new=server_churn.old_to_new,
            server_join_delays=mid_scenario.client_server_delays[
                :, server_churn.new_server_indices
            ],
            server_server_delays=mid_scenario.server_server_delays,
            server_capacities=mid_scenario.servers.capacities,
        )
        rebuilt = CAPInstance.from_scenario(new_scenario)
        np.testing.assert_array_equal(
            rebuilt.client_server_delays, combined.client_server_delays
        )
        np.testing.assert_array_equal(
            rebuilt.server_server_delays, combined.server_server_delays
        )
        np.testing.assert_array_equal(rebuilt.server_capacities, combined.server_capacities)
        np.testing.assert_array_equal(rebuilt.client_zones, combined.client_zones)

    def test_combined_delta_needs_all_server_args(self, small_instance):
        k = small_instance.num_clients
        with pytest.raises(ValueError, match="all four"):
            small_instance.apply_delta(
                old_to_new=np.arange(k, dtype=np.int64),
                join_delays=np.zeros((0, small_instance.num_servers)),
                client_zones=small_instance.client_zones,
                client_demands=small_instance.client_demands,
                server_old_to_new=np.arange(small_instance.num_servers),
            )


class TestRemapAssignmentServers:
    def test_identity_is_noop(self, small_scenario, small_instance):
        assignment = registry_solve(small_instance, "grez-grec", seed=0)
        churn = apply_server_churn(small_scenario.servers, ServerChurnBatch())
        remapped = remap_assignment_servers(
            assignment, churn, small_instance, small_instance.client_zones
        )
        assert remapped is assignment

    def test_server_leaving_while_hosting_zones(self, small_scenario, small_instance):
        """Satellite edge case: a departing server's zones are evacuated."""
        assignment = registry_solve(small_instance, "grez-grec", seed=0)
        # Remove the server hosting the most zones — the worst case.
        victim = int(np.bincount(assignment.zone_to_server,
                                 minlength=small_instance.num_servers).argmax())
        assert (assignment.zone_to_server == victim).any()
        batch = ServerChurnBatch(leave_indices=np.array([victim]))
        churn = apply_server_churn(small_scenario.servers, batch)
        new_scenario = small_scenario.apply_server_delta(churn)
        new_instance = CAPInstance.from_scenario(new_scenario)

        remapped = remap_assignment_servers(
            assignment, churn, new_instance, small_instance.client_zones
        )
        assert remapped.zone_to_server.min() >= 0
        assert remapped.zone_to_server.max() < new_instance.num_servers
        assert remapped.contact_of_client.min() >= 0
        assert remapped.contact_of_client.max() < new_instance.num_servers
        # Every zone the victim hosted counts as a forced migration.
        zones, clients = count_zone_migrations(
            assignment.zone_to_server,
            remapped.zone_to_server,
            new_instance.zone_populations(),
            server_old_to_new=churn.old_to_new,
        )
        assert zones >= int((assignment.zone_to_server == victim).sum())
        assert clients > 0

    def test_capacity_drift_can_make_assignment_infeasible(
        self, small_scenario, small_instance
    ):
        """Satellite edge case: hard capacity drift flags the carried assignment."""
        assignment = registry_solve(small_instance, "grez-grec", seed=0)
        assert assignment.is_capacity_feasible(small_instance)
        factors = np.full(small_instance.num_servers, 0.01)
        batch = ServerChurnBatch(capacity_factors=factors, min_capacity=0.1 * MBPS)
        churn = apply_server_churn(small_scenario.servers, batch)
        new_scenario = small_scenario.apply_server_delta(churn)
        new_instance = CAPInstance.from_scenario(new_scenario)
        remapped = remap_assignment_servers(
            assignment, churn, new_instance, small_instance.client_zones
        )
        assert not remapped.is_capacity_feasible(new_instance)
        # And the engine's carry-over recomputes the flag against the drifted fleet.
        from repro.dynamics.events import ChurnBatch

        client_churn = apply_churn(new_scenario.population, ChurnBatch())
        carried = carry_over_assignment(remapped, client_churn, new_instance)
        assert carried.capacity_exceeded


class TestMigrationAccounting:
    def test_count_zone_migrations_basics(self):
        old = np.array([0, 1, 2, 0])
        pops = np.array([10, 20, 30, 40])
        assert count_zone_migrations(old, old.copy(), pops) == (0, 0)
        new = np.array([1, 1, 2, 0])
        assert count_zone_migrations(old, new, pops) == (1, 10)

    def test_departed_host_counts_as_forced_migration(self):
        old = np.array([0, 1])
        old_to_new = np.array([-1, 0])  # server 0 left
        new = np.array([0, 0])
        zones, clients = count_zone_migrations(
            old, new, np.array([5, 7]), server_old_to_new=old_to_new
        )
        assert (zones, clients) == (1, 5)

    def test_cost_model(self):
        model = MigrationCostModel(
            cost_per_client=2.0, freeze_ms_per_client=1.5, freeze_ms_per_zone=10.0
        )
        charge = model.charge(2, 30)
        assert charge.cost == 60.0
        assert charge.freeze_ms == 2 * 10.0 + 30 * 1.5
        assert model.charge(0, 0).cost == 0.0
        assert MigrationCostModel().is_free
        with pytest.raises(ValueError):
            MigrationCostModel(cost_per_client=-1.0)

    def test_zero_charge_is_class_constant_not_field(self):
        import dataclasses

        from repro.dynamics.migration import MigrationCharge

        assert [f.name for f in dataclasses.fields(MigrationCharge)] == [
            "zones_migrated",
            "clients_migrated",
            "cost",
            "freeze_ms",
        ]
        charge = MigrationCostModel().charge(0, 0)
        assert charge is MigrationCharge.ZERO
        assert charge.ZERO is MigrationCharge.ZERO  # not shadowed per-instance

    def test_charge_zone_moves_helper(self):
        from repro.dynamics.migration import charge_zone_moves

        model = MigrationCostModel(cost_per_client=2.0)
        charge = charge_zone_moves(
            model, np.array([0, 1]), np.array([1, 1]), np.array([4, 6])
        )
        assert (charge.zones_migrated, charge.clients_migrated, charge.cost) == (1, 4, 8.0)


class TestEngineElasticEquivalence:
    """Acceptance criterion: delta and rebuild backends produce bit-identical
    EpochRecord streams under combined client+server churn, across churn
    mixes × policies.
    """

    @pytest.mark.parametrize("server_spec", SERVER_CHURN, ids=["join", "leave", "drift", "mixed"])
    @pytest.mark.parametrize("client_spec", CLIENT_CHURN, ids=["balanced", "leave-heavy"])
    def test_records_identical_across_backends(self, small_scenario, client_spec, server_spec):
        runs = {}
        for backend in BACKENDS:
            simulator = ChurnSimulator(
                scenario=small_scenario,
                algorithms=["grez-grec"],
                churn_spec=client_spec,
                server_churn_spec=server_spec,
                migration_cost=MigrationCostModel(cost_per_client=1.0),
                seed=123,
                backend=backend,
            )
            runs[backend] = simulator.run(num_epochs=3)
        for a, b in zip(runs["delta"], runs["rebuild"]):
            assert ChurnSimulator.records_equal(a, b)

    @pytest.mark.parametrize("policy", ["incremental", "warm_start", "every_k_epochs"])
    def test_records_identical_across_backends_per_policy(self, small_scenario, policy):
        runs = {}
        for backend in BACKENDS:
            simulator = ChurnSimulator(
                scenario=small_scenario,
                algorithms=["grez-grec"],
                churn_spec=ChurnSpec(15, 15, 15),
                server_churn_spec=ServerChurnSpec(num_joins=1, num_leaves=1, capacity_drift=0.05),
                migration_cost=MigrationCostModel(cost_per_client=1.0),
                seed=7,
                policy=policy,
                policy_period=2 if policy == "every_k_epochs" else 0,
                backend=backend,
            )
            runs[backend] = simulator.run(num_epochs=4)
        for a, b in zip(runs["delta"], runs["rebuild"]):
            assert ChurnSimulator.records_equal(a, b)

    def test_static_server_spec_matches_no_server_spec(self, small_scenario):
        """An all-zero ServerChurnSpec replays the fixed-fleet RNG stream."""
        def run(**kwargs):
            return ChurnSimulator(
                scenario=small_scenario,
                algorithms=["grez-grec"],
                churn_spec=ChurnSpec(10, 10, 10),
                seed=9,
                **kwargs,
            ).run(num_epochs=2)

        assert run(server_churn_spec=None) == run(server_churn_spec=ServerChurnSpec())

    def test_fleet_size_tracks_churn(self, small_scenario):
        records = ChurnSimulator(
            scenario=small_scenario,
            algorithms=["grez-grec"],
            churn_spec=ChurnSpec(5, 5, 5),
            server_churn_spec=ServerChurnSpec(num_joins=1),
            seed=4,
        ).run(num_epochs=3)
        assert [r.num_servers_after for r in records] == [
            small_scenario.num_servers + 1 + e for e in range(3)
        ]

    def test_drift_only_epochs_keep_fleet_size(self, small_scenario):
        """Satellite edge case: all-servers-survive drift-only epochs."""
        records = ChurnSimulator(
            scenario=small_scenario,
            algorithms=["grez-grec"],
            churn_spec=ChurnSpec(5, 5, 5),
            server_churn_spec=ServerChurnSpec(capacity_drift=0.2),
            seed=4,
        ).run(num_epochs=3)
        assert all(r.num_servers_after == small_scenario.num_servers for r in records)
        # Drift alone forces no migrations under the incremental-free policy —
        # but re-execution may still move zones; just check the fields exist.
        assert all(r.zones_migrated >= 0 for r in records)


class TestMigrationInRecords:
    def test_incremental_policy_migrates_nothing_on_fixed_fleet(self, small_scenario):
        records = ChurnSimulator(
            scenario=small_scenario,
            algorithms=["grez-grec"],
            churn_spec=ChurnSpec(20, 20, 20),
            migration_cost=MigrationCostModel(cost_per_client=3.0),
            seed=2,
            policy="incremental",
        ).run(num_epochs=3)
        for record in records:
            assert record.zones_migrated == 0
            assert record.clients_migrated == 0
            assert record.migration_cost == 0.0

    def test_reexecute_policy_is_charged(self, small_scenario):
        records = ChurnSimulator(
            scenario=small_scenario,
            algorithms=["grez-grec"],
            churn_spec=ChurnSpec(40, 40, 40),
            migration_cost=MigrationCostModel(cost_per_client=1.0),
            seed=2,
            policy="reexecute",
        ).run(num_epochs=3)
        assert any(r.migration_cost > 0 for r in records)
        for record in records:
            assert record.migration_cost == float(record.clients_migrated)

    def test_migration_budget_demotes_reexecution(self, small_scenario):
        """A zero budget turns every re-execution into the incremental repair."""
        def run(budget):
            return ChurnSimulator(
                scenario=small_scenario,
                algorithms=["grez-grec"],
                churn_spec=ChurnSpec(30, 30, 30),
                migration_cost=MigrationCostModel(cost_per_client=1.0),
                seed=6,
                policy="reexecute",
                policy_migration_budget=budget,
            ).run(num_epochs=3)

        capped = run(0.0)
        for record in capped:
            assert record.zones_migrated == 0
            assert record.pqos_adopted == record.pqos_incremental
        uncapped = run(None)
        assert any(r.zones_migrated > 0 for r in uncapped)

    def test_migration_fields_in_csv_row(self, small_scenario):
        from repro.dynamics.engine import EpochRecord

        record = ChurnSimulator(
            scenario=small_scenario,
            algorithms=["grez-grec"],
            churn_spec=ChurnSpec(10, 10, 10),
            migration_cost=MigrationCostModel(cost_per_client=1.0),
            seed=0,
        ).run(1)[0]
        row = record.row()
        assert row[EpochRecord.FIELDS.index("zones_migrated")] == record.zones_migrated
        assert row[EpochRecord.FIELDS.index("clients_migrated")] == record.clients_migrated
        assert row[EpochRecord.FIELDS.index("migration_cost")] == record.migration_cost
        assert row[EpochRecord.FIELDS.index("num_servers_after")] == record.num_servers_after


class TestWarmStartZoneSweep:
    def test_sweep_with_zone_moves_allowed_and_never_worsens(self, small_instance):
        from repro.core.local_search import warm_start_refine

        start = registry_solve(small_instance, "ranz-virc", seed=0)
        result = warm_start_refine(
            small_instance, start, mode="sweep", consider_zone_moves=True
        )
        assert result.final_pqos >= result.initial_pqos

    def test_zone_sweep_recovers_evacuated_hotspot(self, tiny_instance):
        """A deliberately bad zone map is repaired by zone moves alone."""
        from repro.core.assignment import Assignment
        from repro.core.local_search import warm_start_refine

        # Host every zone on server 0 — zones 1 and 2 are 300 ms away.
        zone_to_server = np.zeros(tiny_instance.num_zones, dtype=np.int64)
        contacts = np.zeros(tiny_instance.num_clients, dtype=np.int64)
        bad = Assignment(zone_to_server=zone_to_server, contact_of_client=contacts)
        repaired = warm_start_refine(
            tiny_instance,
            bad,
            mode="sweep",
            consider_zone_moves=True,
            consider_contact_moves=False,
        )
        assert repaired.iterations > 0
        assert repaired.final_pqos > repaired.initial_pqos
        # Zones 1 and 2 must have been re-hosted off server 0.
        assert repaired.assignment.zone_to_server[1] == 1
        assert repaired.assignment.zone_to_server[2] == 2


class TestGrantRevokeGrantCycles:
    """Satellite: repeated capacity grant -> revoke -> grant on the same servers.

    The federation arbiter re-slices capacities every epoch, so the delta
    pipeline must round-trip capacities *exactly* (no drift accumulation) and
    keep the cached zone aggregates valid across arbitrarily many cycles.
    """

    def test_capacity_cycles_round_trip_exactly(self, small_instance):
        inst = small_instance
        identity = np.arange(inst.num_servers)
        no_joins = np.zeros((inst.num_clients, 0))
        base_caps = inst.server_capacities
        demands_cache = inst.zone_demands()  # warm the caches
        pops_cache = inst.zone_populations()

        current = inst
        for _cycle in range(4):
            granted = current.apply_server_delta(
                old_to_new=identity,
                join_delays=no_joins,
                server_server_delays=current.server_server_delays,
                server_capacities=base_caps * 2.0,
            )
            np.testing.assert_array_equal(granted.server_capacities, base_caps * 2.0)
            revoked = granted.apply_server_delta(
                old_to_new=identity,
                join_delays=no_joins,
                server_server_delays=granted.server_server_delays,
                server_capacities=base_caps,
            )
            # Exact round trip: the original capacity vector is restored
            # bit-for-bit, and the delay matrix never changed values.
            np.testing.assert_array_equal(revoked.server_capacities, base_caps)
            np.testing.assert_array_equal(
                revoked.client_server_delays, inst.client_server_delays
            )
            # Zone caches were carried through both deltas by identity.
            assert revoked.zone_demands() is demands_cache
            assert revoked.zone_populations() is pops_cache
            current = revoked

    def test_capacity_cycles_via_with_server_capacities(self, small_instance):
        """The O(m) fast path shares the delay matrix by identity too."""
        inst = small_instance
        base_caps = inst.server_capacities
        demands_cache = inst.zone_demands()
        current = inst
        for factor in (2.0, 0.5, 3.0):
            granted = current.with_server_capacities(base_caps * factor)
            assert granted.client_server_delays is inst.client_server_delays
            assert granted.server_server_delays is inst.server_server_delays
            assert granted.zone_demands() is demands_cache
            current = granted.with_server_capacities(base_caps)
            np.testing.assert_array_equal(current.server_capacities, base_caps)

    def test_with_server_capacities_validates(self, small_instance):
        with pytest.raises(ValueError, match="shape"):
            small_instance.with_server_capacities(np.ones(small_instance.num_servers + 1))
        with pytest.raises(ValueError, match="positive"):
            small_instance.with_server_capacities(
                np.zeros(small_instance.num_servers)
            )

    def test_join_leave_join_restores_fleet_exactly(self, small_scenario):
        """Granting a server, revoking it, granting again: scenario round trip."""
        topo_nodes = small_scenario.topology.num_nodes
        m = small_scenario.num_servers
        current = small_scenario
        for _cycle in range(3):
            join_batch = ServerChurnBatch(
                join_nodes=np.array([topo_nodes - 1]),
                join_capacities=np.array([25.0 * MBPS]),
            )
            grant = apply_server_churn(current.servers, join_batch)
            grown = current.apply_server_delta(grant)
            assert grown.num_servers == m + 1

            leave_batch = ServerChurnBatch(leave_indices=np.array([m]))
            revoke = apply_server_churn(grown.servers, leave_batch)
            shrunk = grown.apply_server_delta(revoke)
            assert shrunk.num_servers == m
            # The surviving fleet is exactly the original one.
            np.testing.assert_array_equal(shrunk.servers.nodes, small_scenario.servers.nodes)
            np.testing.assert_array_equal(
                shrunk.servers.capacities, small_scenario.servers.capacities
            )
            np.testing.assert_array_equal(
                shrunk.client_server_delays, small_scenario.client_server_delays
            )
            np.testing.assert_array_equal(
                shrunk.server_server_delays, small_scenario.server_server_delays
            )
            current = shrunk

    def test_instance_join_leave_join_cycles_keep_zone_caches(
        self, small_scenario, small_instance
    ):
        topo_nodes = small_scenario.topology.num_nodes
        m = small_instance.num_servers
        demands_cache = small_instance.zone_demands()
        pops_cache = small_instance.zone_populations()
        scenario, instance = small_scenario, small_instance
        for _cycle in range(3):
            join_batch = ServerChurnBatch(
                join_nodes=np.array([topo_nodes - 2]),
                join_capacities=np.array([30.0 * MBPS]),
            )
            grant = apply_server_churn(scenario.servers, join_batch)
            grown_scenario = scenario.apply_server_delta(grant)
            grown = instance.apply_server_delta(
                old_to_new=grant.old_to_new,
                join_delays=grown_scenario.client_server_delays[:, grant.new_server_indices],
                server_server_delays=grown_scenario.server_server_delays,
                server_capacities=grown_scenario.servers.capacities,
            )
            leave_batch = ServerChurnBatch(leave_indices=np.array([m]))
            revoke = apply_server_churn(grown_scenario.servers, leave_batch)
            scenario = grown_scenario.apply_server_delta(revoke)
            instance = grown.apply_server_delta(
                old_to_new=revoke.old_to_new,
                join_delays=scenario.client_server_delays[:, revoke.new_server_indices],
                server_server_delays=scenario.server_server_delays,
                server_capacities=scenario.servers.capacities,
            )
            np.testing.assert_array_equal(
                instance.server_capacities, small_instance.server_capacities
            )
            np.testing.assert_array_equal(
                instance.client_server_delays, small_instance.client_server_delays
            )
            # Zone caches survive every grant/revoke hop by identity.
            assert instance.zone_demands() is demands_cache
            assert instance.zone_populations() is pops_cache
