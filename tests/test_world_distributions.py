"""Tests for repro.world.distributions — client distribution models (paper Table 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.topology.hierarchical import HierarchicalParams, hierarchical_topology
from repro.world.distributions import (
    DISTRIBUTION_TYPES,
    DistributionSpec,
    distribution_type,
    sample_client_nodes,
    sample_client_zones,
    zone_weights,
)


@pytest.fixture(scope="module")
def topology():
    return hierarchical_topology(HierarchicalParams(num_as=5, routers_per_as=6), seed=0)


class TestDistributionSpec:
    def test_defaults(self):
        spec = DistributionSpec()
        assert spec.physical == "uniform" and spec.virtual == "uniform"
        assert spec.type_id == 0

    def test_from_type_round_trip(self):
        for type_id, (pw, vw) in DISTRIBUTION_TYPES.items():
            spec = DistributionSpec.from_type(type_id)
            assert (spec.physical, spec.virtual) == (pw, vw)
            assert spec.type_id == type_id

    def test_from_type_invalid(self):
        with pytest.raises(ValueError):
            DistributionSpec.from_type(7)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            DistributionSpec(physical="gaussian")
        with pytest.raises(ValueError):
            DistributionSpec(virtual="gaussian")

    def test_invalid_correlation(self):
        with pytest.raises(ValueError):
            DistributionSpec(correlation=1.2)

    def test_distribution_type_inverse(self):
        assert distribution_type("clustered", "clustered") == 3
        with pytest.raises(ValueError):
            distribution_type("uniform", "gaussian")


class TestZoneWeights:
    def test_uniform_all_ones(self):
        np.testing.assert_allclose(zone_weights(8, virtual="uniform"), 1.0)

    def test_clustered_has_hot_zones(self):
        weights = zone_weights(
            20, virtual="clustered", hot_zone_factor=10.0, hot_zone_fraction=0.1, seed=0
        )
        assert (weights == 10.0).sum() == 2
        assert (weights == 1.0).sum() == 18

    def test_at_least_one_hot_zone(self):
        weights = zone_weights(5, virtual="clustered", hot_zone_fraction=0.01, seed=0)
        assert (weights > 1.0).sum() >= 1

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            zone_weights(5, virtual="other")

    def test_invalid_zone_count(self):
        with pytest.raises(ValueError):
            zone_weights(0)


class TestSampleClientNodes:
    def test_uniform_range(self, topology):
        spec = DistributionSpec(physical="uniform")
        nodes = sample_client_nodes(topology, 200, spec, seed=1)
        assert nodes.size == 200
        assert nodes.max() < topology.num_nodes

    def test_clustered_concentrates(self, topology):
        spec = DistributionSpec(
            physical="clustered", physical_hotspots=2, physical_hotspot_fraction=0.9
        )
        nodes = sample_client_nodes(topology, 1000, spec, seed=1)
        counts = np.bincount(nodes, minlength=topology.num_nodes)
        assert np.sort(counts)[-2:].sum() > 700

    def test_deterministic(self, topology):
        spec = DistributionSpec()
        a = sample_client_nodes(topology, 50, spec, seed=4)
        b = sample_client_nodes(topology, 50, spec, seed=4)
        np.testing.assert_array_equal(a, b)


class TestSampleClientZones:
    def test_zone_range(self, topology):
        spec = DistributionSpec()
        nodes = sample_client_nodes(topology, 300, spec, seed=0)
        zones = sample_client_zones(topology, nodes, 10, spec, seed=0)
        assert zones.shape == (300,)
        assert zones.min() >= 0 and zones.max() < 10

    def test_clustered_virtual_world_has_hot_zones(self, topology):
        spec = DistributionSpec(virtual="clustered", hot_zone_factor=10.0, correlation=0.0)
        nodes = sample_client_nodes(topology, 2000, spec, seed=0)
        zones = sample_client_zones(topology, nodes, 20, spec, seed=0)
        counts = np.bincount(zones, minlength=20)
        # The 2 hot zones should hold far more than the 10 % a uniform split gives.
        assert np.sort(counts)[-2:].sum() > 0.3 * 2000

    def test_full_correlation_groups_regions(self, topology):
        spec = DistributionSpec(correlation=1.0)
        nodes = sample_client_nodes(topology, 1000, spec, seed=0)
        zones = sample_client_zones(topology, nodes, 10, spec, seed=0)
        regions = topology.node_domain[nodes]
        # With delta = 1 every client picks a zone from its region's preference
        # group, so the number of (region, zone) combinations is bounded by the
        # number of zones (each zone belongs to exactly one region's group).
        pairs = {(int(r), int(z)) for r, z in zip(regions, zones)}
        zones_per_region: dict[int, set[int]] = {}
        for r, z in pairs:
            zones_per_region.setdefault(r, set()).add(z)
        all_zone_sets = list(zones_per_region.values())
        for i, a in enumerate(all_zone_sets):
            for b in all_zone_sets[i + 1 :]:
                assert not (a & b), "regions must not share preferred zones at delta=1"

    def test_zero_correlation_spreads_regions(self, topology):
        spec = DistributionSpec(correlation=0.0)
        nodes = sample_client_nodes(topology, 2000, spec, seed=0)
        zones = sample_client_zones(topology, nodes, 10, spec, seed=0)
        counts = np.bincount(zones, minlength=10)
        # Uniform virtual world: every zone is populated.
        assert (counts > 0).all()

    def test_deterministic(self, topology):
        spec = DistributionSpec(correlation=0.5)
        nodes = sample_client_nodes(topology, 100, spec, seed=3)
        a = sample_client_zones(topology, nodes, 8, spec, seed=5)
        b = sample_client_zones(topology, nodes, 8, spec, seed=5)
        np.testing.assert_array_equal(a, b)
