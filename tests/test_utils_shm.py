"""Tests for repro.utils.shm — O(1)-picklable shared-memory array handles."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.utils.shm import SharedArray


class TestSharedArray:
    def test_round_trips_values_exactly(self):
        array = np.arange(60, dtype=np.float64).reshape(6, 10) * np.pi
        shared = SharedArray(array)
        try:
            np.testing.assert_array_equal(shared.as_array(), array)
            clone = pickle.loads(pickle.dumps(shared))
            np.testing.assert_array_equal(clone.as_array(), array)
        finally:
            shared.release()

    def test_pickle_is_o1_in_the_data(self):
        small = SharedArray(np.zeros((4, 4)))
        big = SharedArray(np.zeros((200, 200)))
        try:
            small_blob = len(pickle.dumps(small))
            big_blob = len(pickle.dumps(big))
            # 2500x more data, same-sized pickle (name + shape + dtype only).
            assert big_blob < small_blob + 32
            assert big_blob < big.nbytes / 100
        finally:
            small.release()
            big.release()

    def test_views_are_read_only(self):
        shared = SharedArray(np.ones(8))
        try:
            view = shared.as_array()
            with pytest.raises(ValueError):
                view[0] = 2.0
        finally:
            shared.release()

    def test_does_not_alias_the_source(self):
        source = np.ones(5)
        shared = SharedArray(source)
        try:
            source[0] = 99.0
            assert shared.as_array()[0] == 1.0
        finally:
            shared.release()

    def test_same_process_attach_is_cached(self):
        shared = SharedArray(np.arange(6, dtype=np.int64))
        try:
            blob = pickle.dumps(shared)
            first = pickle.loads(blob)
            second = pickle.loads(blob)
            assert first is second  # per-process attachment cache
            np.testing.assert_array_equal(first.as_array(), np.arange(6))
        finally:
            shared.release()

    def test_preserves_dtype_and_shape(self):
        for array in (
            np.zeros((3, 2, 4), dtype=np.float32),
            np.arange(7, dtype=np.int32),
            np.array([True, False, True]),
        ):
            shared = SharedArray(array)
            try:
                out = shared.as_array()
                assert out.shape == array.shape
                assert out.dtype == array.dtype
                np.testing.assert_array_equal(out, array)
            finally:
                shared.release()

    def test_empty_array(self):
        shared = SharedArray(np.zeros((0, 5)))
        try:
            assert shared.as_array().shape == (0, 5)
            assert pickle.loads(pickle.dumps(shared)).as_array().size == 0
        finally:
            shared.release()
