"""Tests for repro.core.regret — the shared max-regret greedy machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.regret import max_regret_assign, regret_order


class TestRegretOrder:
    def test_highest_regret_first(self):
        # Item 0: best 10, second 9 → regret 1.  Item 1: best 10, second 2 → regret 8.
        desirability = np.array([[10.0, 10.0], [9.0, 2.0]])
        order = regret_order(desirability)
        np.testing.assert_array_equal(order, [1, 0])

    def test_ties_keep_input_order(self):
        desirability = np.array([[5.0, 5.0, 5.0], [1.0, 1.0, 1.0]])
        np.testing.assert_array_equal(regret_order(desirability), [0, 1, 2])

    def test_single_server_degenerates_to_input_order(self):
        desirability = np.array([[3.0, 9.0, 1.0]])
        np.testing.assert_array_equal(regret_order(desirability), [0, 1, 2])

    def test_empty_items(self):
        assert regret_order(np.zeros((3, 0))).size == 0

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            regret_order(np.zeros(4))


class TestMaxRegretAssign:
    def test_prefers_most_desirable_server(self):
        desirability = np.array([[0.0, -5.0], [-3.0, 0.0]])
        result = max_regret_assign(
            desirability, demands=np.ones(2), capacities=np.full(2, 10.0)
        )
        np.testing.assert_array_equal(result.item_to_server, [0, 1])
        assert not result.capacity_exceeded

    def test_capacity_forces_second_choice(self):
        # Both items prefer server 0, but it can hold only one of them.
        desirability = np.array([[0.0, 0.0], [-1.0, -1.0]])
        result = max_regret_assign(
            desirability, demands=np.array([6.0, 6.0]), capacities=np.array([10.0, 10.0])
        )
        assert sorted(result.item_to_server.tolist()) == [0, 1]
        assert not result.capacity_exceeded

    def test_least_loaded_fallback_flags_overload(self):
        desirability = np.array([[0.0], [-1.0]])
        result = max_regret_assign(
            desirability, demands=np.array([50.0]), capacities=np.array([10.0, 20.0])
        )
        assert result.capacity_exceeded
        # Falls back to the server with the most residual capacity.
        assert result.item_to_server[0] == 1

    def test_skip_fallback_leaves_unassigned(self):
        desirability = np.array([[0.0], [-1.0]])
        result = max_regret_assign(
            desirability,
            demands=np.array([50.0]),
            capacities=np.array([10.0, 20.0]),
            fallback="skip",
        )
        assert result.item_to_server[0] == -1
        assert not result.capacity_exceeded

    def test_initial_loads_respected(self):
        desirability = np.array([[0.0], [-1.0]])
        result = max_regret_assign(
            desirability,
            demands=np.array([5.0]),
            capacities=np.array([10.0, 10.0]),
            initial_loads=np.array([8.0, 0.0]),
        )
        assert result.item_to_server[0] == 1

    def test_loads_returned(self):
        desirability = np.array([[0.0, 0.0], [-1.0, -1.0]])
        result = max_regret_assign(
            desirability, demands=np.array([2.0, 3.0]), capacities=np.array([10.0, 10.0])
        )
        assert result.loads.sum() == pytest.approx(5.0)

    def test_recompute_matches_static_on_easy_instance(self):
        rng = np.random.default_rng(0)
        desirability = -rng.random((3, 6))
        demands = np.ones(6)
        capacities = np.full(3, 100.0)
        static = max_regret_assign(desirability, demands, capacities, recompute=False)
        dynamic = max_regret_assign(desirability, demands, capacities, recompute=True)
        # With ample capacity both variants give every item its best server.
        np.testing.assert_array_equal(static.item_to_server, dynamic.item_to_server)

    def test_all_items_assigned_with_ample_capacity(self):
        rng = np.random.default_rng(1)
        desirability = -rng.random((4, 20))
        result = max_regret_assign(
            desirability, demands=np.ones(20), capacities=np.full(4, 100.0)
        )
        assert (result.item_to_server >= 0).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            max_regret_assign(np.zeros(3), np.ones(3), np.ones(2))
        with pytest.raises(ValueError):
            max_regret_assign(np.zeros((2, 3)), np.ones(2), np.ones(2))
        with pytest.raises(ValueError):
            max_regret_assign(np.zeros((2, 3)), np.ones(3), np.ones(3))

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            max_regret_assign(np.zeros((2, 1)), np.array([-1.0]), np.ones(2))

    def test_unknown_fallback_rejected(self):
        with pytest.raises(ValueError):
            max_regret_assign(np.zeros((2, 1)), np.ones(1), np.ones(2), fallback="explode")

    def test_bad_initial_loads_shape(self):
        with pytest.raises(ValueError):
            max_regret_assign(
                np.zeros((2, 1)), np.ones(1), np.ones(2), initial_loads=np.ones(3)
            )
