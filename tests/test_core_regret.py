"""Tests for repro.core.regret — the shared max-regret greedy machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.regret import BACKENDS, DEFAULT_BACKEND, max_regret_assign, regret_order


class TestRegretOrder:
    def test_highest_regret_first(self):
        # Item 0: best 10, second 9 → regret 1.  Item 1: best 10, second 2 → regret 8.
        desirability = np.array([[10.0, 10.0], [9.0, 2.0]])
        order = regret_order(desirability)
        np.testing.assert_array_equal(order, [1, 0])

    def test_ties_keep_input_order(self):
        desirability = np.array([[5.0, 5.0, 5.0], [1.0, 1.0, 1.0]])
        np.testing.assert_array_equal(regret_order(desirability), [0, 1, 2])

    def test_single_server_degenerates_to_input_order(self):
        desirability = np.array([[3.0, 9.0, 1.0]])
        np.testing.assert_array_equal(regret_order(desirability), [0, 1, 2])

    def test_empty_items(self):
        assert regret_order(np.zeros((3, 0))).size == 0

    def test_requires_matrix(self):
        with pytest.raises(ValueError):
            regret_order(np.zeros(4))


class TestMaxRegretAssign:
    def test_prefers_most_desirable_server(self):
        desirability = np.array([[0.0, -5.0], [-3.0, 0.0]])
        result = max_regret_assign(
            desirability, demands=np.ones(2), capacities=np.full(2, 10.0)
        )
        np.testing.assert_array_equal(result.item_to_server, [0, 1])
        assert not result.capacity_exceeded

    def test_capacity_forces_second_choice(self):
        # Both items prefer server 0, but it can hold only one of them.
        desirability = np.array([[0.0, 0.0], [-1.0, -1.0]])
        result = max_regret_assign(
            desirability, demands=np.array([6.0, 6.0]), capacities=np.array([10.0, 10.0])
        )
        assert sorted(result.item_to_server.tolist()) == [0, 1]
        assert not result.capacity_exceeded

    def test_least_loaded_fallback_flags_overload(self):
        desirability = np.array([[0.0], [-1.0]])
        result = max_regret_assign(
            desirability, demands=np.array([50.0]), capacities=np.array([10.0, 20.0])
        )
        assert result.capacity_exceeded
        # Falls back to the server with the most residual capacity.
        assert result.item_to_server[0] == 1

    def test_skip_fallback_leaves_unassigned(self):
        desirability = np.array([[0.0], [-1.0]])
        result = max_regret_assign(
            desirability,
            demands=np.array([50.0]),
            capacities=np.array([10.0, 20.0]),
            fallback="skip",
        )
        assert result.item_to_server[0] == -1
        assert not result.capacity_exceeded

    def test_initial_loads_respected(self):
        desirability = np.array([[0.0], [-1.0]])
        result = max_regret_assign(
            desirability,
            demands=np.array([5.0]),
            capacities=np.array([10.0, 10.0]),
            initial_loads=np.array([8.0, 0.0]),
        )
        assert result.item_to_server[0] == 1

    def test_loads_returned(self):
        desirability = np.array([[0.0, 0.0], [-1.0, -1.0]])
        result = max_regret_assign(
            desirability, demands=np.array([2.0, 3.0]), capacities=np.array([10.0, 10.0])
        )
        assert result.loads.sum() == pytest.approx(5.0)

    def test_recompute_matches_static_on_easy_instance(self):
        rng = np.random.default_rng(0)
        desirability = -rng.random((3, 6))
        demands = np.ones(6)
        capacities = np.full(3, 100.0)
        static = max_regret_assign(desirability, demands, capacities, recompute=False)
        dynamic = max_regret_assign(desirability, demands, capacities, recompute=True)
        # With ample capacity both variants give every item its best server.
        np.testing.assert_array_equal(static.item_to_server, dynamic.item_to_server)

    def test_all_items_assigned_with_ample_capacity(self):
        rng = np.random.default_rng(1)
        desirability = -rng.random((4, 20))
        result = max_regret_assign(
            desirability, demands=np.ones(20), capacities=np.full(4, 100.0)
        )
        assert (result.item_to_server >= 0).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            max_regret_assign(np.zeros(3), np.ones(3), np.ones(2))
        with pytest.raises(ValueError):
            max_regret_assign(np.zeros((2, 3)), np.ones(2), np.ones(2))
        with pytest.raises(ValueError):
            max_regret_assign(np.zeros((2, 3)), np.ones(3), np.ones(3))

    def test_negative_demand_rejected(self):
        with pytest.raises(ValueError):
            max_regret_assign(np.zeros((2, 1)), np.array([-1.0]), np.ones(2))

    def test_unknown_fallback_rejected(self):
        with pytest.raises(ValueError):
            max_regret_assign(np.zeros((2, 1)), np.ones(1), np.ones(2), fallback="explode")

    def test_bad_initial_loads_shape(self):
        with pytest.raises(ValueError):
            max_regret_assign(
                np.zeros((2, 1)), np.ones(1), np.ones(2), initial_loads=np.ones(3)
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            max_regret_assign(np.zeros((2, 1)), np.ones(1), np.ones(2), backend="gpu")

    def test_default_backend_is_registered(self):
        assert DEFAULT_BACKEND in BACKENDS


class TestDynamicRegret:
    """Behaviour of the feasibility-aware ``recompute=True`` mode (both backends)."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_urgent_item_placed_before_higher_static_regret(self, backend):
        # Item 0 has the larger static regret, but item 1's only feasible
        # server is server 0 (its demand exceeds server 1's capacity), which
        # makes it urgent under dynamic regret: it claims server 0 first and
        # item 0 falls back to its second choice.
        desirability = np.array([[0.0, 0.0], [-10.0, -1.0]])
        demands = np.array([2.0, 3.0])
        capacities = np.array([3.0, 2.0])
        static = max_regret_assign(
            desirability, demands, capacities, recompute=False, backend=backend
        )
        dynamic = max_regret_assign(
            desirability, demands, capacities, recompute=True, backend=backend
        )
        np.testing.assert_array_equal(static.item_to_server, [0, 1])
        assert static.capacity_exceeded  # item 1 fits nowhere after item 0
        np.testing.assert_array_equal(dynamic.item_to_server, [1, 0])
        assert not dynamic.capacity_exceeded

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_items_without_feasible_server_fall_back_last(self, backend):
        desirability = np.array([[0.0, -1.0], [-2.0, 0.0]])
        result = max_regret_assign(
            desirability,
            demands=np.array([50.0, 1.0]),
            capacities=np.array([10.0, 10.0]),
            recompute=True,
            fallback="skip",
            backend=backend,
        )
        assert result.item_to_server[0] == -1
        assert result.item_to_server[1] == 1
        assert not result.capacity_exceeded


def _random_problem(rng):
    """One randomized max-regret problem, biased toward capacity contention."""
    num_servers = int(rng.integers(1, 8))
    num_items = int(rng.integers(0, 40))
    desirability = -rng.random((num_servers, num_items)) * rng.choice([1.0, 10.0])
    if rng.random() < 0.3:
        desirability = np.round(desirability, 1)  # force desirability/regret ties
    if rng.random() < 0.5:
        demands = rng.random(num_items) * 5.0
    else:
        demands = rng.integers(1, 6, num_items).astype(np.float64)
    tightness = float(rng.choice([0.3, 0.6, 1.0, 3.0]))
    capacities = rng.random(num_servers) * demands.sum() * tightness / num_servers + 0.1
    initial_loads = rng.random(num_servers) * capacities * float(rng.choice([0.0, 0.5]))
    return desirability, demands, capacities, initial_loads


class TestBackendEquivalence:
    """The vectorized backend must be bit-identical to the loop spec."""

    @pytest.mark.parametrize("fallback", ["least_loaded", "skip"])
    @pytest.mark.parametrize("recompute", [False, True])
    def test_randomized_instances(self, fallback, recompute):
        rng = np.random.default_rng(20260728)
        for _ in range(60):
            desirability, demands, capacities, initial_loads = _random_problem(rng)
            results = {
                backend: max_regret_assign(
                    desirability,
                    demands,
                    capacities,
                    initial_loads=initial_loads,
                    fallback=fallback,
                    recompute=recompute,
                    backend=backend,
                )
                for backend in BACKENDS
            }
            loop, vec = results["loop"], results["vectorized"]
            np.testing.assert_array_equal(vec.item_to_server, loop.item_to_server)
            np.testing.assert_array_equal(vec.loads, loop.loads)  # bit-wise, not approx
            assert vec.capacity_exceeded == loop.capacity_exceeded

    @pytest.mark.parametrize("recompute", [False, True])
    @pytest.mark.parametrize("fallback", ["least_loaded", "skip"])
    @pytest.mark.parametrize(
        "shape", [(1, 0), (3, 0), (1, 5), (1, 1), (4, 1)], ids=str
    )
    def test_degenerate_shapes(self, shape, fallback, recompute):
        num_servers, num_items = shape
        rng = np.random.default_rng(7)
        desirability = -rng.random((num_servers, num_items))
        demands = rng.random(num_items) * 4.0
        capacities = rng.random(num_servers) * 3.0 + 0.1
        results = {
            backend: max_regret_assign(
                desirability,
                demands,
                capacities,
                fallback=fallback,
                recompute=recompute,
                backend=backend,
            )
            for backend in BACKENDS
        }
        loop, vec = results["loop"], results["vectorized"]
        np.testing.assert_array_equal(vec.item_to_server, loop.item_to_server)
        np.testing.assert_array_equal(vec.loads, loop.loads)
        assert vec.capacity_exceeded == loop.capacity_exceeded

    def test_single_server_saturation(self):
        # Everything funnels through one server until it overflows.
        desirability = -np.arange(12.0)[None, :]
        demands = np.full(12, 2.0)
        for fallback in ("least_loaded", "skip"):
            for recompute in (False, True):
                results = [
                    max_regret_assign(
                        desirability,
                        demands,
                        np.array([7.0]),
                        fallback=fallback,
                        recompute=recompute,
                        backend=backend,
                    )
                    for backend in BACKENDS
                ]
                np.testing.assert_array_equal(
                    results[0].item_to_server, results[1].item_to_server
                )
                np.testing.assert_array_equal(results[0].loads, results[1].loads)
