"""Tests for repro.baselines — related-work comparison baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.central import best_central_node, centralize_servers
from repro.baselines.load_balance import assign_zones_load_balanced, solve_load_balance
from repro.baselines.nearest_server import solve_nearest_server
from repro.core.problem import CAPInstance
from repro.core.two_phase import solve_cap
from repro.core.validation import validate_assignment


class TestLoadBalance:
    def test_valid_assignment(self, small_instance):
        assignment = solve_load_balance(small_instance)
        assert assignment.algorithm == "load-balance"
        assert validate_assignment(small_instance, assignment).ok

    def test_no_forwarding(self, small_instance):
        assignment = solve_load_balance(small_instance)
        assert not assignment.forwarded_mask(small_instance).any()

    def test_balances_relative_load(self, small_instance):
        zones = assign_zones_load_balanced(small_instance)
        loads = zones.server_zone_loads(small_instance)
        utilisation = loads / small_instance.server_capacities
        # Delay-oblivious LPT keeps per-server utilisation within a modest band.
        assert utilisation.max() - utilisation.min() < 0.8

    def test_delay_oblivious(self, tiny_instance):
        doubled = tiny_instance.with_delays(
            client_server_delays=2 * tiny_instance.client_server_delays
        )
        a = assign_zones_load_balanced(tiny_instance)
        b = assign_zones_load_balanced(doubled)
        np.testing.assert_array_equal(a.zone_to_server, b.zone_to_server)

    def test_usually_worse_than_grez_on_interactivity(self, small_instance):
        balanced = solve_load_balance(small_instance)
        greedy = solve_cap(small_instance, "grez-grec", seed=0)
        assert greedy.pqos(small_instance) >= balanced.pqos(small_instance)


class TestNearestServer:
    def test_valid_assignment(self, small_instance):
        assignment = solve_nearest_server(small_instance)
        assert assignment.algorithm == "nearest-server"
        assert validate_assignment(small_instance, assignment).ok

    def test_tiny_instance_gets_dedicated_servers(self, tiny_instance):
        assignment = solve_nearest_server(tiny_instance)
        np.testing.assert_array_equal(assignment.zone_to_server[:3], [0, 1, 2])
        assert assignment.pqos(tiny_instance) >= 6 / 8

    def test_contacts_within_capacity(self, small_instance):
        assignment = solve_nearest_server(small_instance)
        assert assignment.is_capacity_feasible(small_instance)

    def test_delay_aware_beats_load_balance(self, small_instance):
        nearest = solve_nearest_server(small_instance)
        balanced = solve_load_balance(small_instance)
        assert nearest.pqos(small_instance) >= balanced.pqos(small_instance)


class TestCentralized:
    def test_best_central_node_in_range(self, small_scenario):
        node = best_central_node(small_scenario)
        assert 0 <= node < small_scenario.topology.num_nodes

    def test_criterion_validation(self, small_scenario):
        with pytest.raises(ValueError):
            best_central_node(small_scenario, criterion="median")

    def test_centralize_colocates_all_servers(self, small_scenario):
        central = centralize_servers(small_scenario)
        assert np.unique(central.servers.nodes).size == 1
        np.testing.assert_allclose(central.server_server_delays, 0.0)
        # Client sees the same delay to every server.
        spread = central.client_server_delays.max(axis=1) - central.client_server_delays.min(
            axis=1
        )
        np.testing.assert_allclose(spread, 0.0)

    def test_centralize_preserves_capacities_and_population(self, small_scenario):
        central = centralize_servers(small_scenario)
        np.testing.assert_allclose(
            central.servers.capacities, small_scenario.servers.capacities
        )
        assert central.population is small_scenario.population

    def test_explicit_node(self, small_scenario):
        central = centralize_servers(small_scenario, node=3)
        assert (central.servers.nodes == 3).all()
        with pytest.raises(ValueError):
            centralize_servers(small_scenario, node=10**6)

    def test_distributed_beats_centralized_interactivity(self, small_scenario):
        # The paper's motivation: a single-site deployment hurts far-away clients.
        central = centralize_servers(small_scenario)
        instance = CAPInstance.from_scenario(small_scenario)
        central_instance = CAPInstance.from_scenario(central)
        distributed = solve_cap(instance, "grez-grec", seed=0)
        centralized = solve_cap(central_instance, "grez-grec", seed=0)
        assert distributed.pqos(instance) >= centralized.pqos(central_instance) - 0.05
