"""Tests for the repro-dve command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out.lower()

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro-dve" in capsys.readouterr().out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestListCommand:
    def test_lists_experiments_and_solvers(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out
        assert "grez-grec" in out
        assert "optimal" in out


class TestSolveCommand:
    def test_solve_small_config(self, capsys):
        code = main(
            [
                "solve",
                "--config",
                "4s-8z-80c-60cp",
                "--algorithms",
                "grez-grec",
                "ranz-virc",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "4s-8z-80c-60cp" in out
        assert "grez-grec" in out and "ranz-virc" in out

    def test_solve_with_detail_and_delay_bound(self, capsys):
        code = main(
            [
                "solve",
                "--config",
                "4s-8z-80c-60cp",
                "--algorithms",
                "grez-virc",
                "--delay-bound-ms",
                "200",
                "--detail",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "forwarded_fraction" in out

    def test_solve_invalid_config_label(self):
        with pytest.raises(ValueError):
            main(["solve", "--config", "not-a-label"])


class TestExperimentCommand:
    def test_runs_figure5_quickly(self, capsys, monkeypatch):
        # Shrink the experiment through its own keyword interface by patching the
        # registry entry's runner with smaller defaults.
        from repro.experiments import registry as reg

        spec = reg.get_experiment("figure5")

        def tiny_run(num_runs=1, seed=0):
            return spec.run(
                label="5s-15z-200c-100cp",
                correlations=[0.5],
                algorithms=["grez-virc"],
                num_runs=num_runs,
                seed=seed,
            )

        monkeypatch.setitem(
            reg.EXPERIMENTS,
            "figure5",
            reg.ExperimentSpec(
                experiment_id="figure5",
                paper_artifact=spec.paper_artifact,
                description=spec.description,
                run=tiny_run,
                format=spec.format,
            ),
        )
        assert main(["experiment", "figure5", "--runs", "1", "--seed", "0"]) == 0
        assert "Figure 5" in capsys.readouterr().out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])


class TestSimulateCommand:
    SMALL = ["--config", "4s-8z-80c-60cp", "--joins", "8", "--leaves", "8", "--moves", "8"]

    def test_simulate_streams_summary(self, capsys):
        code = main(
            [
                "simulate",
                *self.SMALL,
                "--algorithms",
                "grez-grec",
                "--epochs",
                "3",
                "--policy",
                "warm_start",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "warm_start" in out
        assert "grez-grec" in out
        assert "Summary over 3 epochs" in out

    def test_simulate_writes_csv(self, capsys, tmp_path):
        path = tmp_path / "records.csv"
        code = main(
            [
                "simulate",
                *self.SMALL,
                "--algorithms",
                "grez-grec",
                "ranz-virc",
                "--epochs",
                "2",
                "--csv",
                str(path),
            ]
        )
        assert code == 0
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("run,epoch,algorithm,policy")
        assert len(lines) == 1 + 2 * 2  # header + epochs × algorithms
        assert "streamed to" in capsys.readouterr().out

    def test_simulate_multi_run_aggregates(self, capsys):
        code = main(
            [
                "simulate",
                *self.SMALL,
                "--algorithms",
                "grez-virc",
                "--epochs",
                "2",
                "--runs",
                "2",
                "--policy",
                "every_k_epochs",
                "--period",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "every_2_epochs" in out
        assert "2 run(s)" in out

    def test_simulate_elastic_flags(self, capsys, tmp_path):
        path = tmp_path / "elastic.csv"
        code = main(
            [
                "simulate",
                *self.SMALL,
                "--algorithms",
                "grez-grec",
                "--epochs",
                "2",
                "--server-churn",
                "1:1:0.05",
                "--migration-cost",
                "1.5",
                "--migration-budget",
                "50",
                "--csv",
                str(path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 joins, 1 leaves, 0.05 capacity drift" in out
        assert "migration cost / client" in out
        header = path.read_text().strip().splitlines()[0]
        assert "zones_migrated" in header
        assert "clients_migrated" in header
        assert "migration_cost" in header
        assert "num_servers_after" in header

    def test_simulate_rejects_bad_server_churn(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--server-churn", "nonsense"])
        with pytest.raises(SystemExit):
            main(["simulate", "--server-churn", "1:2:3:4"])
        with pytest.raises(SystemExit):
            main(["simulate", "--migration-cost", "-1"])

    def test_simulate_rejects_bad_epochs(self, capsys):
        assert main(["simulate", *self.SMALL, "--epochs", "0"]) == 2
        assert "--epochs" in capsys.readouterr().err

    def test_simulate_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["simulate", "--policy", "nonsense"])

    def test_simulate_backend_rebuild_matches_delta(self, tmp_path):
        def run_to_csv(backend):
            path = tmp_path / f"{backend}.csv"
            args = [
                "simulate",
                *self.SMALL,
                "--algorithms",
                "grez-grec",
                "--epochs",
                "2",
                "--seed",
                "5",
                "--backend",
                backend,
                "--csv",
                str(path),
            ]
            assert main(args) == 0
            return path.read_text()

        assert run_to_csv("delta") == run_to_csv("rebuild")

    def test_simulate_every_k_without_period_is_clean_error(self, capsys):
        assert main(["simulate", *self.SMALL, "--policy", "every_k_epochs"]) == 2
        assert "period" in capsys.readouterr().err

    def test_simulate_solver_backends_stream_identical_records(self, tmp_path):
        def run_to_csv(backend):
            path = tmp_path / f"solver-{backend}.csv"
            args = [
                "simulate",
                *self.SMALL,
                "--algorithms",
                "grez-grec",
                "--epochs",
                "2",
                "--seed",
                "5",
                "--solver-backend",
                backend,
                "--csv",
                str(path),
            ]
            assert main(args) == 0
            return path.read_text()

        assert run_to_csv("vectorized") == run_to_csv("loop")

    def test_simulate_rejects_unknown_solver_backend(self):
        with pytest.raises(SystemExit):
            main(["simulate", *self.SMALL, "--solver-backend", "gpu"])


class TestSimulateCsvHeaderRegression:
    """Satellite: the unsharded CSV stream is frozen — shard_id must not leak in."""

    #: The exact pre-federation column set, in order.  Changing this tuple is
    #: a breaking change for every consumer of `simulate --csv`.
    EXPECTED_HEADER = (
        "run,epoch,algorithm,policy,num_clients_before,num_clients_after,"
        "num_servers_after,pqos_before,pqos_after,pqos_reexecuted,pqos_incremental,"
        "pqos_adopted,utilization_before,utilization_reexecuted,utilization_adopted,"
        "zones_migrated,clients_migrated,migration_cost"
    )

    def test_epoch_record_fields_frozen(self):
        from repro.dynamics.engine import EpochRecord

        assert ",".join(["run", *EpochRecord.FIELDS]) == self.EXPECTED_HEADER
        assert "shard_id" not in EpochRecord.FIELDS
        assert EpochRecord.FEDERATED_FIELDS[0] == "shard_id"

    def test_simulate_csv_header_byte_identical(self, tmp_path):
        path = tmp_path / "frozen.csv"
        args = [
            "simulate",
            "--config",
            "4s-8z-80c-60cp",
            "--joins",
            "8",
            "--leaves",
            "8",
            "--moves",
            "8",
            "--algorithms",
            "grez-grec",
            "--epochs",
            "1",
            "--seed",
            "0",
            "--csv",
            str(path),
        ]
        assert main(args) == 0
        header = path.read_text().splitlines()[0]
        assert header == self.EXPECTED_HEADER


class TestFederateCommand:
    SMALL = [
        "--config",
        "4s-8z-80c-60cp",
        "--shards",
        "2",
        "--epochs",
        "2",
        "--seed",
        "1",
    ]

    def test_federate_streams_summary(self, capsys):
        assert main(["federate", *self.SMALL, "--arbiter", "proportional"]) == 0
        out = capsys.readouterr().out
        assert "Federated simulation" in out
        assert "proportional" in out
        assert "shard 0" in out and "shard 1" in out and "aggregate" in out
        assert "worst shard" in out

    def test_federate_writes_federated_csv(self, capsys, tmp_path):
        from repro.dynamics.engine import EpochRecord

        path = tmp_path / "fed.csv"
        assert main(["federate", *self.SMALL, "--csv", str(path)]) == 0
        lines = path.read_text().strip().splitlines()
        assert lines[0] == ",".join(["run", *EpochRecord.FEDERATED_FIELDS])
        # 2 epochs x (2 shards + 1 aggregate) x 1 algorithm.
        assert len(lines) == 1 + 2 * 3
        shard_ids = [line.split(",")[1] for line in lines[1:]]
        assert set(shard_ids) == {"0", "1", "-1"}

    def test_federate_arbiters_and_weights(self, capsys, tmp_path):
        for arbiter in ("static", "regret"):
            assert (
                main(
                    [
                        "federate",
                        *self.SMALL,
                        "--arbiter",
                        arbiter,
                        "--shard-weights",
                        "3,1",
                        "--migration-budget",
                        "20",
                    ]
                )
                == 0
            )

    def test_federate_rejects_bad_arguments(self, capsys):
        assert main(["federate", *self.SMALL, "--epochs", "0"]) == 2
        assert main(["federate", "--shards", "0"]) == 2
        assert main(["federate", *self.SMALL, "--shard-weights", "1,2,3"]) == 2
        with pytest.raises(SystemExit):
            main(["federate", *self.SMALL, "--arbiter", "nonsense"])
        with pytest.raises(SystemExit):
            main(["federate", *self.SMALL, "--shard-weights", "1,-2"])

    def test_federate_multi_run_matches_serial(self, tmp_path):
        def run_to_csv(workers):
            path = tmp_path / f"fed-w{workers or 0}.csv"
            args = [
                "federate",
                *self.SMALL,
                "--runs",
                "2",
                "--csv",
                str(path),
            ]
            if workers:
                args += ["--workers", str(workers)]
            assert main(args) == 0
            return path.read_text()

        assert run_to_csv(None) == run_to_csv(2)

    def test_federate_rejects_bad_min_slice(self):
        for value in ("0", "1.5", "-0.1"):
            with pytest.raises(SystemExit):
                main(["federate", *self.SMALL, "--min-slice", value])

    def test_federate_shard_workers_stream_identical_csv(self, tmp_path):
        def run_to_csv(shard_workers):
            path = tmp_path / f"fed-sw{shard_workers or 'serial'}.csv"
            args = ["federate", *self.SMALL, "--csv", str(path)]
            if shard_workers:
                args += ["--shard-workers", str(shard_workers)]
            assert main(args) == 0
            return path.read_text()

        serial = run_to_csv(None)
        assert run_to_csv(2) == serial
        assert run_to_csv(0) == serial  # 0 = all CPUs

    def test_federate_shard_workers_in_summary(self, capsys):
        assert main(["federate", *self.SMALL, "--shard-workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "shard workers" in out

    def test_federate_profile_prints_shard_runtime(self, capsys):
        assert main(["federate", *self.SMALL, "--shard-workers", "2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Shard runtime" in out
        assert "barrier wait" in out
        assert "arbiter decisions" in out
        assert "all shards" in out

    def test_federate_profile_serial_also_works(self, capsys):
        assert main(["federate", *self.SMALL, "--profile"]) == 0
        out = capsys.readouterr().out
        assert "Shard runtime" in out

    def test_federate_profile_multi_run_is_ignored_with_note(self, capsys):
        assert main(["federate", *self.SMALL, "--runs", "2", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "--profile" in out
        assert "Shard runtime" not in out

    def test_federate_rejects_bad_shard_workers(self):
        with pytest.raises(SystemExit):
            main(["federate", *self.SMALL, "--shard-workers", "-3"])

    def test_experiment_federation_forwards_shard_workers(self, capsys, monkeypatch):
        import dataclasses

        from repro.experiments import registry as reg

        spec = reg.get_experiment("federation")
        received = {}

        def tiny_run(num_runs=1, seed=0, workers=None, shard_workers=None):
            received["shard_workers"] = shard_workers
            return spec.run(
                label="4s-8z-80c-60cp",
                num_shards=2,
                num_epochs=2,
                arbiters=["proportional"],
                num_runs=num_runs,
                seed=seed,
                shard_workers=shard_workers,
            )

        monkeypatch.setitem(
            reg.EXPERIMENTS, "federation", dataclasses.replace(spec, run=tiny_run)
        )
        assert main(["experiment", "federation", "--runs", "1", "--shard-workers", "2"]) == 0
        assert received["shard_workers"] == 2
        assert "proportional" in capsys.readouterr().out

    def test_experiment_without_shards_notes_ignored_shard_workers(self, capsys, monkeypatch):
        import dataclasses

        from repro.experiments import registry as reg

        spec = reg.get_experiment("table1")

        def fake_run(**kwargs):
            assert "shard_workers" not in kwargs
            return "stub result"

        monkeypatch.setitem(
            reg.EXPERIMENTS,
            "table1",
            dataclasses.replace(spec, run=fake_run, format=lambda result: result),
        )
        assert main(["experiment", "table1", "--runs", "1", "--shard-workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "--shard-workers ignored" in out
        assert "stub result" in out
