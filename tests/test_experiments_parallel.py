"""Determinism contract of the parallel replication engine.

The headline guarantee: for the same seed, ``run_replications`` produces
bit-identical per-run observations no matter how many worker processes
execute the runs (only ``runtime_seconds``, a wall-clock measurement, is
exempt).  The same holds for the dynamics experiment's per-run loop.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.baselines  # noqa: F401
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ReplicatedResult, run_replications
from repro.experiments.table3 import run_table3
from repro.measurement.estimators import idmaps_estimator
from tests.conftest import make_small_config

ALGORITHMS = ["ranz-virc", "grez-grec"]


def _assert_identical_observations(a: ReplicatedResult, b: ReplicatedResult) -> None:
    assert a.algorithms() == b.algorithms()
    for name in a.algorithms():
        obs_a, obs_b = a.observations[name], b.observations[name]
        assert len(obs_a) == len(obs_b) == a.num_runs
        for run_a, run_b in zip(obs_a, obs_b):
            assert run_a.pqos == run_b.pqos
            assert run_a.utilization == run_b.utilization
            assert run_a.capacity_exceeded == run_b.capacity_exceeded
            if run_a.delays is None:
                assert run_b.delays is None
            else:
                np.testing.assert_array_equal(run_a.delays, run_b.delays)


class TestParallelDeterminism:
    def test_workers_4_bit_identical_to_serial(self):
        config = make_small_config(num_clients=60, num_zones=6)
        kwargs = dict(
            num_runs=4, seed=11, collect_delays=True, keep_observations=True
        )
        serial = run_replications(config, ALGORITHMS, workers=1, **kwargs)
        parallel = run_replications(config, ALGORITHMS, workers=4, **kwargs)
        _assert_identical_observations(serial, parallel)
        for name in ALGORITHMS:
            assert serial.pqos(name) == parallel.pqos(name)
            assert serial.utilization(name) == parallel.utilization(name)

    def test_workers_auto_matches_serial(self):
        config = make_small_config(num_clients=50, num_zones=5)
        serial = run_replications(
            config, ["grez-grec"], num_runs=3, seed=4, keep_observations=True
        )
        auto = run_replications(
            config, ["grez-grec"], num_runs=3, seed=4, keep_observations=True, workers=0
        )
        _assert_identical_observations(serial, auto)

    def test_estimator_and_shared_topology_survive_pickling(self):
        config = make_small_config(num_clients=50, num_zones=5)
        kwargs = dict(
            num_runs=3,
            seed=2,
            estimator=idmaps_estimator(),
            share_topology=True,
            keep_observations=True,
        )
        serial = run_replications(config, ["grez-grec"], **kwargs)
        parallel = run_replications(config, ["grez-grec"], workers=3, **kwargs)
        _assert_identical_observations(serial, parallel)

    def test_cdf_aggregation_identical(self):
        config = make_small_config(num_clients=50, num_zones=5)
        grid = np.linspace(0, 500, 11)
        serial = run_replications(
            config, ["grez-grec"], num_runs=2, seed=0, collect_delays=True, cdf_grid=grid
        )
        parallel = run_replications(
            config,
            ["grez-grec"],
            num_runs=2,
            seed=0,
            collect_delays=True,
            cdf_grid=grid,
            workers=2,
        )
        np.testing.assert_array_equal(
            serial.summaries["grez-grec"].delay_cdf.values,
            parallel.summaries["grez-grec"].delay_cdf.values,
        )

    def test_negative_workers_rejected(self):
        config = make_small_config(num_clients=40, num_zones=4)
        with pytest.raises(ValueError):
            run_replications(config, ["grez-grec"], num_runs=2, seed=0, workers=-2)

    def test_table3_parallel_matches_serial(self):
        serial = run_table3(label="5s-15z-200c-100cp", num_runs=2, seed=3)
        parallel = run_table3(label="5s-15z-200c-100cp", num_runs=2, seed=3, workers=2)
        for name in serial.algorithms:
            assert serial.before[name].mean == parallel.before[name].mean
            assert serial.after[name].mean == parallel.after[name].mean
            assert serial.executed[name].mean == parallel.executed[name].mean
            assert serial.incremental[name].mean == parallel.incremental[name].mean


class TestExperimentConfig:
    def test_run_kwargs_includes_workers_when_set(self):
        cfg = ExperimentConfig(num_runs=5, seed=7, workers=4)
        assert cfg.run_kwargs() == {"num_runs": 5, "seed": 7, "workers": 4}

    def test_run_kwargs_omits_unset_workers(self):
        cfg = ExperimentConfig(num_runs=5, seed=7)
        assert cfg.run_kwargs() == {"num_runs": 5, "seed": 7}

    def test_run_kwargs_omits_unsupported_workers(self):
        cfg = ExperimentConfig(num_runs=5, seed=7, workers=4)
        assert cfg.run_kwargs(supports_workers=False) == {"num_runs": 5, "seed": 7}

    def test_run_kwargs_includes_solver_backend_when_set(self):
        cfg = ExperimentConfig(num_runs=5, seed=7, solver_backend="loop")
        assert cfg.run_kwargs() == {"num_runs": 5, "seed": 7, "solver_backend": "loop"}
        # solver_backend is orthogonal to the workers knob.
        assert cfg.run_kwargs(supports_workers=False) == {
            "num_runs": 5,
            "seed": 7,
            "solver_backend": "loop",
        }

    def test_run_kwargs_omits_unset_solver_backend(self):
        assert "solver_backend" not in ExperimentConfig(num_runs=2).run_kwargs()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_runs=0)
        with pytest.raises(ValueError):
            ExperimentConfig(workers=-1)
        with pytest.raises(ValueError):
            ExperimentConfig(solver_backend="gpu")
