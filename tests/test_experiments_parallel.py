"""Determinism contract of the parallel replication engine.

The headline guarantee: for the same seed, ``run_replications`` produces
bit-identical per-run observations no matter how many worker processes
execute the runs (only ``runtime_seconds``, a wall-clock measurement, is
exempt).  The same holds for the dynamics experiment's per-run loop.
"""

from __future__ import annotations

import numpy as np
import pytest

import pickle

import repro.baselines  # noqa: F401
from repro.experiments.config import ExperimentConfig
from repro.experiments.runner import ReplicatedResult, _RunTask, run_replications
from repro.experiments.table3 import run_table3
from repro.measurement.estimators import idmaps_estimator
from repro.topology.brite import generate_topology
from repro.topology.delays import DelayModel
from tests.conftest import make_small_config

ALGORITHMS = ["ranz-virc", "grez-grec"]


def _assert_identical_observations(a: ReplicatedResult, b: ReplicatedResult) -> None:
    assert a.algorithms() == b.algorithms()
    for name in a.algorithms():
        obs_a, obs_b = a.observations[name], b.observations[name]
        assert len(obs_a) == len(obs_b) == a.num_runs
        for run_a, run_b in zip(obs_a, obs_b):
            assert run_a.pqos == run_b.pqos
            assert run_a.utilization == run_b.utilization
            assert run_a.capacity_exceeded == run_b.capacity_exceeded
            if run_a.delays is None:
                assert run_b.delays is None
            else:
                np.testing.assert_array_equal(run_a.delays, run_b.delays)


class TestParallelDeterminism:
    def test_workers_4_bit_identical_to_serial(self):
        config = make_small_config(num_clients=60, num_zones=6)
        kwargs = dict(
            num_runs=4, seed=11, collect_delays=True, keep_observations=True
        )
        serial = run_replications(config, ALGORITHMS, workers=1, **kwargs)
        parallel = run_replications(config, ALGORITHMS, workers=4, **kwargs)
        _assert_identical_observations(serial, parallel)
        for name in ALGORITHMS:
            assert serial.pqos(name) == parallel.pqos(name)
            assert serial.utilization(name) == parallel.utilization(name)

    def test_workers_auto_matches_serial(self):
        config = make_small_config(num_clients=50, num_zones=5)
        serial = run_replications(
            config, ["grez-grec"], num_runs=3, seed=4, keep_observations=True
        )
        auto = run_replications(
            config, ["grez-grec"], num_runs=3, seed=4, keep_observations=True, workers=0
        )
        _assert_identical_observations(serial, auto)

    def test_estimator_and_shared_topology_survive_pickling(self):
        config = make_small_config(num_clients=50, num_zones=5)
        kwargs = dict(
            num_runs=3,
            seed=2,
            estimator=idmaps_estimator(),
            share_topology=True,
            keep_observations=True,
        )
        serial = run_replications(config, ["grez-grec"], **kwargs)
        parallel = run_replications(config, ["grez-grec"], workers=3, **kwargs)
        _assert_identical_observations(serial, parallel)

    def test_cdf_aggregation_identical(self):
        config = make_small_config(num_clients=50, num_zones=5)
        grid = np.linspace(0, 500, 11)
        serial = run_replications(
            config, ["grez-grec"], num_runs=2, seed=0, collect_delays=True, cdf_grid=grid
        )
        parallel = run_replications(
            config,
            ["grez-grec"],
            num_runs=2,
            seed=0,
            collect_delays=True,
            cdf_grid=grid,
            workers=2,
        )
        np.testing.assert_array_equal(
            serial.summaries["grez-grec"].delay_cdf.values,
            parallel.summaries["grez-grec"].delay_cdf.values,
        )

    def test_negative_workers_rejected(self):
        config = make_small_config(num_clients=40, num_zones=4)
        with pytest.raises(ValueError):
            run_replications(config, ["grez-grec"], num_runs=2, seed=0, workers=-2)

    def test_table3_parallel_matches_serial(self):
        serial = run_table3(label="5s-15z-200c-100cp", num_runs=2, seed=3)
        parallel = run_table3(label="5s-15z-200c-100cp", num_runs=2, seed=3, workers=2)
        for name in serial.algorithms:
            assert serial.before[name].mean == parallel.before[name].mean
            assert serial.after[name].mean == parallel.after[name].mean
            assert serial.executed[name].mean == parallel.executed[name].mean
            assert serial.incremental[name].mean == parallel.incremental[name].mean


class TestZeroCopyDispatch:
    """``share_topology`` + parallel workers ship the RTT matrix via shared
    memory: per-task payloads are O(1) in the matrix and results stay
    bit-identical to the plain pickling path."""

    def test_shared_memory_path_bit_identical_to_serial(self):
        config = make_small_config(num_clients=50, num_zones=5)
        kwargs = dict(num_runs=4, seed=9, share_topology=True, keep_observations=True)
        serial = run_replications(config, ALGORITHMS, **kwargs)
        parallel = run_replications(config, ALGORITHMS, workers=3, **kwargs)
        _assert_identical_observations(serial, parallel)

    def test_shared_memory_path_matches_unshared_topology_reuse(self):
        # Serial share_topology reuses the model in-process (no shm); the shm
        # dispatch path must agree with it bit-for-bit.
        config = make_small_config(num_clients=40, num_zones=4)
        kwargs = dict(num_runs=3, seed=1, share_topology=True, keep_observations=True)
        a = run_replications(config, ["grez-grec"], workers=2, **kwargs)
        b = run_replications(config, ["grez-grec"], workers=3, **kwargs)
        _assert_identical_observations(a, b)

    def test_task_payload_o1_in_delay_matrix(self):
        config = make_small_config()
        model = DelayModel(
            generate_topology(config.topology, seed=0),
            max_rtt_ms=config.max_rtt_ms,
            server_mesh_factor=config.server_mesh_factor,
        )
        rtt_bytes = model.rtt.nbytes  # materialise before measuring

        def task_bytes():
            task = _RunTask(
                config=config,
                algorithms=("grez-grec",),
                rng=np.random.default_rng(0),
                estimator=None,
                delay_bound_ms=None,
                collect_delays=False,
                topology=model.topology,
                delay_model=model,
            )
            return len(pickle.dumps(task))

        plain = task_bytes()
        model.share_rtt()
        try:
            shared = task_bytes()
        finally:
            model.unshare_rtt()

        # Without shm the task ships the whole matrix; with shm it ships a
        # named handle — the matrix contributes nothing to the payload.
        assert plain - shared > 0.9 * rtt_bytes
        assert shared < rtt_bytes / 4
        # Releasing shared memory restores the plain pickling path.
        assert task_bytes() == plain


class TestExperimentConfig:
    def test_run_kwargs_includes_workers_when_set(self):
        cfg = ExperimentConfig(num_runs=5, seed=7, workers=4)
        assert cfg.run_kwargs() == {"num_runs": 5, "seed": 7, "workers": 4}

    def test_run_kwargs_omits_unset_workers(self):
        cfg = ExperimentConfig(num_runs=5, seed=7)
        assert cfg.run_kwargs() == {"num_runs": 5, "seed": 7}

    def test_run_kwargs_omits_unsupported_workers(self):
        cfg = ExperimentConfig(num_runs=5, seed=7, workers=4)
        assert cfg.run_kwargs(supports_workers=False) == {"num_runs": 5, "seed": 7}

    def test_run_kwargs_includes_solver_backend_when_set(self):
        cfg = ExperimentConfig(num_runs=5, seed=7, solver_backend="loop")
        assert cfg.run_kwargs() == {"num_runs": 5, "seed": 7, "solver_backend": "loop"}
        # solver_backend is orthogonal to the workers knob.
        assert cfg.run_kwargs(supports_workers=False) == {
            "num_runs": 5,
            "seed": 7,
            "solver_backend": "loop",
        }

    def test_run_kwargs_omits_unset_solver_backend(self):
        assert "solver_backend" not in ExperimentConfig(num_runs=2).run_kwargs()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_runs=0)
        with pytest.raises(ValueError):
            ExperimentConfig(workers=-1)
        with pytest.raises(ValueError):
            ExperimentConfig(solver_backend="gpu")
