"""Tests for repro.core.variants — first-fit / best-fit ablation strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import ZoneAssignment
from repro.core.costs import initial_cost_matrix
from repro.core.registry import solve as registry_solve, solver_names
from repro.core.validation import validate_assignment
from repro.core.variants import (
    assign_contacts_first_fit,
    assign_zones_best_fit,
    assign_zones_first_fit,
    register_variant_solvers,
)
from tests.conftest import make_tiny_instance


class TestFirstFitZones:
    def test_tiny_instance_obvious_choice(self, tiny_instance):
        result = assign_zones_first_fit(tiny_instance)
        np.testing.assert_array_equal(result.zone_to_server[:3], [0, 1, 2])
        assert result.zone_to_server[3] == 1  # only server 1 hosts zone 3 without misses
        assert result.algorithm == "grez-ff"
        assert not result.capacity_exceeded

    def test_respects_capacity(self, tight_instance):
        result = assign_zones_first_fit(tight_instance)
        loads = result.server_zone_loads(tight_instance)
        assert (loads <= tight_instance.server_capacities * (1 + 1e-6)).all()

    def test_overload_flagged(self, overloaded_instance):
        assert assign_zones_first_fit(overloaded_instance).capacity_exceeded

    def test_delay_awareness_matches_grez_cost_on_small_instances(self, small_instance):
        cost = initial_cost_matrix(small_instance)

        def total(zones: ZoneAssignment) -> float:
            return float(
                cost[zones.zone_to_server, np.arange(small_instance.num_zones)].sum()
            )

        from repro.core.grez import assign_zones_greedy

        ff_cost = total(assign_zones_first_fit(small_instance))
        regret_cost = total(assign_zones_greedy(small_instance))
        random_cost = total(
            __import__("repro.core.ranz", fromlist=["assign_zones_random"]).assign_zones_random(
                small_instance, seed=0
            )
        )
        # First-fit is delay-aware, so it is far better than random and close to
        # the regret-ordered heuristic.
        assert ff_cost <= random_cost
        assert ff_cost <= regret_cost + small_instance.num_clients * 0.2


class TestBestFitZones:
    def test_algorithm_name(self, tiny_instance):
        assert assign_zones_best_fit(tiny_instance).algorithm == "grez-bf"

    def test_prefers_headroom_among_equal_costs(self):
        # Two servers both give zero misses; best-fit should pick the roomier one.
        instance = make_tiny_instance(capacities=(1000.0, 400.0, 1000.0))
        # Zones 0..2 favour servers 0..2 uniquely, zone 3 has zero cost only on
        # server 1 — nothing to choose there. Use a custom desirability case via
        # zone 0: servers 0 and (hypothetically) none. Instead assert validity.
        result = assign_zones_best_fit(instance)
        assert validate_assignment(
            instance,
            __import__(
                "repro.core.virc", fromlist=["assign_contacts_virtual"]
            ).assign_contacts_virtual(
                instance, result
            ),
        ).ok


class TestFirstFitContacts:
    def test_forwards_needy_clients(self, tiny_instance):
        zones = ZoneAssignment(zone_to_server=np.array([0, 1, 2, 0]), algorithm="grez")
        result = assign_contacts_first_fit(tiny_instance, zones)
        assert result.contact_of_client[6] == 1
        assert result.contact_of_client[7] == 1
        assert result.pqos(tiny_instance) == pytest.approx(1.0)
        assert result.algorithm.endswith("grecff")

    def test_zone_count_mismatch(self, tiny_instance):
        with pytest.raises(ValueError):
            assign_contacts_first_fit(tiny_instance, ZoneAssignment(zone_to_server=np.array([0])))

    def test_respects_capacity(self):
        instance = make_tiny_instance(capacities=(1000.0, 20.0, 1000.0))
        zones = ZoneAssignment(zone_to_server=np.array([0, 1, 2, 0]))
        result = assign_contacts_first_fit(instance, zones)
        assert result.is_capacity_feasible(instance)


class TestRegisteredVariants:
    def test_registration_idempotent(self):
        register_variant_solvers()
        register_variant_solvers()
        names = solver_names()
        for expected in ("grez-ff-grec", "grez-bf-grec", "grez-grec-ff", "grez-ff-virc"):
            assert expected in names

    @pytest.mark.parametrize(
        "name", ["grez-ff-grec", "grez-bf-grec", "grez-grec-ff", "grez-ff-virc"]
    )
    def test_variants_produce_valid_solutions(self, small_instance, name):
        assignment = registry_solve(small_instance, name, seed=0)
        assert assignment.algorithm == name
        assert validate_assignment(small_instance, assignment).ok

    def test_variants_close_to_regret_heuristic(self, small_instance):
        regret = registry_solve(small_instance, "grez-grec", seed=0).pqos(small_instance)
        for name in ("grez-ff-grec", "grez-bf-grec", "grez-grec-ff"):
            variant = registry_solve(small_instance, name, seed=0).pqos(small_instance)
            assert variant >= regret - 0.1
