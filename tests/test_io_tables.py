"""Tests for repro.io.tables — plain-text table rendering."""

from __future__ import annotations

import pytest

from repro.io.tables import format_kv, format_table


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in text and "b" in text
        assert "1" in text and "4" in text

    def test_title_is_first_line(self):
        text = format_table(["x"], [[1]], title="My title")
        assert text.splitlines()[0] == "My title"

    def test_float_format_applied(self):
        text = format_table(["v"], [[0.123456]], float_format=".2f")
        assert "0.12" in text
        assert "0.1234" not in text

    def test_columns_aligned(self):
        text = format_table(["name", "v"], [["long-algorithm-name", 1], ["x", 2]])
        lines = [l for l in text.splitlines() if l and not set(l) <= {"-", " "}]
        # header and both rows: the second column starts at the same offset.
        offsets = {line.rstrip().rfind(" ") for line in lines}
        assert len(lines) == 3
        assert all(o > 0 for o in offsets)

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_mixed_types(self):
        text = format_table(["k", "v"], [["pqos", 0.9], ["count", 10], ["flag", True]])
        assert "pqos" in text and "True" in text

    def test_no_trailing_newline(self):
        assert not format_table(["a"], [[1]]).endswith("\n")


class TestFormatKV:
    def test_all_pairs_present(self):
        text = format_kv({"alpha": 1, "beta": 2.5})
        assert "alpha" in text and "beta" in text
        assert "2.500" in text

    def test_title(self):
        text = format_kv({"x": 1}, title="Config")
        assert text.splitlines()[0] == "Config"

    def test_alignment(self):
        text = format_kv({"a": 1, "longer_key": 2})
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty_dict(self):
        assert format_kv({}) == ""
