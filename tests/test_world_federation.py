"""Tests for repro.world.federation — multi-shard worlds on one substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.world.federation import (
    FederatedWorld,
    build_federation,
    equal_slices,
    split_client_counts,
    weighted_slices,
)
from repro.world.scenario import build_scenario
from repro.world.servers import ServerSet

from tests.conftest import make_small_config


class TestSliceHelpers:
    def test_equal_slices_conserve_exactly(self):
        caps = np.array([10.0, 7.0, 3.0])
        slices = equal_slices(caps, 3)
        assert slices.shape == (3, 3)
        assert np.allclose(slices.sum(axis=0), caps, rtol=1e-12)
        assert (slices > 0).all()

    def test_weighted_slices_proportional_and_conserving(self):
        caps = np.array([12.0, 6.0])
        slices = weighted_slices(caps, np.array([3.0, 1.0]))
        assert np.allclose(slices.sum(axis=0), caps, rtol=1e-12)
        # Shard 0 gets ~3x shard 1 on every server (up to the round-off fixup).
        assert np.allclose(slices[0] / slices[1], 3.0)

    def test_weighted_slices_reject_bad_weights(self):
        with pytest.raises(ValueError):
            weighted_slices(np.ones(2), np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            weighted_slices(np.ones(2), np.zeros(0))

    def test_split_client_counts_sums_exactly(self):
        for total in (0, 1, 7, 100, 1001):
            for shards in (1, 2, 3, 7):
                counts = split_client_counts(total, shards)
                assert sum(counts) == total
                assert len(counts) == shards
                # Unweighted split is as even as possible.
                assert max(counts) - min(counts) <= 1

    def test_split_client_counts_weighted(self):
        counts = split_client_counts(100, 3, weights=[3, 2, 1])
        assert sum(counts) == 100
        assert counts[0] > counts[1] > counts[2]

    def test_split_client_counts_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            split_client_counts(10, 0)
        with pytest.raises(ValueError):
            split_client_counts(-1, 2)
        with pytest.raises(ValueError):
            split_client_counts(10, 2, weights=[1.0, -1.0])
        with pytest.raises(ValueError):
            split_client_counts(10, 2, weights=[1.0, 1.0, 1.0])


@pytest.fixture(scope="module")
def small_federation():
    return build_federation(make_small_config(), num_shards=3, seed=11)


class TestBuildFederation:
    def test_shards_share_substrate_by_identity(self, small_federation):
        fed = small_federation
        assert fed.num_shards == 3
        for shard in fed.shards:
            assert shard.topology is fed.topology
            assert shard.delay_model is fed.delay_model
            assert np.array_equal(shard.servers.nodes, fed.servers.nodes)

    def test_population_split_exactly(self, small_federation):
        base = make_small_config()
        assert sum(s.num_clients for s in small_federation.shards) == base.num_clients

    def test_slices_partition_full_capacity(self, small_federation):
        fed = small_federation
        assert np.allclose(fed.slices.sum(axis=0), fed.servers.capacities, rtol=1e-12)
        for i, shard in enumerate(fed.shards):
            assert np.array_equal(shard.servers.capacities, fed.slices[i])

    def test_client_weights_skew_population(self):
        fed = build_federation(
            make_small_config(), num_shards=3, seed=11, client_weights=[3, 2, 1]
        )
        counts = [s.num_clients for s in fed.shards]
        assert counts[0] > counts[1] > counts[2]

    def test_capacity_weights_skew_slices(self):
        fed = build_federation(
            make_small_config(), num_shards=2, seed=11, capacity_weights=[3, 1]
        )
        assert np.allclose(fed.slices[0] / fed.slices[1], 3.0)

    def test_explicit_config_sequence(self):
        base = make_small_config()
        configs = [
            base.with_updates(num_clients=60),
            base.with_updates(num_clients=30, num_zones=6),
        ]
        fed = build_federation(configs, seed=5)
        assert fed.num_shards == 2
        assert fed.shards[0].num_clients == 60
        assert fed.shards[1].num_clients == 30
        assert fed.shards[1].num_zones == 6

    def test_explicit_configs_reject_client_weights(self):
        base = make_small_config()
        with pytest.raises(ValueError):
            build_federation([base, base], seed=5, client_weights=[1, 2])
        with pytest.raises(ValueError):
            build_federation([base, base], num_shards=3, seed=5)
        with pytest.raises(ValueError):
            build_federation([], seed=5)

    def test_single_shard_gets_full_fleet(self):
        fed = build_federation(make_small_config(), num_shards=1, seed=3)
        assert np.array_equal(fed.shards[0].servers.capacities, fed.servers.capacities)

    def test_deterministic_for_same_seed(self):
        a = build_federation(make_small_config(), num_shards=2, seed=21)
        b = build_federation(make_small_config(), num_shards=2, seed=21)
        for sa, sb in zip(a.shards, b.shards):
            assert np.array_equal(sa.population.nodes, sb.population.nodes)
            assert np.array_equal(sa.population.zones, sb.population.zones)
            assert np.array_equal(sa.client_server_delays, sb.client_server_delays)

    def test_shard_streams_independent_of_shard_count(self):
        """Adding a shard must not reshuffle the substrate RNG streams."""
        a = build_federation(make_small_config(), num_shards=2, seed=9)
        b = build_federation(make_small_config(), num_shards=3, seed=9)
        assert np.array_equal(a.servers.nodes, b.servers.nodes)
        assert np.array_equal(a.servers.capacities, b.servers.capacities)


class TestFederatedWorld:
    def test_with_slices_is_zero_copy(self, small_federation):
        fed = small_federation
        new_slices = fed.slices[::-1].copy()
        resliced = fed.with_slices(new_slices)
        for old, new in zip(fed.shards, resliced.shards):
            # Delay matrices and populations carry over by identity.
            assert new.client_server_delays is old.client_server_delays
            assert new.population is old.population
            assert new.delay_model is old.delay_model
        assert np.array_equal(resliced.slices, new_slices)

    def test_validation_rejects_non_conserving_slices(self, small_federation):
        fed = small_federation
        bad = fed.slices * 1.5
        shards = tuple(s.with_server_capacities(bad[i]) for i, s in enumerate(fed.shards))
        with pytest.raises(ValueError, match="conservation"):
            FederatedWorld(
                topology=fed.topology,
                delay_model=fed.delay_model,
                servers=fed.servers,
                shards=shards,
                slices=bad,
            )

    def test_validation_rejects_mismatched_shard_capacities(self, small_federation):
        fed = small_federation
        with pytest.raises(ValueError, match="slice"):
            FederatedWorld(
                topology=fed.topology,
                delay_model=fed.delay_model,
                servers=fed.servers,
                shards=fed.shards,
                slices=np.roll(fed.slices, 1, axis=0),
            )

    def test_validation_rejects_foreign_substrate(self, small_federation):
        fed = small_federation
        foreign = build_scenario(make_small_config(), seed=99)
        with pytest.raises(ValueError, match="topology"):
            FederatedWorld(
                topology=fed.topology,
                delay_model=fed.delay_model,
                servers=fed.servers,
                shards=(foreign, *fed.shards[1:]),
                slices=fed.slices,
            )

    def test_summary_reports_fleet_and_shards(self, small_federation):
        summary = small_federation.summary()
        assert summary["shards"] == 3
        assert summary["servers"] == small_federation.num_servers
        assert summary["clients"] == sum(s.num_clients for s in small_federation.shards)


class TestBuildScenarioSharedFleet:
    def test_servers_require_topology(self):
        servers = ServerSet(nodes=np.array([0]), capacities=np.array([1e6]))
        with pytest.raises(ValueError, match="topology"):
            build_scenario(make_small_config(), seed=0, servers=servers)

    def test_servers_outside_topology_rejected(self, small_scenario):
        topo = small_scenario.topology
        servers = ServerSet(
            nodes=np.array([topo.num_nodes]), capacities=np.array([1e6])
        )
        with pytest.raises(ValueError, match="outside"):
            build_scenario(
                make_small_config(),
                seed=0,
                topology=topo,
                delay_model=small_scenario.delay_model,
                servers=servers,
            )

    def test_supplied_fleet_preserves_client_streams(self, small_scenario):
        """Handing build_scenario a fleet must not perturb client sampling."""
        config = make_small_config()
        reference = build_scenario(
            config,
            seed=123,
            topology=small_scenario.topology,
            delay_model=small_scenario.delay_model,
        )
        supplied = build_scenario(
            config,
            seed=123,
            topology=small_scenario.topology,
            delay_model=small_scenario.delay_model,
            servers=ServerSet(
                nodes=reference.servers.nodes.copy(),
                capacities=reference.servers.capacities / 2,
            ),
        )
        assert np.array_equal(supplied.population.nodes, reference.population.nodes)
        assert np.array_equal(supplied.population.zones, reference.population.zones)
        assert np.array_equal(
            supplied.servers.capacities, reference.servers.capacities / 2
        )
