"""EpochArena: pooling semantics and the no-aliasing invariant (hypothesis)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.arena import EpochArena

# --------------------------------------------------------------------------- #
# Direct semantics
# --------------------------------------------------------------------------- #


def test_acquire_shapes_and_dtypes():
    arena = EpochArena()
    flat = arena.acquire(7, dtype=np.int64)
    assert flat.shape == (7,) and flat.dtype == np.int64
    matrix = arena.acquire((3, 5), dtype=np.float64)
    assert matrix.shape == (3, 5) and matrix.dtype == np.float64


def test_release_then_acquire_reuses_storage():
    arena = EpochArena()
    first = arena.acquire(100, dtype=np.float64)
    base_bytes = arena.allocated_bytes
    arena.release(first)
    second = arena.acquire(100, dtype=np.float64)
    assert np.shares_memory(first, second)
    assert arena.allocated_bytes == base_bytes
    assert arena.stats()["reuses"] == 1


def test_release_rejects_foreign_and_double_release():
    arena = EpochArena()
    with pytest.raises(ValueError):
        arena.release(np.empty(4))
    buf = arena.acquire(4)
    arena.release(buf)
    with pytest.raises(ValueError):
        arena.release(buf)


def test_release_if_owned_only_releases_live_arena_buffers():
    arena = EpochArena()
    foreign = np.empty(8)
    assert not arena.release_if_owned(foreign)
    assert not arena.release_if_owned(None)
    buf = arena.acquire(8)
    assert arena.owns(buf)
    assert arena.release_if_owned(buf)
    assert not arena.owns(buf)
    assert not arena.release_if_owned(buf)


def test_scratch_is_persistent_and_grows_geometrically():
    arena = EpochArena()
    small = arena.scratch("work", 10)
    small[:] = 3
    again = arena.scratch("work", 10)
    assert np.shares_memory(small, again)
    big = arena.scratch("work", 1000)
    assert big.shape == (1000,)
    other = arena.scratch("other", 10)
    assert not np.shares_memory(big, other)


def test_scratch_dtype_change_reallocates():
    arena = EpochArena()
    ints = arena.scratch("k", 5, dtype=np.int64)
    floats = arena.scratch("k", 5, dtype=np.float64)
    assert floats.dtype == np.float64
    assert not np.shares_memory(ints, floats)


def test_arange_is_cached_and_read_only():
    arena = EpochArena()
    ramp = arena.arange(10)
    np.testing.assert_array_equal(ramp, np.arange(10))
    assert not ramp.flags.writeable
    assert np.shares_memory(ramp, arena.arange(5))
    long_ramp = arena.arange(100)
    np.testing.assert_array_equal(long_ramp, np.arange(100))


def test_stats_counters():
    arena = EpochArena()
    a = arena.acquire(10)
    arena.release(a)
    arena.acquire(10)
    arena.scratch("s", 20)
    stats = arena.stats()
    assert stats["acquires"] == 2
    assert stats["reuses"] == 1
    assert stats["live_buffers"] == 1
    assert stats["allocated_bytes"] > 0
    assert stats["scratch_bytes"] > 0


# --------------------------------------------------------------------------- #
# Property: no two live buffers ever alias, under any interleaving
# --------------------------------------------------------------------------- #

_steps = st.lists(
    st.tuples(
        st.sampled_from(["acquire", "release"]),
        st.integers(min_value=1, max_value=600),  # size (acquire) / pick (release)
        st.sampled_from(["f8", "i8", "?"]),
    ),
    min_size=1,
    max_size=60,
)


@settings(deadline=None, max_examples=200)
@given(steps=_steps)
def test_live_buffers_never_alias(steps):
    """Any acquire/release interleaving keeps live buffers pairwise disjoint.

    This is the arena's core safety contract: handing out memory that
    overlaps a live buffer would silently corrupt whatever the borrower is
    still holding (the double-buffered delay matrix, the population arrays).
    """
    arena = EpochArena()
    live = []
    for op, number, dtype in steps:
        if op == "acquire":
            buf = arena.acquire(number, dtype=dtype)
            buf.fill(0)
            for other in live:
                assert not np.shares_memory(buf, other)
            live.append(buf)
        elif live:
            victim = live.pop(number % len(live))
            arena.release(victim)
    # Scratch and arange storage must never alias checked-out buffers either.
    scratch = arena.scratch("probe", 64)
    ramp = arena.arange(64)
    for buf in live:
        assert not np.shares_memory(scratch, buf)
        assert not np.shares_memory(ramp, buf)
    assert arena.stats()["live_buffers"] == len(live)


@settings(deadline=None, max_examples=100)
@given(
    sizes=st.lists(st.integers(min_value=1, max_value=2048), min_size=1, max_size=30),
    dtype=st.sampled_from(["f8", "i8"]),
)
def test_acquire_release_cycles_bound_allocation(sizes, dtype):
    """Serial acquire->release cycles allocate at most one block per bucket.

    At steady state (same sizes recurring) the pool must satisfy every
    acquire from recycled storage: ``allocated_bytes`` stabilises after one
    pass while ``reuses`` keeps climbing.
    """
    arena = EpochArena()
    for size in sizes:
        buf = arena.acquire(size, dtype=dtype)
        arena.release(buf)
    settled = arena.allocated_bytes
    for size in sizes:
        buf = arena.acquire(size, dtype=dtype)
        arena.release(buf)
    assert arena.allocated_bytes == settled
    assert arena.stats()["reuses"] >= len(sizes)
