"""Tests for repro.experiments.config — the <m>s-<n>z-<k>c-<P>cp notation."""

from __future__ import annotations

import pytest

from repro.experiments.config import (
    PAPER_DEFAULT_LABEL,
    PAPER_SMALL_LABELS,
    PAPER_TABLE1_LABELS,
    config_from_label,
    paper_default_config,
    paper_table1_configs,
    parse_config_label,
)


class TestParseLabel:
    def test_paper_default(self):
        parsed = parse_config_label("20s-80z-1000c-500cp")
        assert parsed == {
            "num_servers": 20,
            "num_zones": 80,
            "num_clients": 1000,
            "total_capacity_mbps": 500.0,
        }

    def test_case_insensitive_and_whitespace(self):
        assert parse_config_label("  5S-15Z-200C-100CP ")["num_servers"] == 5

    def test_fractional_capacity(self):
        assert parse_config_label("2s-4z-10c-12.5cp")["total_capacity_mbps"] == 12.5

    @pytest.mark.parametrize("bad", ["", "20s-80z-1000c", "s-z-c-cp", "20x-80z-1000c-500cp"])
    def test_invalid_labels(self, bad):
        with pytest.raises(ValueError):
            parse_config_label(bad)


class TestConfigFromLabel:
    def test_round_trip_label(self):
        for label in PAPER_TABLE1_LABELS:
            assert config_from_label(label).label == label

    def test_overrides_applied(self):
        config = config_from_label("5s-15z-200c-100cp", correlation=0.0, delay_bound_ms=200.0)
        assert config.correlation == 0.0
        assert config.delay_bound_ms == 200.0

    def test_defaults_match_section_41(self):
        config = config_from_label(PAPER_DEFAULT_LABEL)
        assert config.delay_bound_ms == 250.0
        assert config.correlation == 0.5
        assert config.min_server_capacity_mbps == 10.0
        assert config.frame_rate == 25.0
        assert config.message_bytes == 100.0


class TestPaperConstants:
    def test_table1_labels(self):
        assert PAPER_TABLE1_LABELS == (
            "5s-15z-200c-100cp",
            "10s-30z-400c-200cp",
            "20s-80z-1000c-500cp",
            "30s-160z-2000c-1000cp",
        )

    def test_small_labels_are_first_two(self):
        assert PAPER_SMALL_LABELS == PAPER_TABLE1_LABELS[:2]

    def test_table1_configs_keyed_by_label(self):
        configs = paper_table1_configs()
        assert set(configs) == set(PAPER_TABLE1_LABELS)
        assert configs["30s-160z-2000c-1000cp"].num_clients == 2000

    def test_default_config_label(self):
        assert paper_default_config().label == PAPER_DEFAULT_LABEL
