"""Tests for repro.dynamics.controller — the rebalancing trigger policies."""

from __future__ import annotations

import pytest

from repro.core.problem import CAPInstance
from repro.core.registry import solve as registry_solve
from repro.dynamics.churn import ChurnSpec, generate_churn
from repro.dynamics.controller import (
    RebalanceController,
    RebalancePolicy,
    RebalanceTrace,
)
from repro.dynamics.engine import EpochRecord
from repro.dynamics.events import apply_churn
from repro.dynamics.infrastructure import ServerChurnSpec
from repro.dynamics.migration import MigrationCostModel
from repro.dynamics.policies import carry_over_assignment, incremental_reassign
from repro.utils.rng import as_generator, spawn_generators

CHURN = ChurnSpec(num_joins=30, num_leaves=30, num_moves=30)


def legacy_controller_run(scenario, algorithm, policy, churn_spec, seed, num_epochs):
    """The pre-engine standalone controller loop, kept as the executable spec.

    This is a line-for-line port of the original ``RebalanceController.run``
    (full scenario rebuild each epoch, no engine, no migration accounting);
    the engine-backed controller must reproduce its trace bit-for-bit on
    client-only churn with the default (free) migration model.
    """
    rng = as_generator(seed)
    solve_rng, *epoch_rngs = spawn_generators(rng, num_epochs + 1)
    instance = CAPInstance.from_scenario(scenario)
    assignment = registry_solve(instance, algorithm, seed=solve_rng)
    steps = []
    for epoch in range(num_epochs):
        churn_rng, reassign_rng = spawn_generators(epoch_rngs[epoch], 2)
        batch = generate_churn(scenario, churn_spec, seed=churn_rng)
        churn = apply_churn(scenario.population, batch)
        scenario = scenario.with_population(churn.population)
        new_instance = CAPInstance.from_scenario(scenario)
        stale = carry_over_assignment(assignment, churn, new_instance)
        pqos_stale = stale.pqos(new_instance)
        periodic_due = (
            policy.full_rebalance_every > 0
            and (epoch + 1) % policy.full_rebalance_every == 0
        )
        if pqos_stale >= policy.target_pqos and not periodic_due:
            action, final = "none", stale
        else:
            final = None
            if not periodic_due and pqos_stale >= policy.target_pqos - policy.repair_slack:
                repaired = incremental_reassign(stale, new_instance)
                if (
                    repaired.pqos(new_instance)
                    >= policy.target_pqos - policy.accept_repair_if_within
                ):
                    action, final = "repair", repaired
            if final is None:
                action, final = "rebalance", registry_solve(
                    new_instance, algorithm, seed=reassign_rng
                )
        steps.append(
            (epoch, action, pqos_stale, final.pqos(new_instance), new_instance.num_clients)
        )
        assignment = final
    return steps


class TestRebalancePolicy:
    def test_defaults(self):
        policy = RebalancePolicy()
        assert policy.target_pqos == 0.9
        assert policy.full_rebalance_every == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RebalancePolicy(target_pqos=0.0)
        with pytest.raises(ValueError):
            RebalancePolicy(target_pqos=1.5)
        with pytest.raises(ValueError):
            RebalancePolicy(repair_slack=-0.1)
        with pytest.raises(ValueError):
            RebalancePolicy(full_rebalance_every=-1)


class TestRebalanceController:
    def test_trace_structure(self, small_scenario):
        controller = RebalanceController(
            scenario=small_scenario,
            algorithm="grez-grec",
            policy=RebalancePolicy(target_pqos=0.9),
            churn_spec=CHURN,
            seed=0,
        )
        trace = controller.run(num_epochs=3)
        assert isinstance(trace, RebalanceTrace)
        assert len(trace.steps) == 3
        assert [s.epoch for s in trace.steps] == [0, 1, 2]
        for step in trace.steps:
            assert step.action in ("none", "repair", "rebalance")
            assert 0.0 <= step.pqos_stale <= 1.0
            assert 0.0 <= step.pqos_final <= 1.0
            # The controller never makes things worse than doing nothing.
            assert step.pqos_final >= step.pqos_stale - 1e-9
        assert trace.num_rebalances + trace.num_repairs <= 3
        assert len(trace.pqos_series()) == 3
        assert 0.0 <= trace.mean_pqos <= 1.0

    def test_lazy_policy_never_rebalances(self, small_scenario):
        """A target of 0+ means the stale assignment is always good enough."""
        controller = RebalanceController(
            scenario=small_scenario,
            policy=RebalancePolicy(target_pqos=0.01),
            churn_spec=CHURN,
            seed=1,
        )
        trace = controller.run(num_epochs=3)
        assert trace.num_rebalances == 0
        assert trace.num_repairs == 0
        assert all(s.action == "none" for s in trace.steps)

    def test_eager_policy_always_rebalances(self, small_scenario):
        """An unreachable target forces a full re-execution every epoch."""
        controller = RebalanceController(
            scenario=small_scenario,
            policy=RebalancePolicy(target_pqos=1.0, repair_slack=0.0),
            churn_spec=CHURN,
            seed=1,
        )
        trace = controller.run(num_epochs=2)
        assert trace.num_rebalances == 2

    def test_periodic_trigger(self, small_scenario):
        controller = RebalanceController(
            scenario=small_scenario,
            policy=RebalancePolicy(target_pqos=0.01, full_rebalance_every=2),
            churn_spec=CHURN,
            seed=2,
        )
        trace = controller.run(num_epochs=4)
        # Epochs 1 and 3 (0-based) are periodic rebalances; the rest are "none".
        actions = [s.action for s in trace.steps]
        assert actions[1] == "rebalance" and actions[3] == "rebalance"
        assert actions[0] == "none" and actions[2] == "none"

    def test_tighter_policy_gives_no_worse_interactivity(self, small_scenario):
        lazy = RebalanceController(
            scenario=small_scenario,
            policy=RebalancePolicy(target_pqos=0.5),
            churn_spec=CHURN,
            seed=3,
        ).run(num_epochs=3)
        eager = RebalanceController(
            scenario=small_scenario,
            policy=RebalancePolicy(target_pqos=0.99, repair_slack=0.0),
            churn_spec=CHURN,
            seed=3,
        ).run(num_epochs=3)
        assert eager.mean_pqos >= lazy.mean_pqos - 1e-9
        assert eager.num_rebalances >= lazy.num_rebalances

    def test_invalid_epochs(self, small_scenario):
        with pytest.raises(ValueError):
            RebalanceController(scenario=small_scenario).run(num_epochs=0)

    def test_deterministic(self, small_scenario):
        def run_once():
            return RebalanceController(
                scenario=small_scenario,
                policy=RebalancePolicy(target_pqos=0.95),
                churn_spec=CHURN,
                seed=9,
            ).run(num_epochs=2)

        a, b = run_once(), run_once()
        assert a.pqos_series() == b.pqos_series()
        assert [s.action for s in a.steps] == [s.action for s in b.steps]


class TestLegacyTraceReproduction:
    """Acceptance criterion: the engine-backed controller reproduces the
    pre-port standalone loop's trace on client-only churn with zero
    migration cost.
    """

    @pytest.mark.parametrize(
        "policy",
        [
            RebalancePolicy(target_pqos=0.9),
            RebalancePolicy(target_pqos=0.95, repair_slack=0.1),
            RebalancePolicy(target_pqos=0.01, full_rebalance_every=2),
            RebalancePolicy(target_pqos=1.0, repair_slack=0.0),
        ],
        ids=["default", "repair-happy", "periodic", "eager"],
    )
    @pytest.mark.parametrize("backend", ["delta", "rebuild"])
    def test_matches_legacy_loop(self, small_scenario, policy, backend):
        legacy = legacy_controller_run(small_scenario, "grez-grec", policy, CHURN, 17, 4)
        trace = RebalanceController(
            scenario=small_scenario,
            algorithm="grez-grec",
            policy=policy,
            churn_spec=CHURN,
            seed=17,
            backend=backend,
        ).run(num_epochs=4)
        ported = [
            (s.epoch, s.action, s.pqos_stale, s.pqos_final, s.num_clients)
            for s in trace.steps
        ]
        assert ported == legacy

    def test_run_legacy_shim_warns_and_matches(self, small_scenario):
        controller = RebalanceController(
            scenario=small_scenario, policy=RebalancePolicy(target_pqos=0.95),
            churn_spec=CHURN, seed=5,
        )
        with pytest.warns(DeprecationWarning, match="run_legacy"):
            legacy = controller.run_legacy(num_epochs=2)
        assert legacy.pqos_series() == controller.run(num_epochs=2).pqos_series()


class TestControllerOnEngine:
    def test_streams_epoch_records(self, small_scenario):
        trace = RebalanceController(
            scenario=small_scenario,
            policy=RebalancePolicy(target_pqos=0.95),
            churn_spec=CHURN,
            seed=1,
            migration_cost=MigrationCostModel(cost_per_client=1.0),
        ).run(num_epochs=3)
        assert len(trace.records) == 3
        for step, record in zip(trace.steps, trace.records):
            assert isinstance(record, EpochRecord)
            assert record.policy == "controller"
            assert record.pqos_after == step.pqos_stale
            assert record.pqos_adopted == step.pqos_final
            assert record.migration_cost == step.migration_cost
            assert record.num_clients_after == step.num_clients

    def test_migration_accounting_none_action_is_free(self, small_scenario):
        trace = RebalanceController(
            scenario=small_scenario,
            policy=RebalancePolicy(target_pqos=0.01),  # always "none"
            churn_spec=CHURN,
            seed=1,
            migration_cost=MigrationCostModel(cost_per_client=2.0),
        ).run(num_epochs=3)
        assert all(s.action == "none" for s in trace.steps)
        assert trace.total_migration_cost == 0.0
        assert trace.total_clients_migrated == 0

    def test_migration_budget_blocks_rebalances(self, small_scenario):
        kwargs = dict(
            scenario=small_scenario,
            churn_spec=CHURN,
            seed=3,
            migration_cost=MigrationCostModel(cost_per_client=1.0),
        )
        eager = RebalanceController(
            policy=RebalancePolicy(target_pqos=1.0, repair_slack=0.0), **kwargs
        ).run(num_epochs=3)
        capped = RebalanceController(
            policy=RebalancePolicy(
                target_pqos=1.0, repair_slack=0.0, max_migration_cost_per_epoch=0.0
            ),
            **kwargs,
        ).run(num_epochs=3)
        assert eager.num_rebalances == 3
        assert capped.num_rebalances == 0
        assert capped.total_migration_cost <= eager.total_migration_cost
        # The budget trades interactivity for stability, never below "do nothing".
        for step in capped.steps:
            assert step.pqos_final >= step.pqos_stale - 1e-12

    def test_with_server_churn(self, small_scenario):
        trace = RebalanceController(
            scenario=small_scenario,
            policy=RebalancePolicy(target_pqos=0.9),
            churn_spec=CHURN,
            seed=2,
            server_churn_spec=ServerChurnSpec(num_joins=1, num_leaves=1, capacity_drift=0.1),
            migration_cost=MigrationCostModel(cost_per_client=1.0),
        ).run(num_epochs=3)
        assert len(trace.steps) == 3
        for step in trace.steps:
            assert step.num_servers == small_scenario.num_servers  # +1 join −1 leave
            assert step.action in ("none", "repair", "rebalance")

    def test_backend_equivalence_with_server_churn(self, small_scenario):
        def run(backend):
            return RebalanceController(
                scenario=small_scenario,
                policy=RebalancePolicy(target_pqos=0.95),
                churn_spec=CHURN,
                seed=8,
                server_churn_spec=ServerChurnSpec(num_joins=1, capacity_drift=0.05),
                migration_cost=MigrationCostModel(cost_per_client=1.0),
                backend=backend,
            ).run(num_epochs=3)

        assert run("delta").steps == run("rebuild").steps

    def test_invalid_backend_rejected(self, small_scenario):
        with pytest.raises(ValueError, match="backend"):
            RebalanceController(scenario=small_scenario, backend="magic")
