"""Tests for repro.dynamics.controller — the rebalancing trigger policies."""

from __future__ import annotations

import pytest

from repro.dynamics.churn import ChurnSpec
from repro.dynamics.controller import (
    RebalanceController,
    RebalancePolicy,
    RebalanceTrace,
)

CHURN = ChurnSpec(num_joins=30, num_leaves=30, num_moves=30)


class TestRebalancePolicy:
    def test_defaults(self):
        policy = RebalancePolicy()
        assert policy.target_pqos == 0.9
        assert policy.full_rebalance_every == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RebalancePolicy(target_pqos=0.0)
        with pytest.raises(ValueError):
            RebalancePolicy(target_pqos=1.5)
        with pytest.raises(ValueError):
            RebalancePolicy(repair_slack=-0.1)
        with pytest.raises(ValueError):
            RebalancePolicy(full_rebalance_every=-1)


class TestRebalanceController:
    def test_trace_structure(self, small_scenario):
        controller = RebalanceController(
            scenario=small_scenario,
            algorithm="grez-grec",
            policy=RebalancePolicy(target_pqos=0.9),
            churn_spec=CHURN,
            seed=0,
        )
        trace = controller.run(num_epochs=3)
        assert isinstance(trace, RebalanceTrace)
        assert len(trace.steps) == 3
        assert [s.epoch for s in trace.steps] == [0, 1, 2]
        for step in trace.steps:
            assert step.action in ("none", "repair", "rebalance")
            assert 0.0 <= step.pqos_stale <= 1.0
            assert 0.0 <= step.pqos_final <= 1.0
            # The controller never makes things worse than doing nothing.
            assert step.pqos_final >= step.pqos_stale - 1e-9
        assert trace.num_rebalances + trace.num_repairs <= 3
        assert len(trace.pqos_series()) == 3
        assert 0.0 <= trace.mean_pqos <= 1.0

    def test_lazy_policy_never_rebalances(self, small_scenario):
        """A target of 0+ means the stale assignment is always good enough."""
        controller = RebalanceController(
            scenario=small_scenario,
            policy=RebalancePolicy(target_pqos=0.01),
            churn_spec=CHURN,
            seed=1,
        )
        trace = controller.run(num_epochs=3)
        assert trace.num_rebalances == 0
        assert trace.num_repairs == 0
        assert all(s.action == "none" for s in trace.steps)

    def test_eager_policy_always_rebalances(self, small_scenario):
        """An unreachable target forces a full re-execution every epoch."""
        controller = RebalanceController(
            scenario=small_scenario,
            policy=RebalancePolicy(target_pqos=1.0, repair_slack=0.0),
            churn_spec=CHURN,
            seed=1,
        )
        trace = controller.run(num_epochs=2)
        assert trace.num_rebalances == 2

    def test_periodic_trigger(self, small_scenario):
        controller = RebalanceController(
            scenario=small_scenario,
            policy=RebalancePolicy(target_pqos=0.01, full_rebalance_every=2),
            churn_spec=CHURN,
            seed=2,
        )
        trace = controller.run(num_epochs=4)
        # Epochs 1 and 3 (0-based) are periodic rebalances; the rest are "none".
        actions = [s.action for s in trace.steps]
        assert actions[1] == "rebalance" and actions[3] == "rebalance"
        assert actions[0] == "none" and actions[2] == "none"

    def test_tighter_policy_gives_no_worse_interactivity(self, small_scenario):
        lazy = RebalanceController(
            scenario=small_scenario,
            policy=RebalancePolicy(target_pqos=0.5),
            churn_spec=CHURN,
            seed=3,
        ).run(num_epochs=3)
        eager = RebalanceController(
            scenario=small_scenario,
            policy=RebalancePolicy(target_pqos=0.99, repair_slack=0.0),
            churn_spec=CHURN,
            seed=3,
        ).run(num_epochs=3)
        assert eager.mean_pqos >= lazy.mean_pqos - 1e-9
        assert eager.num_rebalances >= lazy.num_rebalances

    def test_invalid_epochs(self, small_scenario):
        with pytest.raises(ValueError):
            RebalanceController(scenario=small_scenario).run(num_epochs=0)

    def test_deterministic(self, small_scenario):
        def run_once():
            return RebalanceController(
                scenario=small_scenario,
                policy=RebalancePolicy(target_pqos=0.95),
                churn_spec=CHURN,
                seed=9,
            ).run(num_epochs=2)

        a, b = run_once(), run_once()
        assert a.pqos_series() == b.pqos_series()
        assert [s.action for s in a.steps] == [s.action for s in b.steps]
