"""Tests for repro.world.servers — server fleet and capacity allocation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.world.servers import MBPS, ServerSet, allocate_capacities


class TestServerSet:
    def test_basic_properties(self):
        servers = ServerSet(nodes=np.array([3, 8, 11]), capacities=np.array([1e7, 2e7, 3e7]))
        assert servers.num_servers == 3
        assert servers.total_capacity == pytest.approx(6e7)
        assert servers.total_capacity_mbps == pytest.approx(60.0)
        np.testing.assert_allclose(servers.capacities_mbps(), [10, 20, 30])

    def test_mismatched_shapes(self):
        with pytest.raises(ValueError):
            ServerSet(nodes=np.array([1, 2]), capacities=np.array([1e6]))

    def test_non_positive_capacity_rejected(self):
        with pytest.raises(ValueError):
            ServerSet(nodes=np.array([1]), capacities=np.array([0.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ServerSet(nodes=np.array([], dtype=int), capacities=np.array([]))

    def test_with_capacities(self):
        servers = ServerSet(nodes=np.array([0, 1]), capacities=np.array([1e6, 1e6]))
        updated = servers.with_capacities(np.array([2e6, 3e6]))
        assert updated.total_capacity == pytest.approx(5e6)
        np.testing.assert_array_equal(updated.nodes, servers.nodes)
        # original untouched
        assert servers.total_capacity == pytest.approx(2e6)


class TestAllocateCapacities:
    @pytest.mark.parametrize("scheme", ["uniform", "random", "proportional"])
    def test_sums_to_total(self, scheme):
        caps = allocate_capacities(20, 500.0, scheme=scheme, seed=0)
        assert caps.sum() == pytest.approx(500.0 * MBPS)
        assert caps.shape == (20,)

    @pytest.mark.parametrize("scheme", ["random", "proportional"])
    def test_respects_minimum(self, scheme):
        caps = allocate_capacities(20, 500.0, min_capacity_mbps=10.0, scheme=scheme, seed=1)
        assert (caps >= 10.0 * MBPS - 1e-6).all()

    def test_uniform_split_is_even(self):
        caps = allocate_capacities(5, 100.0, scheme="uniform")
        np.testing.assert_allclose(caps, 20.0 * MBPS)

    def test_proportional_less_skewed_than_random(self):
        random_caps = allocate_capacities(50, 1000.0, scheme="random", seed=0)
        prop_caps = allocate_capacities(50, 1000.0, scheme="proportional", seed=0)
        assert np.std(prop_caps) < np.std(random_caps)

    def test_deterministic(self):
        a = allocate_capacities(10, 200.0, scheme="random", seed=7)
        b = allocate_capacities(10, 200.0, scheme="random", seed=7)
        np.testing.assert_allclose(a, b)

    def test_infeasible_minimum(self):
        with pytest.raises(ValueError):
            allocate_capacities(10, 50.0, min_capacity_mbps=10.0)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            allocate_capacities(5, 100.0, scheme="exponential")

    def test_invalid_counts(self):
        with pytest.raises(ValueError):
            allocate_capacities(0, 100.0)
        with pytest.raises(ValueError):
            allocate_capacities(5, -1.0)


def test_negative_server_nodes_rejected():
    import numpy as np
    import pytest
    from repro.world.servers import ServerSet

    with pytest.raises(ValueError, match="non-negative"):
        ServerSet(nodes=np.array([-1, 3]), capacities=np.array([1e6, 1e6]))
