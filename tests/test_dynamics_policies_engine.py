"""Tests for repro.dynamics.policies and repro.dynamics.engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.problem import CAPInstance
from repro.core.registry import solve as registry_solve
from repro.core.validation import validate_assignment
from repro.dynamics.churn import ChurnSpec, generate_churn
from repro.dynamics.engine import ChurnSimulator, EpochRecord
from repro.dynamics.events import apply_churn
from repro.dynamics.policies import carry_over_assignment, incremental_reassign, reassign


@pytest.fixture(scope="module")
def churned(small_scenario):
    """One churn batch applied to the shared small scenario."""
    batch = generate_churn(small_scenario, ChurnSpec(30, 30, 30), seed=11)
    churn = apply_churn(small_scenario.population, batch)
    new_scenario = small_scenario.with_population(churn.population)
    return churn, new_scenario


class TestCarryOver:
    def test_dimensions_and_zone_map_preserved(self, small_scenario, small_instance, churned):
        churn, new_scenario = churned
        old = registry_solve(small_instance, "grez-grec", seed=0)
        new_instance = CAPInstance.from_scenario(new_scenario)
        carried = carry_over_assignment(old, churn, new_instance)
        assert carried.num_clients == new_instance.num_clients
        np.testing.assert_array_equal(carried.zone_to_server, old.zone_to_server)
        assert "carried over" in carried.algorithm

    def test_survivors_keep_contact_server(self, small_instance, churned):
        churn, new_scenario = churned
        old = registry_solve(small_instance, "grez-grec", seed=0)
        new_instance = CAPInstance.from_scenario(new_scenario)
        carried = carry_over_assignment(old, churn, new_instance)
        survivors_old = np.flatnonzero(churn.old_to_new >= 0)
        np.testing.assert_array_equal(
            carried.contact_of_client[churn.old_to_new[survivors_old]],
            old.contact_of_client[survivors_old],
        )

    def test_new_clients_connect_to_their_target(self, small_instance, churned):
        churn, new_scenario = churned
        old = registry_solve(small_instance, "grez-virc", seed=0)
        new_instance = CAPInstance.from_scenario(new_scenario)
        carried = carry_over_assignment(old, churn, new_instance)
        targets = carried.targets_of_clients(new_instance)
        np.testing.assert_array_equal(
            carried.contact_of_client[churn.new_client_indices],
            targets[churn.new_client_indices],
        )


class TestReassignPolicies:
    def test_reassign_runs_solver_from_scratch(self, churned):
        churn, new_scenario = churned
        new_instance = CAPInstance.from_scenario(new_scenario)
        fresh = reassign(new_instance, "grez-grec", seed=0)
        assert fresh.algorithm == "grez-grec"
        assert validate_assignment(new_instance, fresh).ok

    def test_incremental_keeps_zone_map(self, small_instance, churned):
        churn, new_scenario = churned
        old = registry_solve(small_instance, "grez-grec", seed=0)
        new_instance = CAPInstance.from_scenario(new_scenario)
        repaired = incremental_reassign(old, new_instance)
        np.testing.assert_array_equal(repaired.zone_to_server, old.zone_to_server)
        assert "incremental" in repaired.algorithm
        assert repaired.num_clients == new_instance.num_clients

    def test_reexecution_restores_interactivity(self, small_instance, churned):
        """The paper's Table 3 claim: re-execution recovers the pQoS lost to churn."""
        churn, new_scenario = churned
        old = registry_solve(small_instance, "grez-grec", seed=0)
        new_instance = CAPInstance.from_scenario(new_scenario)
        stale = carry_over_assignment(old, churn, new_instance)
        fresh = reassign(new_instance, "grez-grec", seed=0)
        assert fresh.pqos(new_instance) >= stale.pqos(new_instance) - 1e-9


class TestChurnSimulator:
    def test_one_epoch_records_all_algorithms(self, small_scenario):
        simulator = ChurnSimulator(
            scenario=small_scenario,
            algorithms=["grez-grec", "ranz-virc"],
            churn_spec=ChurnSpec(20, 20, 20),
            seed=0,
        )
        records = simulator.run(num_epochs=1)
        assert len(records) == 2
        assert {r.algorithm for r in records} == {"grez-grec", "ranz-virc"}
        for record in records:
            assert isinstance(record, EpochRecord)
            assert 0.0 <= record.pqos_before <= 1.0
            assert 0.0 <= record.pqos_after <= 1.0
            assert 0.0 <= record.pqos_reexecuted <= 1.0
            assert 0.0 <= record.pqos_incremental <= 1.0
            assert record.num_clients_before == small_scenario.num_clients

    def test_multi_epoch_population_evolves(self, small_scenario):
        simulator = ChurnSimulator(
            scenario=small_scenario,
            algorithms=["grez-virc"],
            churn_spec=ChurnSpec(30, 10, 10),
            seed=1,
        )
        records = simulator.run(num_epochs=3)
        assert [r.epoch for r in records] == [0, 1, 2]
        # +20 clients per epoch.
        assert records[1].num_clients_before == records[0].num_clients_after
        assert records[2].num_clients_after == small_scenario.num_clients + 3 * 20

    def test_invalid_epochs(self, small_scenario):
        simulator = ChurnSimulator(scenario=small_scenario, algorithms=["grez-virc"])
        with pytest.raises(ValueError):
            simulator.run(num_epochs=0)

    def test_deterministic(self, small_scenario):
        def run_once():
            sim = ChurnSimulator(
                scenario=small_scenario,
                algorithms=["grez-grec"],
                churn_spec=ChurnSpec(20, 20, 20),
                seed=42,
            )
            return sim.run(num_epochs=1)[0]

        a, b = run_once(), run_once()
        assert a.pqos_before == b.pqos_before
        assert a.pqos_after == b.pqos_after
        assert a.pqos_reexecuted == b.pqos_reexecuted


class TestCarryOverCapacityFlag:
    """carry_over_assignment audits capacities against the *new* instance
    instead of copying the pre-churn flag."""

    @staticmethod
    def _identity_churn(num_clients):
        from repro.dynamics.events import ChurnResult
        from repro.world.clients import ClientPopulation

        return ChurnResult(
            population=ClientPopulation(
                nodes=np.zeros(num_clients, dtype=np.int64),
                zones=np.zeros(num_clients, dtype=np.int64),
            ),
            old_to_new=np.arange(num_clients, dtype=np.int64),
            new_client_indices=np.zeros(0, dtype=np.int64),
        )

    def test_stale_true_flag_cleared_when_loads_fit(self, tiny_instance):
        ok = registry_solve(tiny_instance, "grez-grec", seed=0)
        stale = Assignment(
            zone_to_server=ok.zone_to_server,
            contact_of_client=ok.contact_of_client,
            algorithm="stale",
            capacity_exceeded=True,  # wrong: capacities (1000 each) easily fit
        )
        churn = self._identity_churn(tiny_instance.num_clients)
        carried = carry_over_assignment(stale, churn, tiny_instance)
        assert not carried.capacity_exceeded

    def test_overload_after_join_heavy_churn_sets_flag(self):
        from repro.core.problem import CAPInstance
        from repro.dynamics.events import ChurnResult
        from repro.world.clients import ClientPopulation
        from tests.conftest import make_tiny_instance

        old_instance = make_tiny_instance(capacities=(45.0, 45.0, 45.0))
        # Zones (0,1)→server0 and (2,3)→server1: 40 ≤ 45 on both, feasible.
        old = Assignment(
            zone_to_server=np.array([0, 0, 1, 1]),
            contact_of_client=np.array([0, 0, 0, 0, 1, 1, 1, 1]),
            algorithm="manual",
            capacity_exceeded=False,
        )
        assert old.is_capacity_feasible(old_instance)
        # Three clients join zone 0: its demand grows to 50, server 0 now
        # carries 70 > 45 — the carried-over assignment is overloaded.
        k_new = 11
        new_zones = np.concatenate([old_instance.client_zones, [0, 0, 0]])
        new_instance = CAPInstance(
            client_server_delays=np.vstack(
                [old_instance.client_server_delays, np.full((3, 3), 60.0)]
            ),
            server_server_delays=old_instance.server_server_delays,
            client_zones=new_zones,
            client_demands=np.full(k_new, 10.0),
            server_capacities=old_instance.server_capacities,
            delay_bound=old_instance.delay_bound,
            num_zones=old_instance.num_zones,
        )
        churn = ChurnResult(
            population=ClientPopulation(nodes=np.zeros(k_new, dtype=np.int64), zones=new_zones),
            old_to_new=np.arange(8, dtype=np.int64),
            new_client_indices=np.array([8, 9, 10]),
        )
        carried = carry_over_assignment(old, churn, new_instance)
        assert carried.capacity_exceeded

    def test_reusable_out_buffer(self, small_scenario, small_instance, churned):
        churn, new_scenario = churned
        old = registry_solve(small_instance, "grez-grec", seed=0)
        new_instance = CAPInstance.from_scenario(new_scenario)
        plain = carry_over_assignment(old, churn, new_instance)
        buffer = np.empty(new_instance.num_clients + 32, dtype=np.int64)
        buffered = carry_over_assignment(old, churn, new_instance, out=buffer)
        np.testing.assert_array_equal(plain.contact_of_client, buffered.contact_of_client)
        assert buffered.contact_of_client.base is buffer  # aliases the scratch buffer
