"""Tests for repro.core.local_search — hill-climbing refinement of assignments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.assignment import Assignment
from repro.core.local_search import LocalSearchResult, refine_assignment
from repro.core.two_phase import solve_cap
from repro.core.validation import validate_assignment


def _bad_assignment(instance) -> Assignment:
    """A deliberately poor but feasible assignment: everything on server 2."""
    zone_to_server = np.full(instance.num_zones, 2, dtype=np.int64)
    contacts = np.full(instance.num_clients, 2, dtype=np.int64)
    return Assignment(zone_to_server=zone_to_server, contact_of_client=contacts, algorithm="bad")


class TestRefineAssignment:
    def test_improves_bad_starting_point(self, tiny_instance):
        start = _bad_assignment(tiny_instance)
        result = refine_assignment(tiny_instance, start)
        assert isinstance(result, LocalSearchResult)
        assert result.final_pqos > result.initial_pqos
        assert result.iterations > 0
        assert result.assignment.pqos(tiny_instance) == pytest.approx(result.final_pqos)
        assert validate_assignment(tiny_instance, result.assignment).ok

    def test_never_worsens(self, small_instance):
        start = solve_cap(small_instance, "grez-grec", seed=0)
        result = refine_assignment(small_instance, start, max_iterations=20)
        assert result.final_pqos >= result.initial_pqos - 1e-12
        assert validate_assignment(small_instance, result.assignment).ok

    def test_respects_capacities_throughout(self, tight_instance):
        start = solve_cap(tight_instance, "ranz-virc", seed=1)
        result = refine_assignment(tight_instance, start)
        assert result.assignment.is_capacity_feasible(tight_instance)

    def test_iteration_budget_honoured(self, tiny_instance):
        start = _bad_assignment(tiny_instance)
        result = refine_assignment(tiny_instance, start, max_iterations=1)
        assert result.iterations <= 1

    def test_neighbourhood_restriction(self, tiny_instance):
        start = _bad_assignment(tiny_instance)
        zone_only = refine_assignment(
            tiny_instance, start, consider_contact_moves=False
        )
        contact_only = refine_assignment(
            tiny_instance, start, consider_zone_moves=False
        )
        both = refine_assignment(tiny_instance, start)
        assert both.final_pqos >= max(zone_only.final_pqos, contact_only.final_pqos) - 1e-12
        # Zone moves alone can already fix the bad placement of zones 0-2.
        assert zone_only.final_pqos > start.pqos(tiny_instance)

    def test_algorithm_name_and_metadata(self, tiny_instance):
        start = _bad_assignment(tiny_instance)
        result = refine_assignment(tiny_instance, start)
        assert result.assignment.algorithm == "bad+ls"
        assert result.assignment.metadata["local_search_iterations"] == result.iterations

    def test_fixed_point_on_already_optimal_tiny_instance(self, tiny_instance):
        start = solve_cap(tiny_instance, "grez-grec", seed=0)
        assert start.pqos(tiny_instance) == pytest.approx(1.0)
        result = refine_assignment(tiny_instance, start)
        assert result.iterations == 0
        np.testing.assert_array_equal(
            result.assignment.contact_of_client, start.contact_of_client
        )

    def test_unknown_backend_rejected(self, tiny_instance):
        start = _bad_assignment(tiny_instance)
        with pytest.raises(ValueError):
            refine_assignment(tiny_instance, start, backend="quantum")


def _assert_backends_agree(instance, start, **kwargs):
    loop = refine_assignment(instance, start, backend="loop", **kwargs)
    vector = refine_assignment(instance, start, backend="vectorized", **kwargs)
    assert loop.iterations == vector.iterations
    np.testing.assert_array_equal(
        loop.assignment.zone_to_server, vector.assignment.zone_to_server
    )
    np.testing.assert_array_equal(
        loop.assignment.contact_of_client, vector.assignment.contact_of_client
    )
    assert loop.final_pqos == pytest.approx(vector.final_pqos)
    return loop, vector


class TestVectorizedLoopEquivalence:
    """The vectorized backend replays the loop backend's move decisions."""

    def test_bad_start_tiny_instance(self, tiny_instance):
        _assert_backends_agree(tiny_instance, _bad_assignment(tiny_instance))

    def test_tight_capacities(self, tight_instance):
        _assert_backends_agree(tight_instance, _bad_assignment(tight_instance))

    def test_overloaded_instance(self, overloaded_instance):
        _assert_backends_agree(overloaded_instance, _bad_assignment(overloaded_instance))

    @pytest.mark.parametrize("kwargs", [
        {"consider_contact_moves": False},
        {"consider_zone_moves": False},
        {"max_iterations": 1},
        {"max_iterations": 3},
    ])
    def test_restricted_neighbourhoods(self, tiny_instance, kwargs):
        _assert_backends_agree(tiny_instance, _bad_assignment(tiny_instance), **kwargs)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("algorithm", ["ranz-virc", "grez-grec"])
    def test_generated_scenarios(self, seed, algorithm):
        from repro.core.problem import CAPInstance
        from repro.world.scenario import build_scenario
        from tests.conftest import make_small_config

        config = make_small_config(num_clients=100, num_zones=8)
        instance = CAPInstance.from_scenario(build_scenario(config, seed=seed))
        start = solve_cap(instance, algorithm, seed=seed)
        _assert_backends_agree(instance, start, max_iterations=30)

    def test_default_backend_is_vectorized(self, tiny_instance):
        start = _bad_assignment(tiny_instance)
        default = refine_assignment(tiny_instance, start)
        vector = refine_assignment(tiny_instance, start, backend="vectorized")
        np.testing.assert_array_equal(
            default.assignment.contact_of_client, vector.assignment.contact_of_client
        )
        assert default.iterations == vector.iterations


class TestWarmStartRefine:
    """The warm-start (incremental-accumulator) backend replays the vectorized
    backend's move decisions while maintaining delays/loads across moves."""

    def _assert_matches_vectorized(self, instance, start, **kwargs):
        from repro.core.local_search import warm_start_refine

        vector = refine_assignment(instance, start, **kwargs)
        warm = warm_start_refine(
            instance,
            start,
            consider_zone_moves=kwargs.get("consider_zone_moves", True),
            consider_contact_moves=kwargs.get("consider_contact_moves", True),
            max_iterations=kwargs.get("max_iterations", 200),
        )
        assert warm.iterations == vector.iterations
        np.testing.assert_array_equal(
            warm.assignment.zone_to_server, vector.assignment.zone_to_server
        )
        np.testing.assert_array_equal(
            warm.assignment.contact_of_client, vector.assignment.contact_of_client
        )
        return warm

    def test_bad_start_full_neighbourhood(self, tiny_instance):
        warm = self._assert_matches_vectorized(tiny_instance, _bad_assignment(tiny_instance))
        assert warm.final_pqos > warm.initial_pqos

    def test_contact_moves_only(self, tiny_instance):
        self._assert_matches_vectorized(
            tiny_instance, _bad_assignment(tiny_instance), consider_zone_moves=False
        )

    def test_tight_capacities(self, tight_instance):
        self._assert_matches_vectorized(tight_instance, _bad_assignment(tight_instance))

    @pytest.mark.parametrize("seed", [0, 1])
    def test_generated_scenarios(self, seed):
        from repro.core.problem import CAPInstance
        from repro.world.scenario import build_scenario
        from tests.conftest import make_small_config

        config = make_small_config(num_clients=100, num_zones=8)
        instance = CAPInstance.from_scenario(build_scenario(config, seed=seed))
        start = solve_cap(instance, "ranz-virc", seed=seed)
        self._assert_matches_vectorized(instance, start, max_iterations=30)

    def test_never_worsens_and_records_metadata(self, tiny_instance):
        from repro.core.local_search import warm_start_refine

        start = _bad_assignment(tiny_instance)
        result = warm_start_refine(tiny_instance, start)
        assert result.final_pqos >= result.initial_pqos
        assert result.assignment.algorithm.endswith("+ws")
        assert result.assignment.metadata["warm_start_iterations"] == result.iterations

    def test_capacity_flag_recomputed(self, tiny_instance):
        """A stale capacity_exceeded flag is cleared when loads actually fit."""
        from repro.core.local_search import warm_start_refine

        start = Assignment(
            zone_to_server=_bad_assignment(tiny_instance).zone_to_server,
            contact_of_client=_bad_assignment(tiny_instance).contact_of_client,
            algorithm="bad",
            capacity_exceeded=True,  # stale: server 2 easily fits everything
        )
        result = warm_start_refine(tiny_instance, start)
        assert not result.assignment.capacity_exceeded
