"""Tests for repro.world.bandwidth — the quadratic bandwidth model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.world.bandwidth import DEFAULT_FRAME_RATE, DEFAULT_MESSAGE_BYTES, BandwidthModel


class TestDefaults:
    def test_paper_defaults(self):
        assert DEFAULT_FRAME_RATE == 25.0
        assert DEFAULT_MESSAGE_BYTES == 100.0

    def test_stream_bps(self):
        # 25 msg/s × 100 B × 8 bit = 20 kbit/s per stream.
        assert BandwidthModel().stream_bps == pytest.approx(20_000.0)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BandwidthModel(frame_rate=0)
        with pytest.raises(ValueError):
            BandwidthModel(message_bytes=-1)


class TestClientTargetDemands:
    def test_demand_grows_with_zone_population(self):
        model = BandwidthModel()
        zones = np.array([0, 0, 0, 1])  # zone 0 has 3 clients, zone 1 has 1
        demands = model.client_target_demands(zones, num_zones=2)
        # client in zone 0: stream * (3 + 1); client in zone 1: stream * (1 + 1)
        assert demands[0] == pytest.approx(model.stream_bps * 4)
        assert demands[3] == pytest.approx(model.stream_bps * 2)

    def test_all_strictly_positive(self):
        model = BandwidthModel()
        demands = model.client_target_demands(np.array([0, 1, 2]), num_zones=5)
        assert (demands > 0).all()

    def test_empty_population(self):
        model = BandwidthModel()
        assert model.client_target_demands(np.array([], dtype=int), 3).size == 0

    def test_zone_out_of_range(self):
        with pytest.raises(ValueError):
            BandwidthModel().client_target_demands(np.array([5]), num_zones=3)


class TestZoneDemands:
    def test_quadratic_growth(self):
        model = BandwidthModel()
        # p clients in one zone → stream * p * (p + 1).
        for p in (1, 2, 5, 10):
            zones = np.zeros(p, dtype=int)
            demand = model.zone_demands(zones, num_zones=1)[0]
            assert demand == pytest.approx(model.stream_bps * p * (p + 1))

    def test_zone_demand_equals_sum_of_client_demands(self):
        model = BandwidthModel()
        rng = np.random.default_rng(0)
        zones = rng.integers(0, 6, size=40)
        per_client = model.client_target_demands(zones, 6)
        per_zone = model.zone_demands(zones, 6)
        summed = np.zeros(6)
        np.add.at(summed, zones, per_client)
        np.testing.assert_allclose(per_zone, summed)

    def test_empty_zone_has_zero_demand(self):
        model = BandwidthModel()
        demands = model.zone_demands(np.array([0, 0]), num_zones=3)
        assert demands[1] == 0.0 and demands[2] == 0.0


class TestForwardingAndTotals:
    def test_forwarding_is_double(self):
        model = BandwidthModel()
        target = np.array([100.0, 250.0])
        np.testing.assert_allclose(model.forwarding_demands(target), [200.0, 500.0])

    def test_forwarding_rejects_negative(self):
        with pytest.raises(ValueError):
            BandwidthModel().forwarding_demands(np.array([-1.0]))

    def test_total_demand(self):
        model = BandwidthModel()
        zones = np.array([0, 0, 1])
        assert model.total_demand(zones, 2) == pytest.approx(model.zone_demands(zones, 2).sum())

    def test_double_frame_rate_doubles_demand(self):
        zones = np.array([0, 0, 1])
        base = BandwidthModel().total_demand(zones, 2)
        double = BandwidthModel(frame_rate=50.0).total_demand(zones, 2)
        assert double == pytest.approx(2 * base)
