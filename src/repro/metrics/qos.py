"""Interactivity (QoS) metrics.

The paper's primary performance measure is ``pQoS`` — the fraction of clients
whose round-trip communication delay to their target server is within the DVE
delay bound ``D``.  This module provides pQoS plus the per-client delay vector
and a few derivative statistics (mean excess delay of the clients without QoS,
which Figure 4's CDF visualises).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import CAPInstance

__all__ = ["QoSReport", "pqos", "client_delays", "qos_report"]


def client_delays(instance: CAPInstance, assignment: Assignment) -> np.ndarray:
    """Per-client communication delay (ms) under an assignment."""
    return assignment.client_delays(instance)


def pqos(instance: CAPInstance, assignment: Assignment) -> float:
    """Fraction of clients with QoS (delay within the bound ``D``)."""
    return assignment.pqos(instance)


@dataclass(frozen=True)
class QoSReport:
    """Summary of the interactivity of one assignment.

    Attributes
    ----------
    pqos:
        Fraction of clients within the delay bound.
    num_clients / num_with_qos:
        Absolute counts.
    mean_delay_ms / median_delay_ms / p95_delay_ms / max_delay_ms:
        Distribution statistics of per-client delays.
    mean_excess_ms:
        Mean amount by which clients *without* QoS exceed the bound (0 when
        every client has QoS).
    forwarded_fraction:
        Fraction of clients whose contact server differs from their target
        server (i.e. clients exploiting the inter-server mesh).
    """

    pqos: float
    num_clients: int
    num_with_qos: int
    mean_delay_ms: float
    median_delay_ms: float
    p95_delay_ms: float
    max_delay_ms: float
    mean_excess_ms: float
    forwarded_fraction: float


def qos_report(instance: CAPInstance, assignment: Assignment) -> QoSReport:
    """Compute a :class:`QoSReport` for an assignment."""
    delays = assignment.client_delays(instance)
    if delays.size == 0:
        return QoSReport(
            pqos=1.0,
            num_clients=0,
            num_with_qos=0,
            mean_delay_ms=0.0,
            median_delay_ms=0.0,
            p95_delay_ms=0.0,
            max_delay_ms=0.0,
            mean_excess_ms=0.0,
            forwarded_fraction=0.0,
        )
    with_qos = delays <= instance.delay_bound
    without = delays[~with_qos]
    forwarded = assignment.forwarded_mask(instance)
    return QoSReport(
        pqos=float(with_qos.mean()),
        num_clients=int(delays.size),
        num_with_qos=int(with_qos.sum()),
        mean_delay_ms=float(delays.mean()),
        median_delay_ms=float(np.median(delays)),
        p95_delay_ms=float(np.percentile(delays, 95)),
        max_delay_ms=float(delays.max()),
        mean_excess_ms=float((without - instance.delay_bound).mean()) if without.size else 0.0,
        forwarded_fraction=float(forwarded.mean()),
    )
