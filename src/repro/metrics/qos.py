"""Interactivity (QoS) metrics.

The paper's primary performance measure is ``pQoS`` — the fraction of clients
whose round-trip communication delay to their target server is within the DVE
delay bound ``D``.  This module provides pQoS plus the per-client delay vector
and a few derivative statistics (mean excess delay of the clients without QoS,
which Figure 4's CDF visualises).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import CAPInstance

__all__ = ["QoSReport", "pqos", "client_delays", "qos_report"]


def client_delays(instance: CAPInstance, assignment: Assignment) -> np.ndarray:
    """Per-client communication delay (ms) under an assignment."""
    return assignment.client_delays(instance)


def pqos(instance: CAPInstance, assignment: Assignment) -> float:
    """Fraction of clients with QoS (delay within the bound ``D``)."""
    return assignment.pqos(instance)


@dataclass(frozen=True)
class QoSReport:
    """Summary of the interactivity of one assignment.

    Attributes
    ----------
    pqos:
        Fraction of clients within the delay bound.
    num_clients / num_with_qos:
        Absolute counts.
    mean_delay_ms / median_delay_ms / p95_delay_ms / max_delay_ms:
        Distribution statistics of per-client delays.
    mean_excess_ms:
        Mean amount by which clients *without* QoS exceed the bound (0 when
        every client has QoS).
    forwarded_fraction:
        Fraction of clients whose contact server differs from their target
        server (i.e. clients exploiting the inter-server mesh).
    """

    pqos: float
    num_clients: int
    num_with_qos: int
    mean_delay_ms: float
    median_delay_ms: float
    p95_delay_ms: float
    max_delay_ms: float
    mean_excess_ms: float
    forwarded_fraction: float


def _selection_stats(delays: np.ndarray) -> tuple:
    """Median and 95th percentile of ``delays`` via selection, not a full sort.

    A single :func:`np.partition` call places the (at most four) order
    statistics both quantiles need, turning the O(k log k) sort inside
    ``np.median`` / ``np.percentile`` into O(k) selection.  The results are
    bitwise-identical to numpy's linear-interpolation quantiles: the same
    order statistics are combined with the same lerp, including numpy's
    ``t >= 0.5`` rewrite ``b - (b - a) * (1 - t)`` that keeps the
    interpolation exact as ``t`` approaches 1.
    """
    n = delays.size
    med_lo, med_hi = (n - 1) // 2, n // 2
    virtual = 0.95 * (n - 1)
    p_lo = int(virtual)
    p_hi = min(p_lo + 1, n - 1)
    part = np.partition(delays, sorted({med_lo, med_hi, p_lo, p_hi}))
    median = 0.5 * (part[med_lo] + part[med_hi])
    t = virtual - p_lo
    a, b = part[p_lo], part[p_hi]
    p95 = b - (b - a) * (1.0 - t) if t >= 0.5 else a + (b - a) * t
    return float(median), float(p95)


def qos_report(instance: CAPInstance, assignment: Assignment) -> QoSReport:
    """Compute a :class:`QoSReport` for an assignment."""
    delays = assignment.client_delays(instance)
    if delays.size == 0:
        return QoSReport(
            pqos=1.0,
            num_clients=0,
            num_with_qos=0,
            mean_delay_ms=0.0,
            median_delay_ms=0.0,
            p95_delay_ms=0.0,
            max_delay_ms=0.0,
            mean_excess_ms=0.0,
            forwarded_fraction=0.0,
        )
    mask = delays <= instance.delay_bound
    num_with_qos = int(np.count_nonzero(mask))
    np.logical_not(mask, out=mask)  # reuse the buffer: mask now flags clients without QoS
    without = delays[mask]
    forwarded = assignment.forwarded_mask(instance)
    median_delay, p95_delay = _selection_stats(delays)
    return QoSReport(
        pqos=num_with_qos / delays.size,
        num_clients=int(delays.size),
        num_with_qos=num_with_qos,
        mean_delay_ms=float(delays.mean()),
        median_delay_ms=median_delay,
        p95_delay_ms=p95_delay,
        max_delay_ms=float(delays.max()),
        mean_excess_ms=float((without - instance.delay_bound).mean()) if without.size else 0.0,
        forwarded_fraction=float(forwarded.mean()),
    )
