"""Aggregation of metrics across simulation runs.

Every number the paper reports is "obtained by averaging the results of 50
simulation runs"; this module provides the small statistics containers the
experiment harness uses to aggregate per-run pQoS / resource-utilisation
values into means with dispersion estimates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Sequence

import numpy as np

__all__ = ["RunningStats", "AggregateStat", "aggregate", "GroupedRunningStats"]


@dataclass
class RunningStats:
    """Numerically stable streaming mean / variance (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0

    def add(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def extend(self, values: Iterable[float]) -> None:
        """Add many observations."""
        for value in values:
            self.add(float(value))

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 for fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return float(np.sqrt(self.variance))

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count == 0:
            return 0.0
        return self.std / np.sqrt(self.count)

    def merge(self, other: "RunningStats") -> None:
        """Fold another accumulator into this one (Chan et al. parallel combine).

        Lets per-worker / per-run partial statistics be combined without ever
        materialising the underlying observations.
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count, self.mean, self._m2 = other.count, other.mean, other._m2
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean += delta * other.count / total
        self.count = total

    def finalize(self) -> "AggregateStat":
        """Freeze into an :class:`AggregateStat`."""
        return AggregateStat(mean=self.mean, std=self.std, stderr=self.stderr, count=self.count)


@dataclass(frozen=True)
class AggregateStat:
    """Mean with dispersion, over a set of simulation runs."""

    mean: float
    std: float
    stderr: float
    count: int

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of an approximate 95 % confidence interval (normal)."""
        return 1.96 * self.stderr

    def __format__(self, spec: str) -> str:
        spec = spec or ".3f"
        return f"{self.mean:{spec}} ± {self.std:{spec}}"


def aggregate(values: Sequence[float]) -> AggregateStat:
    """Aggregate a sequence of per-run values into an :class:`AggregateStat`."""
    stats = RunningStats()
    stats.extend(values)
    return stats.finalize()


@dataclass
class GroupedRunningStats:
    """Streaming per-key statistics for record streams.

    The longitudinal ``simulate`` pipeline yields one
    :class:`~repro.dynamics.engine.EpochRecord` at a time; this accumulator
    aggregates any metric keyed by e.g. ``(algorithm, epoch)`` without ever
    holding the records.  NaN observations (measurement points a policy did
    not compute) are skipped.
    """

    _stats: Dict[Hashable, RunningStats] = field(default_factory=dict)

    def add(self, key: Hashable, value: float) -> None:
        """Add one observation under ``key`` (NaN is ignored)."""
        value = float(value)
        if np.isnan(value):
            return
        stats = self._stats.get(key)
        if stats is None:
            stats = self._stats[key] = RunningStats()
        stats.add(value)

    def keys(self) -> List[Hashable]:
        """Keys in first-seen order."""
        return list(self._stats)

    def count(self, key: Hashable) -> int:
        """Number of (non-NaN) observations recorded under ``key``."""
        stats = self._stats.get(key)
        return 0 if stats is None else stats.count

    def stat(self, key: Hashable) -> AggregateStat:
        """Frozen statistics for one key (zero-count stat for unseen keys)."""
        stats = self._stats.get(key)
        if stats is None:
            return AggregateStat(mean=float("nan"), std=0.0, stderr=0.0, count=0)
        return stats.finalize()

    def merge(self, other: "GroupedRunningStats") -> None:
        """Fold another grouped accumulator into this one, key by key."""
        for key, stats in other._stats.items():
            mine = self._stats.get(key)
            if mine is None:
                mine = self._stats[key] = RunningStats()
            mine.merge(stats)

    def finalize(self) -> Dict[Hashable, AggregateStat]:
        """Freeze every key into an :class:`AggregateStat`."""
        return {key: stats.finalize() for key, stats in self._stats.items()}
