"""Aggregation of metrics across simulation runs.

Every number the paper reports is "obtained by averaging the results of 50
simulation runs"; this module provides the small statistics containers the
experiment harness uses to aggregate per-run pQoS / resource-utilisation
values into means with dispersion estimates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["RunningStats", "AggregateStat", "aggregate"]


@dataclass
class RunningStats:
    """Numerically stable streaming mean / variance (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0

    def add(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)

    def extend(self, values: Iterable[float]) -> None:
        """Add many observations."""
        for value in values:
            self.add(float(value))

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 for fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std(self) -> float:
        """Sample standard deviation."""
        return float(np.sqrt(self.variance))

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count == 0:
            return 0.0
        return self.std / np.sqrt(self.count)

    def finalize(self) -> "AggregateStat":
        """Freeze into an :class:`AggregateStat`."""
        return AggregateStat(mean=self.mean, std=self.std, stderr=self.stderr, count=self.count)


@dataclass(frozen=True)
class AggregateStat:
    """Mean with dispersion, over a set of simulation runs."""

    mean: float
    std: float
    stderr: float
    count: int

    @property
    def ci95_halfwidth(self) -> float:
        """Half-width of an approximate 95 % confidence interval (normal)."""
        return 1.96 * self.stderr

    def __format__(self, spec: str) -> str:
        spec = spec or ".3f"
        return f"{self.mean:{spec}} ± {self.std:{spec}}"


def aggregate(values: Sequence[float]) -> AggregateStat:
    """Aggregate a sequence of per-run values into an :class:`AggregateStat`."""
    stats = RunningStats()
    stats.extend(values)
    return stats.finalize()
