"""Server-resource (bandwidth) metrics.

The paper's secondary performance measure is the server resource utilisation
``R``: the total bandwidth consumed across all servers divided by the total
system capacity.  The bracketed numbers in its Tables 1 and 4 and the right
panels of Figures 5 and 6 report this quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import Assignment
from repro.core.problem import CAPInstance
from repro.world.servers import MBPS

__all__ = ["ResourceReport", "resource_utilization", "resource_report"]


def resource_utilization(instance: CAPInstance, assignment: Assignment) -> float:
    """Total consumed bandwidth divided by total capacity (the paper's R)."""
    return assignment.resource_utilization(instance)


@dataclass(frozen=True)
class ResourceReport:
    """Summary of server bandwidth consumption under an assignment.

    Attributes
    ----------
    utilization:
        Total load / total capacity (the paper's ``R``).
    total_load_mbps / total_capacity_mbps:
        Absolute totals.
    max_server_utilization:
        Highest per-server load/capacity ratio (a load-balance indicator).
    overloaded_servers:
        Number of servers whose load exceeds their capacity.
    forwarding_overhead_mbps:
        Extra bandwidth consumed by contact-server forwarding (``RC`` terms);
        zero for the VirC-based algorithms.
    """

    utilization: float
    total_load_mbps: float
    total_capacity_mbps: float
    max_server_utilization: float
    overloaded_servers: int
    forwarding_overhead_mbps: float


def resource_report(instance: CAPInstance, assignment: Assignment) -> ResourceReport:
    """Compute a :class:`ResourceReport` for an assignment."""
    loads = assignment.server_loads(instance)
    capacities = instance.server_capacities
    per_server_util = loads / capacities
    forwarded = assignment.forwarded_mask(instance)
    forwarding_overhead = float((2.0 * instance.client_demands[forwarded]).sum())
    return ResourceReport(
        utilization=float(loads.sum() / capacities.sum()),
        total_load_mbps=float(loads.sum() / MBPS),
        total_capacity_mbps=float(capacities.sum() / MBPS),
        max_server_utilization=float(per_server_util.max()) if loads.size else 0.0,
        overloaded_servers=int(np.sum(loads > capacities * (1 + 1e-9))),
        forwarding_overhead_mbps=forwarding_overhead / MBPS,
    )
