"""Performance metrics: interactivity (pQoS), resource utilisation, delay CDFs.

These are the two performance measures analysed throughout the paper's
Section 4 ("the percentage of clients with QoS ... denoted as pQoS, and the
server resource utilization ... denoted as R") plus the delay CDF of Figure 4
and the multi-run aggregation statistics.
"""

from repro.metrics.cdf import EmpiricalCDF, delay_cdf, merge_cdfs
from repro.metrics.qos import QoSReport, client_delays, pqos, qos_report
from repro.metrics.recovery import RecoveryReport, recovery_report
from repro.metrics.resources import ResourceReport, resource_report, resource_utilization
from repro.metrics.summary import AggregateStat, GroupedRunningStats, RunningStats, aggregate

__all__ = [
    "EmpiricalCDF",
    "delay_cdf",
    "merge_cdfs",
    "QoSReport",
    "client_delays",
    "pqos",
    "qos_report",
    "RecoveryReport",
    "recovery_report",
    "ResourceReport",
    "resource_report",
    "resource_utilization",
    "AggregateStat",
    "GroupedRunningStats",
    "RunningStats",
    "aggregate",
]
