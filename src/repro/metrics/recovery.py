"""Recovery metrics for incident scenarios.

When a disturbance (outage, flash crowd, link degradation, ...) hits a
running world, the interesting questions are not the steady-state pQoS but
how deep the service dipped, how much client-time was spent in the degraded
pool, and how many epochs it took to climb back to the pre-incident level.
This module turns a per-epoch :class:`~repro.dynamics.engine.EpochRecord`
stream into a :class:`RecoveryReport` answering exactly those questions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

__all__ = ["RecoveryReport", "recovery_report"]


@dataclass(frozen=True)
class RecoveryReport:
    """Summary of an incident's impact on a per-epoch record stream.

    Attributes
    ----------
    baseline_pqos:
        Mean adopted pQoS over the pre-incident baseline window.
    time_to_recover:
        Epochs from first impact until the world is healthy again (adopted
        pQoS back within tolerance of baseline AND the degraded pool empty).
        Zero when no impact was observed; ``num_epochs - first_impact`` when
        the run ended still degraded (see ``recovered``).
    dip_depth:
        Baseline pQoS minus the minimum adopted pQoS over the run.
    dip_area:
        Sum over epochs of ``max(0, baseline - pqos_adopted)`` — the
        integrated pQoS shortfall (epochs x pQoS fraction).
    degraded_client_epochs:
        Sum of ``clients_degraded`` across epochs: total client-epochs spent
        shed to the degraded pool.
    max_clients_degraded / max_capacity_deficit:
        Worst-epoch pool size and pre-shedding demand overshoot (bps).
    first_impact:
        Epoch index of the first degraded or below-baseline epoch
        (``None`` when the incident never registered).
    recovered:
        True when the world returned to health before the records ran out.
    """

    baseline_pqos: float
    time_to_recover: int
    dip_depth: float
    dip_area: float
    degraded_client_epochs: int
    max_clients_degraded: int
    max_capacity_deficit: float
    first_impact: Optional[int]
    recovered: bool


def recovery_report(
    records: Sequence[object],
    algorithm: Optional[str] = None,
    baseline_epochs: int = 1,
    tolerance: float = 0.01,
) -> RecoveryReport:
    """Compute a :class:`RecoveryReport` from per-epoch records.

    ``records`` is any sequence of :class:`EpochRecord`-like objects carrying
    ``epoch``, ``algorithm``, ``pqos_adopted``, ``clients_degraded`` and
    ``capacity_deficit``.  When ``algorithm`` is given, only that algorithm's
    records are considered (a simulator run interleaves one record per
    algorithm per epoch).  ``baseline_epochs`` earliest epochs define the
    healthy reference level and ``tolerance`` is the pQoS slack allowed while
    still counting as recovered.
    """
    if baseline_epochs < 1:
        raise ValueError("baseline_epochs must be >= 1")
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    rows = [r for r in records if algorithm is None or r.algorithm == algorithm]
    rows.sort(key=lambda r: r.epoch)
    if not rows:
        suffix = f" for algorithm {algorithm!r}" if algorithm else ""
        raise ValueError("no records to analyse" + suffix)

    baseline_rows = rows[: min(baseline_epochs, len(rows))]
    baseline = sum(r.pqos_adopted for r in baseline_rows) / len(baseline_rows)
    floor = baseline - tolerance

    first_impact: Optional[int] = None
    recovery_index: Optional[int] = None
    dip_depth = 0.0
    dip_area = 0.0
    degraded_client_epochs = 0
    max_degraded = 0
    max_deficit = 0.0
    for i, row in enumerate(rows):
        degraded = int(getattr(row, "clients_degraded", 0))
        deficit = float(getattr(row, "capacity_deficit", 0.0))
        degraded_client_epochs += degraded
        max_degraded = max(max_degraded, degraded)
        max_deficit = max(max_deficit, deficit)
        shortfall = baseline - row.pqos_adopted
        dip_depth = max(dip_depth, shortfall)
        dip_area += max(0.0, shortfall)
        impacted = degraded > 0 or row.pqos_adopted < floor
        if impacted:
            if first_impact is None:
                first_impact = i
            recovery_index = None
        elif first_impact is not None and recovery_index is None:
            recovery_index = i

    if first_impact is None:
        return RecoveryReport(
            baseline_pqos=baseline,
            time_to_recover=0,
            dip_depth=dip_depth,
            dip_area=dip_area,
            degraded_client_epochs=0,
            max_clients_degraded=0,
            max_capacity_deficit=max_deficit,
            first_impact=None,
            recovered=True,
        )
    recovered = recovery_index is not None
    end = recovery_index if recovered else len(rows)
    return RecoveryReport(
        baseline_pqos=baseline,
        time_to_recover=end - first_impact,
        dip_depth=dip_depth,
        dip_area=dip_area,
        degraded_client_epochs=degraded_client_epochs,
        max_clients_degraded=max_degraded,
        max_capacity_deficit=max_deficit,
        first_impact=first_impact,
        recovered=recovered,
    )
