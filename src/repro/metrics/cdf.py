"""Empirical cumulative distribution functions of per-client delays.

Figure 4 of the paper plots the CDF of the delays "from all clients ... to
their target server" for each algorithm over the delay range [250, 500] ms.
:func:`delay_cdf` computes the same curve: for a grid of delay thresholds it
reports the fraction of clients whose delay does not exceed the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["EmpiricalCDF", "delay_cdf", "merge_cdfs"]


@dataclass(frozen=True)
class EmpiricalCDF:
    """An empirical CDF sampled on a fixed grid.

    Attributes
    ----------
    grid:
        The thresholds at which the CDF is evaluated (ms).
    values:
        ``P(delay <= grid[i])`` for each grid point; non-decreasing in ``i``.
    num_samples:
        Number of underlying samples.
    """

    grid: np.ndarray
    values: np.ndarray
    num_samples: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "grid", np.asarray(self.grid, dtype=np.float64))
        object.__setattr__(self, "values", np.asarray(self.values, dtype=np.float64))
        if self.grid.shape != self.values.shape:
            raise ValueError("grid and values must have the same shape")
        if self.grid.ndim != 1:
            raise ValueError("grid must be 1-D")
        if np.any(np.diff(self.grid) < 0):
            raise ValueError("grid must be non-decreasing")
        if np.any(self.values < -1e-12) or np.any(self.values > 1 + 1e-12):
            raise ValueError("CDF values must lie in [0, 1]")

    def at(self, threshold: float) -> float:
        """CDF value at an arbitrary threshold (step interpolation)."""
        idx = np.searchsorted(self.grid, threshold, side="right") - 1
        if idx < 0:
            return 0.0
        return float(self.values[min(idx, self.values.size - 1)])

    def as_rows(self) -> list[tuple[float, float]]:
        """(threshold, value) rows for CSV / table output."""
        return [(float(g), float(v)) for g, v in zip(self.grid, self.values)]


def delay_cdf(
    delays: np.ndarray,
    grid: np.ndarray | None = None,
    lo: float = 250.0,
    hi: float = 500.0,
    num_points: int = 26,
) -> EmpiricalCDF:
    """Empirical CDF of per-client delays on a regular grid.

    With ``grid`` omitted, a regular grid of ``num_points`` thresholds between
    ``lo`` and ``hi`` (the x-axis of the paper's Figure 4) is used.
    """
    delays = np.asarray(delays, dtype=np.float64)
    if delays.ndim != 1:
        raise ValueError("delays must be a 1-D array")
    if grid is None:
        if hi <= lo:
            raise ValueError("hi must exceed lo")
        grid = np.linspace(lo, hi, num_points)
    else:
        grid = np.asarray(grid, dtype=np.float64)
    if delays.size == 0:
        return EmpiricalCDF(grid=grid, values=np.ones_like(grid), num_samples=0)
    sorted_delays = np.sort(delays)
    counts = np.searchsorted(sorted_delays, grid, side="right")
    return EmpiricalCDF(grid=grid, values=counts / delays.size, num_samples=int(delays.size))


def merge_cdfs(cdfs: list[EmpiricalCDF]) -> EmpiricalCDF:
    """Average several CDFs sampled on the same grid (multi-run averaging).

    The result's value at each grid point is the sample-size-weighted mean of
    the input CDFs, i.e. the CDF of the pooled sample.
    """
    if not cdfs:
        raise ValueError("merge_cdfs needs at least one CDF")
    grid = cdfs[0].grid
    for cdf in cdfs[1:]:
        if cdf.grid.shape != grid.shape or not np.allclose(cdf.grid, grid):
            raise ValueError("all CDFs must share the same grid")
    total = sum(c.num_samples for c in cdfs)
    if total == 0:
        return EmpiricalCDF(grid=grid, values=np.ones_like(grid), num_samples=0)
    weighted = sum(c.values * c.num_samples for c in cdfs) / total
    return EmpiricalCDF(grid=grid, values=weighted, num_samples=total)
