"""repro — reproduction of "Efficient Client-to-Server Assignments for
Distributed Virtual Environments" (Ta & Zhou, IPDPS 2006).

The package implements the paper's two-phase client assignment approach for
geographically distributed DVE server architectures (GDSA) together with every
substrate the evaluation depends on:

* :mod:`repro.topology` — BRITE-like Internet topology generators and the
  round-trip delay model (500 ms max RTT, 50 %-latency inter-server mesh).
* :mod:`repro.world` — servers, zones, clients, bandwidth model and the
  scenario builder implementing the paper's Section 4.1 parameters.
* :mod:`repro.core` — the client assignment problem (CAP), the IAP/RAP cost
  metrics, the RanZ / GreZ / VirC / GreC heuristics, the four two-phase
  compositions and the exact MILP baseline.
* :mod:`repro.baselines` — related-work baselines (delay-oblivious load
  balancing, nearest-server selection, centralised deployment).
* :mod:`repro.dynamics` — join/leave/move churn and reassignment policies.
* :mod:`repro.measurement` — King / IDMaps delay-estimation error models.
* :mod:`repro.metrics` — pQoS, resource utilisation, delay CDFs.
* :mod:`repro.experiments` — one driver per table / figure of the paper.

Quickstart
----------
>>> from repro import DVEConfig, build_scenario, CAPInstance, solve_cap
>>> scenario = build_scenario(DVEConfig(num_servers=5, num_zones=15,
...                                     num_clients=200, total_capacity_mbps=100),
...                           seed=42)
>>> instance = CAPInstance.from_scenario(scenario)
>>> assignment = solve_cap(instance, "grez-grec", seed=0)
>>> round(assignment.pqos(instance), 2)  # doctest: +SKIP
0.93
"""

from repro.core import (
    Assignment,
    CAPInstance,
    TwoPhaseAlgorithm,
    ZoneAssignment,
    assign_contacts_greedy,
    assign_contacts_virtual,
    assign_zones_greedy,
    assign_zones_random,
    available_algorithms,
    solve_cap,
    solve_cap_optimal,
    validate_assignment,
)
from repro.metrics import pqos, qos_report, resource_report, resource_utilization
from repro.world import DVEConfig, DVEScenario, build_scenario

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # world
    "DVEConfig",
    "DVEScenario",
    "build_scenario",
    # core problem / solutions
    "CAPInstance",
    "Assignment",
    "ZoneAssignment",
    "TwoPhaseAlgorithm",
    # algorithms
    "assign_zones_random",
    "assign_zones_greedy",
    "assign_contacts_virtual",
    "assign_contacts_greedy",
    "available_algorithms",
    "solve_cap",
    "solve_cap_optimal",
    "validate_assignment",
    # metrics
    "pqos",
    "qos_report",
    "resource_utilization",
    "resource_report",
]
