"""Network-delay estimation error models.

In practice the assignment algorithms do not have perfect delay information;
they rely on scalable estimation services such as King (recursive DNS probing)
or IDMaps (tracer infrastructure).  The paper models their inaccuracy with a
multiplicative error factor ``e``: "assuming the perfect value of delay is d,
then the delay value used in the simulation is uniformly distributed in the
range [d/e, d*e]", with ``e = 1.2`` representing King and ``e = 2``
representing IDMaps (Table 4).

:func:`apply_multiplicative_error` perturbs an arbitrary delay matrix this
way; :class:`ErrorModel` is the declarative description embedded in experiment
configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_generator

__all__ = [
    "ErrorModel",
    "PERFECT",
    "KING",
    "IDMAPS",
    "apply_multiplicative_error",
]


@dataclass(frozen=True)
class ErrorModel:
    """Multiplicative delay-estimation error with factor ``e >= 1``.

    ``e = 1`` means perfect information.  ``name`` identifies the emulated
    measurement service in reports.
    """

    factor: float = 1.0
    name: str = "perfect"

    def __post_init__(self) -> None:
        if not np.isfinite(self.factor) or self.factor < 1.0:
            raise ValueError(f"error factor must be >= 1, got {self.factor}")

    @property
    def is_perfect(self) -> bool:
        """True when this model introduces no error."""
        return self.factor == 1.0

    def perturb(self, delays: np.ndarray, seed: SeedLike = None) -> np.ndarray:
        """Return a perturbed copy of ``delays`` (see module docstring)."""
        return apply_multiplicative_error(delays, self.factor, seed=seed)


#: Perfect delay knowledge (the assumption behind Tables 1 and 3).
PERFECT = ErrorModel(1.0, "perfect")
#: King-like accuracy (error factor 1.2).
KING = ErrorModel(1.2, "king")
#: IDMaps-like accuracy (error factor 2.0).
IDMAPS = ErrorModel(2.0, "idmaps")


def apply_multiplicative_error(
    delays: np.ndarray, factor: float, seed: SeedLike = None
) -> np.ndarray:
    """Perturb delays with a multiplicative error uniform in ``[d/e, d*e]``.

    Parameters
    ----------
    delays:
        Array of true delays (any shape); must be non-negative.
    factor:
        The error factor ``e >= 1``; ``1`` returns an unmodified copy.
    seed:
        RNG.

    Returns
    -------
    numpy.ndarray
        Array of the same shape with every entry independently drawn from
        ``U[d/e, d*e]``.  Zero entries (e.g. a server's delay to itself) stay
        exactly zero.
    """
    delays = np.asarray(delays, dtype=np.float64)
    if (delays < 0).any():
        raise ValueError("delays must be non-negative")
    if not np.isfinite(factor) or factor < 1.0:
        raise ValueError(f"error factor must be >= 1, got {factor}")
    if factor == 1.0:
        return delays.copy()
    rng = as_generator(seed)
    low = delays / factor
    high = delays * factor
    return rng.uniform(low, high)
