"""Simulated network-delay estimation services (King, IDMaps).

The paper's Section 3.4 points at King and IDMaps as the practical sources of
the client-server and inter-server delay matrices.  This module simulates
those services: a :class:`DelayEstimator` takes the ground-truth instance and
returns the *estimated* instance an operator would actually feed to the
assignment algorithms — the true delays perturbed by the service's error model
(:mod:`repro.measurement.error`), with the option of leaving the inter-server
delays exact (operators can measure their own well-provisioned mesh precisely,
which is how the paper's Table 4 experiment is interpreted here: the error is
applied to all delay inputs by default, matching the paper's "we apply an
error factor e to the perfect input data").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.problem import CAPInstance
from repro.measurement.error import IDMAPS, KING, PERFECT, ErrorModel
from repro.utils.rng import SeedLike, as_generator, spawn_generators

__all__ = ["DelayEstimator", "king_estimator", "idmaps_estimator", "perfect_estimator"]


@dataclass(frozen=True)
class DelayEstimator:
    """A simulated delay-measurement service.

    Attributes
    ----------
    model:
        The multiplicative error model of the service.
    perturb_server_mesh:
        Whether the inter-server delays are also estimated (True, the default,
        mirrors the paper's "apply an error factor to the perfect input data");
        set to False to model an operator that measures its own mesh exactly.
    """

    model: ErrorModel = PERFECT
    perturb_server_mesh: bool = True

    @property
    def name(self) -> str:
        """Name of the emulated service."""
        return self.model.name

    def estimate(self, instance: CAPInstance, seed: SeedLike = None) -> CAPInstance:
        """Return the instance as *seen* through this measurement service.

        The returned instance shares everything with the input except the
        delay matrices, which are replaced by noisy estimates.  Evaluation of
        the resulting assignments must use the original (true) instance.
        """
        if self.model.is_perfect:
            return instance
        rng = as_generator(seed)
        cs_rng, ss_rng = spawn_generators(rng, 2)
        # Perturbation is a per-entry multiplicative noise, so the estimated
        # instance is inherently dense; compact instances materialise here
        # (the measurement experiments run on paper-scale worlds).
        estimated_cs = self.model.perturb(instance.dense_client_server_delays(), seed=cs_rng)
        estimated_ss = (
            self.model.perturb(instance.server_server_delays, seed=ss_rng)
            if self.perturb_server_mesh
            else instance.server_server_delays
        )
        return instance.with_delays(
            client_server_delays=estimated_cs,
            server_server_delays=estimated_ss,
        )


def perfect_estimator() -> DelayEstimator:
    """Estimator with perfect information (identity)."""
    return DelayEstimator(PERFECT)


def king_estimator() -> DelayEstimator:
    """King-like estimator (error factor 1.2)."""
    return DelayEstimator(KING)


def idmaps_estimator() -> DelayEstimator:
    """IDMaps-like estimator (error factor 2.0)."""
    return DelayEstimator(IDMAPS)
