"""Network measurement substrate: delay-estimation error models and estimators.

Implements the imperfect-input-data model of the paper's Table 4 experiment
(King with error factor 1.2, IDMaps with error factor 2.0).
"""

from repro.measurement.error import (
    IDMAPS,
    KING,
    PERFECT,
    ErrorModel,
    apply_multiplicative_error,
)
from repro.measurement.estimators import (
    DelayEstimator,
    idmaps_estimator,
    king_estimator,
    perfect_estimator,
)

__all__ = [
    "ErrorModel",
    "PERFECT",
    "KING",
    "IDMAPS",
    "apply_multiplicative_error",
    "DelayEstimator",
    "perfect_estimator",
    "king_estimator",
    "idmaps_estimator",
]
