"""Experiment configurations and the paper's ``<m>s-<n>z-<k>c-<P>cp`` notation.

Section 4.2 identifies DVE configurations by the number of servers, zones and
clients plus the total capacity, e.g. ``20s-80z-1000c-500cp``.  This module
parses and produces that notation and holds the four configurations evaluated
in Table 1 together with the default simulation parameters of Section 4.1.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.regret import BACKENDS as _SOLVER_BACKENDS
from repro.topology.delay_backends import DELAY_BACKENDS as _DELAY_BACKENDS
from repro.world.scenario import DVEConfig

__all__ = [
    "ExperimentConfig",
    "apply_delay_backend",
    "parse_config_label",
    "config_from_label",
    "PAPER_TABLE1_LABELS",
    "PAPER_DEFAULT_LABEL",
    "PAPER_SMALL_LABELS",
    "paper_table1_configs",
    "paper_default_config",
]


@dataclass(frozen=True)
class ExperimentConfig:
    """Execution settings shared by every experiment driver.

    This is the *how* of an experiment run (replications, seeding, process
    count), as opposed to the DVE configuration, which is the *what*.  The CLI
    builds one from its flags and the registry translates it into the keyword
    arguments every ``run_*`` driver accepts.

    Attributes
    ----------
    num_runs:
        Simulation runs to average over (the paper uses 50).
    seed:
        Master RNG seed; every run derives an independent sub-stream.
    workers:
        Worker processes for the replication engine: ``None``/``1`` serial,
        ``0`` one per available CPU, ``n`` exactly ``n`` processes.
    solver_backend:
        Max-regret placement backend forwarded to every solve
        (``"vectorized"`` / ``"loop"``; ``None`` uses the library default).
        The backends are bit-identical, so this only affects runtime.
    delay_backend:
        Delay backend every scenario is built with (``"dense"`` /
        ``"coords"`` / ``"sparse"``; ``None`` keeps each driver's configured
        default).  Unlike ``solver_backend``, the compact backends trade a
        bounded accuracy loss for O(clients) memory.
    """

    num_runs: int = 3
    seed: int = 0
    workers: Optional[int] = None
    solver_backend: Optional[str] = None
    delay_backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_runs < 1:
            raise ValueError(f"num_runs must be >= 1, got {self.num_runs}")
        if self.workers is not None and self.workers < 0:
            raise ValueError(f"workers must be >= 0 (0 = all CPUs), got {self.workers}")
        if self.solver_backend is not None and self.solver_backend not in _SOLVER_BACKENDS:
            raise ValueError(
                f"solver_backend must be one of {_SOLVER_BACKENDS}, got {self.solver_backend!r}"
            )
        if self.delay_backend is not None and self.delay_backend not in _DELAY_BACKENDS:
            raise ValueError(
                f"delay_backend must be one of {_DELAY_BACKENDS}, got {self.delay_backend!r}"
            )

    def run_kwargs(self, supports_workers: bool = True) -> Dict[str, object]:
        """Keyword arguments for an experiment driver's ``run`` callable.

        ``workers``, ``solver_backend`` and ``delay_backend`` are included
        only when set (and, for ``workers``, supported), so drivers and test
        doubles without the knobs keep working untouched.
        """
        kwargs: Dict[str, object] = {"num_runs": self.num_runs, "seed": self.seed}
        if supports_workers and self.workers is not None:
            kwargs["workers"] = self.workers
        if self.solver_backend is not None:
            kwargs["solver_backend"] = self.solver_backend
        if self.delay_backend is not None:
            kwargs["delay_backend"] = self.delay_backend
        return kwargs


def apply_delay_backend(config: DVEConfig, delay_backend: Optional[str]) -> DVEConfig:
    """Override a DVE config's delay backend when one is requested.

    The single threading point every experiment driver uses: ``None`` keeps
    the config untouched (so defaults and explicit configs pass through),
    anything else replaces the config's ``delay_backend`` field.
    """
    if delay_backend is None:
        return config
    return config.with_updates(delay_backend=delay_backend)


_LABEL_RE = re.compile(
    r"^\s*(?P<servers>\d+)s-(?P<zones>\d+)z-(?P<clients>\d+)c-(?P<capacity>\d+(?:\.\d+)?)cp\s*$",
    re.IGNORECASE,
)

#: The four DVE configurations of the paper's Table 1, in row order.
PAPER_TABLE1_LABELS: tuple[str, ...] = (
    "5s-15z-200c-100cp",
    "10s-30z-400c-200cp",
    "20s-80z-1000c-500cp",
    "30s-160z-2000c-1000cp",
)

#: The two configurations small enough for the exact MILP baseline.
PAPER_SMALL_LABELS: tuple[str, ...] = PAPER_TABLE1_LABELS[:2]

#: The default configuration used by most other experiments.
PAPER_DEFAULT_LABEL: str = "20s-80z-1000c-500cp"


def parse_config_label(label: str) -> Dict[str, float]:
    """Parse a ``<m>s-<n>z-<k>c-<P>cp`` label into its four numbers.

    Returns a dict with keys ``num_servers``, ``num_zones``, ``num_clients``
    and ``total_capacity_mbps``.
    """
    match = _LABEL_RE.match(label)
    if not match:
        raise ValueError(
            f"cannot parse DVE configuration label {label!r}; expected e.g. '20s-80z-1000c-500cp'"
        )
    return {
        "num_servers": int(match.group("servers")),
        "num_zones": int(match.group("zones")),
        "num_clients": int(match.group("clients")),
        "total_capacity_mbps": float(match.group("capacity")),
    }


def config_from_label(label: str, **overrides) -> DVEConfig:
    """Build a :class:`~repro.world.scenario.DVEConfig` from a label.

    All other parameters take the paper's Section 4.1 defaults and can be
    overridden by keyword (e.g. ``correlation=0.0`` or
    ``delay_bound_ms=200.0``).
    """
    parsed = parse_config_label(label)
    parsed.update(overrides)
    return DVEConfig(**parsed)


def paper_table1_configs(**overrides) -> Dict[str, DVEConfig]:
    """The four Table 1 configurations, keyed by label."""
    return {label: config_from_label(label, **overrides) for label in PAPER_TABLE1_LABELS}


def paper_default_config(**overrides) -> DVEConfig:
    """The paper's default configuration (20s-80z-1000c-500cp)."""
    return config_from_label(PAPER_DEFAULT_LABEL, **overrides)
