"""Experiment (extension) — rebalance-controller policies under elastic churn.

The paper leaves the re-execution trigger to the operator (Section 3.4); this
driver compares concrete trigger policies of the engine-backed
:class:`~repro.dynamics.controller.RebalanceController` over a sustained churn
workload with optional infrastructure churn, and prices every decision with a
:class:`~repro.dynamics.migration.MigrationCostModel` — so each policy is
scored on interactivity (mean / worst pQoS), operational effort (repairs and
full rebalances) *and* disruption (clients migrated, migration bill).

Replications are independent simulation runs (fresh topology, placements and
churn streams), so the driver inherits the parallel replication engine via
the shared ``workers`` knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.dynamics.churn import ChurnSpec
from repro.dynamics.controller import RebalanceController, RebalancePolicy
from repro.dynamics.infrastructure import ServerChurnSpec
from repro.dynamics.migration import MigrationCostModel
from repro.experiments.config import PAPER_DEFAULT_LABEL, apply_delay_backend, config_from_label
from repro.io.tables import format_table
from repro.metrics.summary import AggregateStat, GroupedRunningStats
from repro.utils.pool import ordered_map
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.world.scenario import build_scenario

__all__ = [
    "DEFAULT_CONTROLLER_POLICIES",
    "default_controller_policies",
    "ControllerResult",
    "run_controller",
    "format_controller",
]

def default_controller_policies(migration_budget: float = math.inf) -> Dict[str, RebalancePolicy]:
    """The policy ladder the experiment compares by default.

    From "never touch it" to "always re-execute", plus a migration-budgeted
    variant of the eager policy that demotes re-executions whose zone moves
    would bill above ``migration_budget``.
    """
    return {
        "lazy (target 0.80)": RebalancePolicy(target_pqos=0.80, repair_slack=0.05),
        "balanced (target 0.90)": RebalancePolicy(target_pqos=0.90, repair_slack=0.05),
        "eager (target 0.99)": RebalancePolicy(target_pqos=0.99, repair_slack=0.0),
        "budgeted eager": RebalancePolicy(
            target_pqos=0.99, repair_slack=0.0,
            max_migration_cost_per_epoch=migration_budget,
        ),
    }


#: Backwards-compatible alias of the unbudgeted default ladder.
DEFAULT_CONTROLLER_POLICIES: Dict[str, RebalancePolicy] = default_controller_policies()

#: Per-metric keys aggregated across runs for every policy.
_METRICS = (
    "mean_pqos",
    "worst_pqos",
    "repairs",
    "rebalances",
    "clients_migrated",
    "migration_cost",
)


@dataclass(frozen=True)
class ControllerResult:
    """Aggregated controller-policy comparison.

    ``stats`` maps ``(policy_name, metric)`` to the cross-run aggregate for
    the metrics in :data:`_METRICS`.
    """

    label: str
    algorithm: str
    policy_names: List[str]
    num_epochs: int
    num_runs: int
    churn: ChurnSpec
    server_churn: Optional[ServerChurnSpec]
    migration_cost: MigrationCostModel
    stats: Dict[Tuple[str, str], AggregateStat]

    def rows(self) -> List[list]:
        """One row per policy with every aggregated metric's mean."""
        return [
            [name, *(self.stats[(name, metric)].mean for metric in _METRICS)]
            for name in self.policy_names
        ]


def _execute_controller_run(task) -> GroupedRunningStats:
    """One replication across all policies (worker-side; must be picklable)."""
    import repro.baselines  # noqa: F401 — repopulate the registry under spawn

    (
        config,
        algorithm,
        policies,
        churn,
        server_churn,
        migration_cost,
        num_epochs,
        backend,
        solver_backend,
        rng,
    ) = task
    scenario_rng, sim_rng = spawn_generators(rng, 2)
    scenario = build_scenario(config, seed=scenario_rng)
    # Every policy replays the same scenario and the same churn stream, so
    # differences come from the trigger policy alone.  A shared *integer*
    # seed (not a shared Generator — spawning from a Generator mutates it,
    # which would hand each policy a different stream) re-seeds identically
    # per policy.
    sim_seed = int(sim_rng.integers(2**63))
    stats = GroupedRunningStats()
    for name, policy in policies:
        trace = RebalanceController(
            scenario=scenario,
            algorithm=algorithm,
            policy=policy,
            churn_spec=churn,
            seed=sim_seed,
            server_churn_spec=server_churn,
            migration_cost=migration_cost,
            backend=backend,
            solver_backend=solver_backend,
        ).run(num_epochs)
        stats.add((name, "mean_pqos"), trace.mean_pqos)
        stats.add((name, "worst_pqos"), min(trace.pqos_series()))
        stats.add((name, "repairs"), float(trace.num_repairs))
        stats.add((name, "rebalances"), float(trace.num_rebalances))
        stats.add((name, "clients_migrated"), float(trace.total_clients_migrated))
        stats.add((name, "migration_cost"), trace.total_migration_cost)
    return stats


def run_controller(
    label: str = PAPER_DEFAULT_LABEL,
    algorithm: str = "grez-grec",
    policies: Optional[Dict[str, RebalancePolicy]] = None,
    num_runs: int = 3,
    seed: SeedLike = 0,
    num_epochs: int = 6,
    churn: ChurnSpec | None = None,
    server_churn: Optional[ServerChurnSpec] = None,
    migration_cost: Optional[MigrationCostModel] = None,
    correlation: float = 0.0,
    backend: str = "delta",
    workers: Optional[int] = None,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
) -> ControllerResult:
    """Run the controller-policy comparison experiment.

    By default the churn is the paper's Table 3 batch plus mild
    infrastructure churn (one server joining and one leaving per epoch with
    5 % capacity drift) and a unit-cost migration model, so the budgeted
    policy in :data:`DEFAULT_CONTROLLER_POLICIES` has something to trade
    against; pass ``server_churn=ServerChurnSpec()`` /
    ``migration_cost=MigrationCostModel()`` explicitly for the classic
    fixed-fleet, free-migration setting.
    """
    churn = churn or ChurnSpec()
    if server_churn is None:
        server_churn = ServerChurnSpec(num_joins=1, num_leaves=1, capacity_drift=0.05)
    if migration_cost is None:
        migration_cost = MigrationCostModel(cost_per_client=1.0)
    config = apply_delay_backend(config_from_label(label, correlation=correlation), delay_backend)
    if policies is None:
        # Budget the default ladder's capped policy at 25 % of the configured
        # population migrating per epoch (infinite when migrations are free).
        budget = (
            0.25 * config.num_clients * migration_cost.cost_per_client
            if migration_cost.cost_per_client > 0
            else math.inf
        )
        policies = default_controller_policies(budget)
    resolved: List[Tuple[str, RebalancePolicy]] = list(policies.items())

    rng = as_generator(seed)
    run_rngs = spawn_generators(rng, num_runs)
    tasks = [
        (
            config,
            algorithm,
            tuple(resolved),
            churn,
            server_churn,
            migration_cost,
            num_epochs,
            backend,
            solver_backend,
            run_rngs[i],
        )
        for i in range(num_runs)
    ]
    merged = GroupedRunningStats()
    for run_stats in ordered_map(_execute_controller_run, tasks, workers=workers):
        merged.merge(run_stats)

    names = [name for name, _ in resolved]
    stats = {
        (name, metric): merged.stat((name, metric)) for name in names for metric in _METRICS
    }
    return ControllerResult(
        label=label,
        algorithm=algorithm,
        policy_names=names,
        num_epochs=num_epochs,
        num_runs=num_runs,
        churn=churn,
        server_churn=server_churn,
        migration_cost=migration_cost,
        stats=stats,
    )


def format_controller(result: ControllerResult) -> str:
    """Render the policy comparison table."""
    churn = result.churn
    sc = result.server_churn
    elastic = (
        f", fleet {sc.num_joins}+/{sc.num_leaves}- drift {sc.capacity_drift:g}"
        if sc is not None and not sc.is_static
        else ""
    )
    title = (
        f"Rebalance controller on {result.algorithm}, {result.label}, "
        f"{result.num_epochs} epochs × {result.num_runs} runs, churn "
        f"{churn.num_joins}j/{churn.num_leaves}l/{churn.num_moves}m{elastic}, "
        f"migration cost {result.migration_cost.cost_per_client:g}/client"
    )
    headers = [
        "policy",
        "mean pQoS",
        "worst pQoS",
        "repairs",
        "rebalances",
        "clients migrated",
        "migration cost",
    ]
    return format_table(headers, result.rows(), title=title, float_format=".3f")
