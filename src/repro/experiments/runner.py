"""Multi-run experiment execution engine.

Every quantitative result in the paper "is obtained by averaging the results
of 50 simulation runs"; :func:`run_replications` is the engine that does the
averaging here.  One *run* means: build a fresh scenario from the
configuration (new topology sample, new placements, new client distribution),
optionally pass the instance through a delay-estimation error model, solve it
with every requested algorithm, and evaluate pQoS / resource utilisation of
each solution against the *true* instance.

Runs are independent by construction (each gets its own child RNG from
:func:`~repro.utils.rng.spawn_generators`), so the engine can execute them on
a process pool: ``workers=4`` distributes the runs over four processes and
streams the per-run observations back in run order.  Because every run's
randomness is fixed in the parent before any work is dispatched, the parallel
and serial paths produce bit-identical observations for the same seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.problem import CAPInstance
from repro.core.registry import ensure_registered, solve as registry_solve
from repro.measurement.estimators import DelayEstimator
from repro.metrics.cdf import EmpiricalCDF, delay_cdf, merge_cdfs
from repro.metrics.summary import AggregateStat, aggregate
from repro.utils.pool import ordered_map, resolve_workers
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.utils.timing import Timer
from repro.world.scenario import DVEConfig, DVEScenario, build_scenario

__all__ = [
    "RunObservation",
    "AlgorithmSummary",
    "ReplicatedResult",
    "evaluate_algorithms",
    "run_replications",
]


@dataclass(frozen=True)
class RunObservation:
    """Metrics of one algorithm on one simulation run."""

    algorithm: str
    pqos: float
    utilization: float
    runtime_seconds: float
    capacity_exceeded: bool
    delays: Optional[np.ndarray] = None


@dataclass(frozen=True)
class AlgorithmSummary:
    """Aggregated metrics of one algorithm over all runs of an experiment."""

    algorithm: str
    pqos: AggregateStat
    utilization: AggregateStat
    runtime_seconds: AggregateStat
    capacity_exceeded_runs: int
    delay_cdf: Optional[EmpiricalCDF] = None


@dataclass(frozen=True)
class ReplicatedResult:
    """Result of :func:`run_replications`: per-algorithm summaries plus raw runs."""

    config: DVEConfig
    num_runs: int
    summaries: Dict[str, AlgorithmSummary]
    observations: Dict[str, List[RunObservation]] = field(default_factory=dict)

    def pqos(self, algorithm: str) -> float:
        """Mean pQoS of an algorithm."""
        return self.summaries[algorithm].pqos.mean

    def utilization(self, algorithm: str) -> float:
        """Mean resource utilisation of an algorithm."""
        return self.summaries[algorithm].utilization.mean

    def algorithms(self) -> List[str]:
        """Algorithm names in the order they were requested."""
        return list(self.summaries)


def evaluate_algorithms(
    scenario: DVEScenario,
    algorithms: Sequence[str],
    seed: SeedLike = None,
    estimator: Optional[DelayEstimator] = None,
    delay_bound_ms: Optional[float] = None,
    collect_delays: bool = False,
    solver_backend: Optional[str] = None,
) -> Dict[str, RunObservation]:
    """Solve one scenario with several algorithms and evaluate them on true delays.

    Parameters
    ----------
    scenario:
        The materialised scenario.
    algorithms:
        Registered solver names.
    seed:
        Seed for the randomised algorithms (one sub-stream per algorithm).
    estimator:
        Optional delay-estimation service; when given, algorithms *decide* on
        the estimated instance but are *evaluated* on the true one (Table 4).
    delay_bound_ms:
        Override of the scenario's delay bound (Figure 5 uses D = 200 ms).
    collect_delays:
        Also return the per-client delay vector of each solution (Figure 4).
    solver_backend:
        Max-regret placement backend forwarded to every solve
        (``"vectorized"`` / ``"loop"``; ``None`` uses the library default).
        The backends are bit-identical, so observations do not change.
    """
    ensure_registered(algorithms)
    rng = as_generator(seed)
    algo_rngs = spawn_generators(rng, len(algorithms) + 1)
    estimation_rng = algo_rngs[-1]

    true_instance = CAPInstance.from_scenario(scenario, delay_bound=delay_bound_ms)
    decision_instance = true_instance
    if estimator is not None and not estimator.model.is_perfect:
        decision_instance = estimator.estimate(true_instance, seed=estimation_rng)

    results: Dict[str, RunObservation] = {}
    for i, name in enumerate(algorithms):
        with Timer() as timer:
            assignment = registry_solve(
                decision_instance, name, seed=algo_rngs[i], backend=solver_backend
            )
        delays = assignment.client_delays(true_instance)
        results[name] = RunObservation(
            algorithm=name,
            pqos=float((delays <= true_instance.delay_bound).mean()) if delays.size else 1.0,
            utilization=assignment.resource_utilization(true_instance),
            runtime_seconds=timer.elapsed,
            capacity_exceeded=assignment.capacity_exceeded,
            delays=delays.copy() if collect_delays else None,
        )
    return results


@dataclass(frozen=True)
class _RunTask:
    """Everything one simulation run needs, fixed in the parent process.

    The task (including its :class:`numpy.random.Generator`, whose seed
    sequence survives pickling) is the unit shipped to worker processes, so a
    run's result is a pure function of the task — independent of which worker
    executes it and in which order.
    """

    config: DVEConfig
    algorithms: Tuple[str, ...]
    rng: np.random.Generator
    estimator: Optional[DelayEstimator]
    delay_bound_ms: Optional[float]
    collect_delays: bool
    topology: Optional[object]
    delay_model: Optional[object]
    solver_backend: Optional[str] = None


def _execute_run(task: _RunTask) -> Dict[str, RunObservation]:
    """Execute one simulation run (worker-side entry point; must be picklable)."""
    # Re-populate the solver registry when the pool uses a ``spawn`` /
    # ``forkserver`` start method (under ``fork`` this is a cached no-op).
    import repro.baselines  # noqa: F401

    scenario_rng, eval_rng = spawn_generators(task.rng, 2)
    scenario = build_scenario(
        task.config,
        seed=scenario_rng,
        topology=task.topology,
        delay_model=task.delay_model,
    )
    return evaluate_algorithms(
        scenario,
        task.algorithms,
        seed=eval_rng,
        estimator=task.estimator,
        delay_bound_ms=task.delay_bound_ms,
        collect_delays=task.collect_delays,
        solver_backend=task.solver_backend,
    )


def run_replications(
    config: DVEConfig,
    algorithms: Sequence[str],
    num_runs: int = 5,
    seed: SeedLike = 0,
    estimator: Optional[DelayEstimator] = None,
    delay_bound_ms: Optional[float] = None,
    collect_delays: bool = False,
    cdf_grid: Optional[np.ndarray] = None,
    share_topology: bool = False,
    keep_observations: bool = False,
    workers: Optional[int] = None,
    solver_backend: Optional[str] = None,
) -> ReplicatedResult:
    """Run ``num_runs`` independent simulation runs and aggregate the metrics.

    Parameters
    ----------
    config:
        DVE configuration to simulate.
    algorithms:
        Registered solver names to compare.
    num_runs:
        Number of independent runs (the paper uses 50; tests and benchmarks
        use fewer).
    seed:
        Master seed; every run gets an independent sub-stream.
    estimator / delay_bound_ms / collect_delays:
        Forwarded to :func:`evaluate_algorithms`.
    cdf_grid:
        Delay grid for the aggregated CDF (defaults to the Figure 4 range).
    share_topology:
        Reuse a single topology sample (and its all-pairs delay matrix) across
        runs; placements and distributions still vary.  Cuts run time roughly
        in half for quick exploratory sweeps.  With parallel workers the
        all-pairs RTT matrix is additionally published to shared memory
        before dispatch, so each task's pickled payload stays O(1) in the
        matrix and workers neither recompute nor receive a private copy —
        bit-identical to the plain pickling path.
    keep_observations:
        Also return the raw per-run observations.
    workers:
        Worker processes for the runs: ``None``/``1`` — serial (in-process),
        ``0`` — one per available CPU, ``n`` — exactly ``n`` processes.  The
        per-run observations are bit-identical for every worker count (only
        ``runtime_seconds``, a wall-clock measurement, may differ).
    solver_backend:
        Max-regret placement backend forwarded to every solve (the backends
        are bit-identical, so this only affects runtime).
    """
    if num_runs < 1:
        raise ValueError("num_runs must be >= 1")
    ensure_registered(algorithms)
    rng = as_generator(seed)
    run_rngs = spawn_generators(rng, num_runs)

    shared_topology = None
    shared_delay_model = None
    if share_topology:
        from repro.topology.brite import generate_topology
        from repro.topology.delays import DelayModel

        topo_rng = as_generator(seed if not isinstance(seed, np.random.Generator) else rng)
        shared_topology = generate_topology(config.topology, seed=topo_rng)
        shared_delay_model = DelayModel(
            shared_topology,
            max_rtt_ms=config.max_rtt_ms,
            server_mesh_factor=config.server_mesh_factor,
        )

    # Zero-copy dispatch: with parallel workers, materialise the shared RTT
    # matrix once and publish it to shared memory so every task pickles an
    # O(1) segment handle instead of recomputing (or shipping) the O(nodes²)
    # matrix per task.  Serial runs share the model object in-process anyway.
    use_shared_memory = (
        shared_delay_model is not None and resolve_workers(workers, num_tasks=num_runs) > 1
    )
    if use_shared_memory:
        shared_delay_model.share_rtt()

    tasks = [
        _RunTask(
            config=config,
            algorithms=tuple(algorithms),
            rng=run_rngs[run_index],
            estimator=estimator,
            delay_bound_ms=delay_bound_ms,
            collect_delays=collect_delays,
            topology=shared_topology,
            delay_model=shared_delay_model,
            solver_backend=solver_backend,
        )
        for run_index in range(num_runs)
    ]

    per_algorithm: Dict[str, List[RunObservation]] = {name: [] for name in algorithms}
    try:
        for observations in ordered_map(_execute_run, tasks, workers=workers):
            for name in algorithms:
                per_algorithm[name].append(observations[name])
    finally:
        if use_shared_memory:
            shared_delay_model.unshare_rtt()

    summaries: Dict[str, AlgorithmSummary] = {}
    for name in algorithms:
        obs = per_algorithm[name]
        cdf = None
        if collect_delays:
            cdfs = [
                delay_cdf(o.delays, grid=cdf_grid)
                for o in obs
                if o.delays is not None and o.delays.size
            ]
            cdf = merge_cdfs(cdfs) if cdfs else None
        summaries[name] = AlgorithmSummary(
            algorithm=name,
            pqos=aggregate([o.pqos for o in obs]),
            utilization=aggregate([o.utilization for o in obs]),
            runtime_seconds=aggregate([o.runtime_seconds for o in obs]),
            capacity_exceeded_runs=sum(1 for o in obs if o.capacity_exceeded),
            delay_cdf=cdf,
        )

    return ReplicatedResult(
        config=config,
        num_runs=num_runs,
        summaries=summaries,
        observations=per_algorithm if keep_observations else {},
    )
