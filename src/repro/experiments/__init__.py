"""Experiment harness: one driver per table / figure of the paper plus extensions.

* ``table1``  — Table 1 (pQoS / utilisation across configurations, incl. MILP).
* ``figure4`` — Figure 4 (delay CDFs).
* ``figure5`` — Figure 5 (correlation sweep).
* ``figure6`` — Figure 6 (clustered distributions).
* ``table3``  — Table 3 (DVE dynamics / churn).
* ``table4``  — Table 4 (imperfect delay estimates).
* ``ablation``, ``baselines``, ``runtime`` — extensions documented in DESIGN.md.

Use :func:`repro.experiments.registry.get_experiment` (or the CLI) to run any
of them by id.
"""

from repro.experiments.config import (
    PAPER_DEFAULT_LABEL,
    PAPER_SMALL_LABELS,
    PAPER_TABLE1_LABELS,
    config_from_label,
    paper_default_config,
    paper_table1_configs,
    parse_config_label,
)
from repro.experiments.runner import (
    AlgorithmSummary,
    ReplicatedResult,
    RunObservation,
    evaluate_algorithms,
    run_replications,
)

__all__ = [
    "parse_config_label",
    "config_from_label",
    "paper_table1_configs",
    "paper_default_config",
    "PAPER_TABLE1_LABELS",
    "PAPER_SMALL_LABELS",
    "PAPER_DEFAULT_LABEL",
    "run_replications",
    "evaluate_algorithms",
    "ReplicatedResult",
    "AlgorithmSummary",
    "RunObservation",
]
