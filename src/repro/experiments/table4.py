"""Experiment E6 — Table 4: impact of imperfect delay estimates.

Reproduces the paper's Table 4: on the default configuration, feed the
algorithms delay estimates perturbed by a multiplicative error factor
``e ∈ {1.2, 2}`` (emulating King and IDMaps respectively) and evaluate the
resulting assignments on the *true* delays, reporting pQoS and (in brackets)
resource utilisation.

Expected shape: with e = 1.2 GreZ-GreC remains the best algorithm and loses
only a few percentage points of pQoS; with e = 2 GreZ-VirC edges ahead of
GreZ-GreC (the latter is hurt twice, once per phase), and both stay far above
the delay-oblivious RanZ variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import PAPER_DEFAULT_LABEL, apply_delay_backend, config_from_label
from repro.experiments.paper_values import (
    PAPER_ALGORITHM_ORDER,
    PAPER_TABLE4_PQOS,
    PAPER_TABLE4_UTILIZATION,
)
from repro.experiments.runner import ReplicatedResult, run_replications
from repro.io.tables import format_table
from repro.measurement.error import ErrorModel
from repro.measurement.estimators import DelayEstimator
from repro.utils.rng import SeedLike

__all__ = ["Table4Result", "run_table4", "format_table4"]

#: The error factors studied by the paper (King, IDMaps).
DEFAULT_ERROR_FACTORS = (1.2, 2.0)


@dataclass(frozen=True)
class Table4Result:
    """Results per error factor and algorithm."""

    label: str
    error_factors: List[float]
    results: Dict[float, ReplicatedResult]
    algorithms: List[str]

    def rows(self) -> List[list]:
        """One row per algorithm; one column per error factor: 'pQoS (R)'."""
        rows = []
        for name in self.algorithms:
            row: list = [name]
            for e in self.error_factors:
                summary = self.results[e].summaries[name]
                row.append(f"{summary.pqos.mean:.2f} ({summary.utilization.mean:.2f})")
            rows.append(row)
        return rows

    def paper_rows(self) -> List[list]:
        """The paper's Table 4 values in the same layout."""
        rows = []
        for name in self.algorithms:
            row: list = [name]
            for e in self.error_factors:
                pqos = PAPER_TABLE4_PQOS.get(e, {}).get(name)
                util = PAPER_TABLE4_UTILIZATION.get(e, {}).get(name)
                row.append("-" if pqos is None else f"{pqos:.2f} ({util:.2f})")
            rows.append(row)
        return rows


def run_table4(
    label: str = PAPER_DEFAULT_LABEL,
    error_factors: Sequence[float] = DEFAULT_ERROR_FACTORS,
    algorithms: Optional[Sequence[str]] = None,
    num_runs: int = 3,
    seed: SeedLike = 0,
    correlation: float = 0.5,
    share_topology: bool = True,
    workers: Optional[int] = None,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
) -> Table4Result:
    """Run the imperfect-input-data experiment of Table 4."""
    algorithms = list(algorithms or PAPER_ALGORITHM_ORDER)
    config = apply_delay_backend(config_from_label(label, correlation=correlation), delay_backend)
    results: Dict[float, ReplicatedResult] = {}
    for factor in error_factors:
        estimator = DelayEstimator(ErrorModel(float(factor), name=f"e={factor}"))
        results[float(factor)] = run_replications(
            config,
            algorithms,
            num_runs=num_runs,
            seed=seed,
            estimator=estimator,
            share_topology=share_topology,
            workers=workers,
            solver_backend=solver_backend,
        )
    return Table4Result(
        label=label,
        error_factors=[float(e) for e in error_factors],
        results=results,
        algorithms=algorithms,
    )


def format_table4(result: Table4Result, include_paper: bool = True) -> str:
    """Render the measured (and optionally the paper's) Table 4."""
    headers = ["algorithm"] + [f"e={e:g}" for e in result.error_factors]
    measured = format_table(
        headers,
        result.rows(),
        title=f"Table 4 (measured): pQoS (R) with imperfect delay estimates, {result.label}",
    )
    if not include_paper:
        return measured
    paper = format_table(
        headers,
        result.paper_rows(),
        title="Table 4 (paper): pQoS (R) with imperfect delay estimates",
    )
    return measured + "\n\n" + paper
