"""Experiment E7 — ablation of the greedy design choices (not in the paper).

The paper's heuristics embody two specific design decisions worth isolating:

1. **Regret ordering** — zones/clients are processed in max-regret order
   (GAP-style) rather than, say, largest-demand-first or arbitrary order.
2. **Static vs dynamic regret** — the paper's pseudocode computes the regrets
   once; the dynamic variant re-evaluates each item's regret over the servers
   that *currently* have room for it after every placement (an item whose
   alternatives are filling up becomes urgent), a well-known strengthening of
   the heuristic at extra cost.

This experiment compares, on the default configuration:

* ``grez-grec``            — the paper's algorithm (static regret),
* ``grez-grec-dynamic``    — feasibility-aware regret after every placement,
* ``ranz-grec``            — no delay awareness in the initial phase,
* ``grez-virc``            — no refined phase,
* ``load-balance``         — no delay awareness at all (pure load balancing),
* ``nearest-server``       — delay awareness without the regret machinery,

which decomposes GreZ-GreC's advantage into its ingredients.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import repro.baselines  # noqa: F401 - registers the baseline solvers
from repro.experiments.config import PAPER_DEFAULT_LABEL, apply_delay_backend, config_from_label
from repro.experiments.runner import ReplicatedResult, run_replications
from repro.io.tables import format_table
from repro.utils.rng import SeedLike

__all__ = ["AblationResult", "run_ablation", "format_ablation", "DEFAULT_ABLATION_VARIANTS"]

#: Variants compared by the ablation, in report order.
DEFAULT_ABLATION_VARIANTS = (
    "grez-grec",
    "grez-grec-dynamic",
    "grez-ff-grec",
    "grez-bf-grec",
    "grez-grec-ff",
    "grez-virc",
    "grez-ff-virc",
    "ranz-grec",
    "ranz-virc",
    "nearest-server",
    "load-balance",
)


@dataclass(frozen=True)
class AblationResult:
    """Aggregated metrics per ablation variant."""

    label: str
    result: ReplicatedResult
    variants: List[str]

    def rows(self) -> List[list]:
        """One row per variant: pQoS, utilisation, mean runtime (ms)."""
        rows = []
        for name in self.variants:
            summary = self.result.summaries[name]
            rows.append(
                [
                    name,
                    summary.pqos.mean,
                    summary.utilization.mean,
                    summary.runtime_seconds.mean * 1000.0,
                ]
            )
        return rows


def run_ablation(
    label: str = PAPER_DEFAULT_LABEL,
    variants: Optional[Sequence[str]] = None,
    num_runs: int = 3,
    seed: SeedLike = 0,
    correlation: float = 0.5,
    share_topology: bool = True,
    workers: Optional[int] = None,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
) -> AblationResult:
    """Run the ablation comparison on one configuration."""
    variants = list(variants or DEFAULT_ABLATION_VARIANTS)
    config = apply_delay_backend(config_from_label(label, correlation=correlation), delay_backend)
    result = run_replications(
        config,
        variants,
        num_runs=num_runs,
        seed=seed,
        share_topology=share_topology,
        workers=workers,
        solver_backend=solver_backend,
    )
    return AblationResult(label=label, result=result, variants=variants)


def format_ablation(result: AblationResult) -> str:
    """Render the ablation table."""
    return format_table(
        ["variant", "pQoS", "utilisation", "runtime (ms)"],
        result.rows(),
        title=f"Ablation (E7): design-choice decomposition on {result.label}",
    )
