"""Delay-bound sensitivity experiment (extension E10).

The paper fixes the interactivity bound at D = 250 ms (FPS-grade) for Table 1
and at 200 ms for Figure 5, citing 500 ms as the RTS-grade requirement.  This
extension sweeps D across the whole range of game genres and reports how each
algorithm's pQoS and resource utilisation respond — showing where the greedy
refined phase (GreC) actually earns its bandwidth (tight bounds) and where it
is unnecessary (loose bounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import PAPER_DEFAULT_LABEL, apply_delay_backend, config_from_label
from repro.experiments.paper_values import PAPER_ALGORITHM_ORDER
from repro.experiments.runner import ReplicatedResult, run_replications
from repro.io.tables import format_table
from repro.utils.rng import SeedLike

__all__ = ["DelayBoundResult", "run_delay_bound", "format_delay_bound", "DEFAULT_BOUNDS_MS"]

#: Default sweep: from very tight twitch games to RTS-grade tolerance.
DEFAULT_BOUNDS_MS = (100.0, 150.0, 200.0, 250.0, 350.0, 500.0)


@dataclass(frozen=True)
class DelayBoundResult:
    """Per-delay-bound results for each algorithm."""

    label: str
    bounds_ms: List[float]
    results: Dict[float, ReplicatedResult]
    algorithms: List[str]

    def pqos_series(self, algorithm: str) -> List[float]:
        """pQoS as a function of the delay bound for one algorithm."""
        return [self.results[b].pqos(algorithm) for b in self.bounds_ms]

    def utilization_series(self, algorithm: str) -> List[float]:
        """Resource utilisation as a function of the delay bound."""
        return [self.results[b].utilization(algorithm) for b in self.bounds_ms]

    def refinement_gain_series(self) -> List[float]:
        """pQoS gain of GreZ-GreC over GreZ-VirC at each bound (the GreC payoff)."""
        if "grez-grec" not in self.algorithms or "grez-virc" not in self.algorithms:
            raise ValueError("refinement gain needs both grez-grec and grez-virc")
        return [
            self.results[b].pqos("grez-grec") - self.results[b].pqos("grez-virc")
            for b in self.bounds_ms
        ]

    def rows(self, metric: str = "pqos") -> List[list]:
        """One row per delay bound; columns are the algorithms."""
        if metric not in ("pqos", "utilization"):
            raise ValueError("metric must be 'pqos' or 'utilization'")
        rows = []
        for bound in self.bounds_ms:
            result = self.results[bound]
            values = [
                result.pqos(a) if metric == "pqos" else result.utilization(a)
                for a in self.algorithms
            ]
            rows.append([bound] + values)
        return rows


def run_delay_bound(
    label: str = PAPER_DEFAULT_LABEL,
    bounds_ms: Sequence[float] = DEFAULT_BOUNDS_MS,
    algorithms: Optional[Sequence[str]] = None,
    num_runs: int = 3,
    seed: SeedLike = 0,
    correlation: float = 0.5,
    share_topology: bool = True,
    workers: Optional[int] = None,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
) -> DelayBoundResult:
    """Sweep the interactivity bound D and evaluate every algorithm at each value.

    The underlying scenarios are identical across bounds (same seed stream);
    only the bound used for decisions and evaluation changes, so the series are
    directly comparable point-for-point.
    """
    algorithms = list(algorithms or PAPER_ALGORITHM_ORDER)
    config = apply_delay_backend(config_from_label(label, correlation=correlation), delay_backend)
    results: Dict[float, ReplicatedResult] = {}
    for bound in bounds_ms:
        results[float(bound)] = run_replications(
            config,
            algorithms,
            num_runs=num_runs,
            seed=seed,
            delay_bound_ms=float(bound),
            share_topology=share_topology,
            workers=workers,
            solver_backend=solver_backend,
        )
    return DelayBoundResult(
        label=label,
        bounds_ms=[float(b) for b in bounds_ms],
        results=results,
        algorithms=algorithms,
    )


def format_delay_bound(result: DelayBoundResult) -> str:
    """Render the sweep as two tables plus the refinement-gain row."""
    headers = ["delay bound (ms)"] + result.algorithms
    part_a = format_table(
        headers,
        result.rows("pqos"),
        title=f"Delay-bound sensitivity (E10): pQoS, {result.label}",
    )
    part_b = format_table(
        headers,
        result.rows("utilization"),
        title="Delay-bound sensitivity (E10): resource utilisation",
    )
    parts = [part_a, "", part_b]
    if "grez-grec" in result.algorithms and "grez-virc" in result.algorithms:
        gain_rows = [
            [bound, gain]
            for bound, gain in zip(result.bounds_ms, result.refinement_gain_series())
        ]
        parts += [
            "",
            format_table(
                ["delay bound (ms)", "pQoS gain of GreC over VirC"],
                gain_rows,
                title="Where the refined phase pays off",
            ),
        ]
    return "\n".join(parts)
