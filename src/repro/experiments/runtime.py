"""Experiment E9 — algorithm execution times across instance sizes.

The paper reports that all four heuristics "took less than 1 second of
execution time" on every configuration, while the exact MILP needed 0.2 s on
the smallest configuration, 41.5 s on the second and did not finish within 10
hours on the larger two.  This experiment measures the wall-clock time of each
solver as a function of configuration size (heuristics on all configurations,
the MILP only where requested) so that the scaling behaviour — heuristics
roughly linear, exact solver combinatorial — can be verified on this
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.optimal import OptimalOptions, solve_cap_optimal
from repro.core.problem import CAPInstance
from repro.core.registry import solve as registry_solve
from repro.experiments.config import PAPER_TABLE1_LABELS, apply_delay_backend, config_from_label
from repro.experiments.paper_values import PAPER_ALGORITHM_ORDER
from repro.io.tables import format_table
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.utils.timing import Timer
from repro.world.scenario import build_scenario

__all__ = ["RuntimeResult", "run_runtime", "format_runtime"]


@dataclass(frozen=True)
class RuntimeResult:
    """Mean runtime (seconds) per solver and configuration."""

    labels: List[str]
    solvers: List[str]
    runtimes: Dict[str, Dict[str, float]]  # label -> solver -> seconds
    problem_sizes: Dict[str, Dict[str, int]]  # label -> {"clients":..., "zones":..., "servers":...}

    def rows(self) -> List[list]:
        """One row per configuration with per-solver runtimes in seconds."""
        rows = []
        for label in self.labels:
            sizes = self.problem_sizes[label]
            row: list = [label, sizes["servers"], sizes["zones"], sizes["clients"]]
            for solver in self.solvers:
                value = self.runtimes[label].get(solver)
                row.append("-" if value is None else value)
            rows.append(row)
        return rows


def run_runtime(
    labels: Sequence[str] = PAPER_TABLE1_LABELS,
    solvers: Optional[Sequence[str]] = None,
    num_runs: int = 2,
    seed: SeedLike = 0,
    optimal_labels: Sequence[str] = (),
    optimal_time_limit: float = 60.0,
    correlation: float = 0.5,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
) -> RuntimeResult:
    """Measure solver runtimes per configuration.

    The exact MILP is only run on ``optimal_labels`` (empty by default: the
    large instances would dominate the experiment's own wall-clock time, just
    as ``lp_solve`` did in the paper), with a per-phase time limit so a
    pathological instance cannot hang the harness.  ``solver_backend``
    selects the max-regret placement backend under measurement.
    """
    solvers = list(solvers or PAPER_ALGORITHM_ORDER)
    rng = as_generator(seed)
    label_rngs = spawn_generators(rng, len(labels))

    runtimes: Dict[str, Dict[str, float]] = {}
    sizes: Dict[str, Dict[str, int]] = {}
    all_solvers = list(solvers) + (["optimal"] if optimal_labels else [])

    for label, label_rng in zip(labels, label_rngs):
        config = apply_delay_backend(
            config_from_label(label, correlation=correlation), delay_backend
        )
        run_rngs = spawn_generators(label_rng, num_runs)
        per_solver: Dict[str, List[float]] = {s: [] for s in all_solvers}
        for run_index in range(num_runs):
            scenario_rng, solve_rng = spawn_generators(run_rngs[run_index], 2)
            scenario = build_scenario(config, seed=scenario_rng)
            instance = CAPInstance.from_scenario(scenario)
            for solver in solvers:
                with Timer() as timer:
                    registry_solve(instance, solver, seed=solve_rng, backend=solver_backend)
                per_solver[solver].append(timer.elapsed)
            if label in set(optimal_labels):
                with Timer() as timer:
                    solve_cap_optimal(
                        instance, options=OptimalOptions(time_limit=optimal_time_limit)
                    )
                per_solver["optimal"].append(timer.elapsed)
        runtimes[label] = {
            s: (sum(v) / len(v)) for s, v in per_solver.items() if v
        }
        sizes[label] = {
            "servers": config.num_servers,
            "zones": config.num_zones,
            "clients": config.num_clients,
        }

    return RuntimeResult(
        labels=list(labels),
        solvers=all_solvers,
        runtimes=runtimes,
        problem_sizes=sizes,
    )


def format_runtime(result: RuntimeResult) -> str:
    """Render the runtime table (seconds)."""
    headers = ["DVE conf.", "servers", "zones", "clients"] + list(result.solvers)
    return format_table(
        headers,
        result.rows(),
        title="Runtime (E9): mean solver execution time in seconds",
        float_format=".4f",
    )
