"""Experiment E1 — Table 1: pQoS (R) across DVE configurations.

Reproduces the paper's Table 1: for each of the four DVE configurations
(5s-15z-200c-100cp … 30s-160z-2000c-1000cp) and each of the four two-phase
algorithms, report the mean fraction of clients with QoS and (in brackets) the
server resource utilisation, plus the exact MILP baseline on the two small
configurations where it is tractable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import (
    PAPER_SMALL_LABELS,
    PAPER_TABLE1_LABELS,
    apply_delay_backend,
    config_from_label,
)
from repro.experiments.paper_values import (
    PAPER_ALGORITHM_ORDER,
    PAPER_TABLE1_PQOS,
    PAPER_TABLE1_UTILIZATION,
)
from repro.experiments.runner import ReplicatedResult, run_replications
from repro.io.tables import format_table
from repro.utils.rng import SeedLike

__all__ = ["Table1Result", "run_table1", "format_table1"]

_DEFAULT_ALGORITHMS = list(PAPER_ALGORITHM_ORDER)


@dataclass(frozen=True)
class Table1Result:
    """Results of the Table 1 experiment, keyed by configuration label."""

    results: Dict[str, ReplicatedResult]
    algorithms: List[str]
    optimal_labels: List[str] = field(default_factory=list)

    def rows(self) -> List[list]:
        """Rows in the paper's layout: one row per configuration."""
        rows: List[list] = []
        for label, result in self.results.items():
            row: list = [label]
            for name in self.algorithms:
                summary = result.summaries[name]
                row.append(f"{summary.pqos.mean:.2f} ({summary.utilization.mean:.2f})")
            if "optimal" in result.summaries:
                opt = result.summaries["optimal"]
                row.append(f"{opt.pqos.mean:.2f} ({opt.utilization.mean:.2f})")
            else:
                row.append("-")
            rows.append(row)
        return rows

    def paper_rows(self) -> List[list]:
        """The corresponding rows reported by the paper (for side-by-side output)."""
        rows: List[list] = []
        for label in self.results:
            row: list = [label]
            paper_pqos = PAPER_TABLE1_PQOS.get(label, {})
            paper_util = PAPER_TABLE1_UTILIZATION.get(label, {})
            for name in self.algorithms:
                if name in paper_pqos:
                    row.append(f"{paper_pqos[name]:.2f} ({paper_util.get(name, float('nan')):.2f})")
                else:
                    row.append("-")
            if "optimal" in paper_pqos:
                opt_util = paper_util.get("optimal", float("nan"))
                row.append(f"{paper_pqos['optimal']:.2f} ({opt_util:.2f})")
            else:
                row.append("-")
            rows.append(row)
        return rows


def run_table1(
    labels: Sequence[str] = PAPER_TABLE1_LABELS,
    algorithms: Optional[Sequence[str]] = None,
    num_runs: int = 5,
    seed: SeedLike = 0,
    include_optimal: bool = True,
    optimal_labels: Sequence[str] = PAPER_SMALL_LABELS,
    correlation: float = 0.5,
    share_topology: bool = False,
    workers: Optional[int] = None,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
) -> Table1Result:
    """Run the Table 1 experiment.

    Parameters
    ----------
    labels:
        Configuration labels to evaluate (default: the paper's four).
    algorithms:
        Two-phase algorithms to compare (default: the paper's four).
    num_runs:
        Simulation runs per configuration (the paper uses 50).
    include_optimal / optimal_labels:
        Whether (and where) to also run the exact MILP baseline; by default it
        runs on the two small configurations only, as in the paper.
    correlation:
        Physical↔virtual correlation (paper default 0.5).
    share_topology:
        Reuse one topology sample across runs of a configuration (faster).
    workers:
        Worker processes for the replication engine (see
        :func:`~repro.experiments.runner.run_replications`).
    """
    algorithms = list(algorithms or _DEFAULT_ALGORITHMS)
    results: Dict[str, ReplicatedResult] = {}
    used_optimal: List[str] = []
    for label in labels:
        config = apply_delay_backend(
            config_from_label(label, correlation=correlation), delay_backend
        )
        algo_list = list(algorithms)
        if include_optimal and label in set(optimal_labels):
            algo_list.append("optimal")
            used_optimal.append(label)
        results[label] = run_replications(
            config,
            algo_list,
            num_runs=num_runs,
            seed=seed,
            share_topology=share_topology,
            workers=workers,
            solver_backend=solver_backend,
        )
    return Table1Result(results=results, algorithms=algorithms, optimal_labels=used_optimal)


def format_table1(result: Table1Result, include_paper: bool = True) -> str:
    """Render the measured (and optionally the paper's) Table 1."""
    headers = ["DVE conf."] + [a for a in result.algorithms] + ["optimal (MILP)"]
    parts = [
        format_table(
            headers,
            result.rows(),
            title="Table 1 (measured): pQoS (resource utilisation) per configuration",
        )
    ]
    if include_paper:
        parts.append("")
        parts.append(
            format_table(
                headers[:-1] + ["lp_solve"],
                result.paper_rows(),
                title="Table 1 (paper): pQoS (resource utilisation) per configuration",
            )
        )
    return "\n".join(parts)
