"""Experiment E5 — Table 3: pQoS under DVE dynamics (join / leave / move churn).

Reproduces the paper's Table 3: obtain an assignment for the default
configuration with correlation δ = 0, then let 200 new clients join, 200
existing clients leave and 200 clients move to another zone, and report each
algorithm's pQoS **before** the churn, **after** the churn with the stale
assignment, and after the algorithm is **re-executed** on the new population.
The incremental contact-only repair policy (not in the paper) is reported as a
fourth column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dynamics.churn import ChurnSpec
from repro.dynamics.engine import ChurnSimulator, EpochRecord
from repro.experiments.config import PAPER_DEFAULT_LABEL, apply_delay_backend, config_from_label
from repro.experiments.paper_values import PAPER_ALGORITHM_ORDER, PAPER_TABLE3_PQOS
from repro.io.tables import format_table
from repro.metrics.summary import AggregateStat, aggregate
from repro.utils.pool import ordered_map
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.world.scenario import build_scenario

__all__ = ["Table3Result", "run_table3", "format_table3"]


@dataclass(frozen=True)
class Table3Result:
    """Aggregated before/after/re-executed pQoS per algorithm."""

    label: str
    algorithms: List[str]
    before: Dict[str, AggregateStat]
    after: Dict[str, AggregateStat]
    executed: Dict[str, AggregateStat]
    incremental: Dict[str, AggregateStat]

    def rows(self) -> List[list]:
        """One row per algorithm: before / after / re-executed / incremental."""
        rows = []
        for name in self.algorithms:
            rows.append(
                [
                    name,
                    self.before[name].mean,
                    self.after[name].mean,
                    self.executed[name].mean,
                    self.incremental[name].mean,
                ]
            )
        return rows

    def paper_rows(self) -> List[list]:
        """The paper's Table 3 values (no incremental column)."""
        rows = []
        for name in self.algorithms:
            paper = PAPER_TABLE3_PQOS.get(name)
            if paper is None:
                rows.append([name, "-", "-", "-"])
            else:
                rows.append([name, paper["before"], paper["after"], paper["executed"]])
        return rows


def _execute_churn_run(task) -> List[EpochRecord]:
    """One dynamics run (worker-side entry point; must be picklable)."""
    import repro.baselines  # noqa: F401 — repopulate the registry under spawn

    config, algorithms, churn, solver_backend, rng = task
    scenario_rng, sim_rng = spawn_generators(rng, 2)
    scenario = build_scenario(config, seed=scenario_rng)
    simulator = ChurnSimulator(
        scenario=scenario,
        algorithms=list(algorithms),
        churn_spec=churn,
        seed=sim_rng,
        solver_backend=solver_backend,
    )
    return list(simulator.run(num_epochs=1))


def run_table3(
    label: str = PAPER_DEFAULT_LABEL,
    algorithms: Optional[Sequence[str]] = None,
    num_runs: int = 3,
    seed: SeedLike = 0,
    churn: ChurnSpec | None = None,
    correlation: float = 0.0,
    workers: Optional[int] = None,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
) -> Table3Result:
    """Run the dynamics experiment of Table 3.

    Every run builds a fresh scenario (new topology / placements), runs one
    churn epoch for every algorithm, and records the three measurement points;
    results are averaged over runs.  Runs are independent, so ``workers``
    distributes them over a process pool exactly as in
    :func:`~repro.experiments.runner.run_replications`.
    """
    algorithms = list(algorithms or PAPER_ALGORITHM_ORDER)
    churn = churn or ChurnSpec()
    config = apply_delay_backend(config_from_label(label, correlation=correlation), delay_backend)
    rng = as_generator(seed)
    run_rngs = spawn_generators(rng, num_runs)

    tasks = [
        (config, tuple(algorithms), churn, solver_backend, run_rngs[i]) for i in range(num_runs)
    ]
    records: Dict[str, List[EpochRecord]] = {name: [] for name in algorithms}
    for run_records in ordered_map(_execute_churn_run, tasks, workers=workers):
        for record in run_records:
            records[record.algorithm].append(record)

    return Table3Result(
        label=label,
        algorithms=algorithms,
        before={n: aggregate([r.pqos_before for r in records[n]]) for n in algorithms},
        after={n: aggregate([r.pqos_after for r in records[n]]) for n in algorithms},
        executed={n: aggregate([r.pqos_reexecuted for r in records[n]]) for n in algorithms},
        incremental={n: aggregate([r.pqos_incremental for r in records[n]]) for n in algorithms},
    )


def format_table3(result: Table3Result, include_paper: bool = True) -> str:
    """Render the measured (and optionally the paper's) Table 3."""
    measured = format_table(
        ["algorithm", "before", "after", "re-executed", "incremental (ours)"],
        result.rows(),
        title=f"Table 3 (measured): pQoS with DVE dynamics, {result.label}, δ=0",
        float_format=".2f",
    )
    if not include_paper:
        return measured
    paper = format_table(
        ["algorithm", "before", "after", "executed"],
        result.paper_rows(),
        title="Table 3 (paper): pQoS with DVE dynamics",
        float_format=".2f",
    )
    return measured + "\n\n" + paper
