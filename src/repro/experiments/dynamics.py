"""Experiment (extension) — longitudinal DVE dynamics under sustained churn.

The paper's Table 3 measures a *single* churn batch; this driver runs many
churn epochs and tracks how each algorithm's interactivity evolves when the
operator applies a repair policy every epoch (full re-execution, incremental
contact repair, warm-started local search, or scheduled re-executions every
k epochs).  Replications are independent simulation runs — fresh topology,
placements and churn streams — so the driver inherits the parallel
replication engine via the shared ``workers`` knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dynamics.churn import ChurnSpec
from repro.dynamics.engine import BACKENDS, ChurnSimulator
from repro.dynamics.infrastructure import ServerChurnSpec
from repro.dynamics.migration import MigrationCostModel
from repro.dynamics.policies import make_policy
from repro.experiments.config import PAPER_DEFAULT_LABEL, apply_delay_backend, config_from_label
from repro.experiments.paper_values import PAPER_ALGORITHM_ORDER
from repro.io.tables import format_table
from repro.metrics.summary import AggregateStat, GroupedRunningStats
from repro.utils.pool import ordered_map
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.world.scenario import build_scenario

__all__ = ["DynamicsResult", "run_dynamics", "format_dynamics"]


@dataclass(frozen=True)
class DynamicsResult:
    """Aggregated pQoS trajectories of a longitudinal churn study.

    ``after`` / ``adopted`` map ``(algorithm, epoch)`` to the cross-run
    aggregate of the stale (carried-over) and post-repair pQoS.
    """

    label: str
    algorithms: List[str]
    policy: str
    backend: str
    num_epochs: int
    num_runs: int
    churn: ChurnSpec
    after: Dict[tuple, AggregateStat]
    adopted: Dict[tuple, AggregateStat]

    def trajectory(self, algorithm: str) -> List[float]:
        """Mean adopted pQoS per epoch for one algorithm."""
        return [self.adopted[(algorithm, e)].mean for e in range(self.num_epochs)]

    def rows(self) -> List[list]:
        """One row per epoch: stale and adopted pQoS per algorithm."""
        rows = []
        for epoch in range(self.num_epochs):
            row: list = [epoch]
            for name in self.algorithms:
                row.append(self.after[(name, epoch)].mean)
                row.append(self.adopted[(name, epoch)].mean)
            rows.append(row)
        return rows


def _execute_dynamics_run(task) -> GroupedRunningStats:
    """One longitudinal run (worker-side entry point; must be picklable)."""
    import repro.baselines  # noqa: F401 — repopulate the registry under spawn

    (
        config,
        algorithms,
        churn,
        server_churn,
        migration_cost,
        num_epochs,
        policy,
        policy_period,
        backend,
        solver_backend,
        rng,
    ) = task
    scenario_rng, sim_rng = spawn_generators(rng, 2)
    scenario = build_scenario(config, seed=scenario_rng)
    simulator = ChurnSimulator(
        scenario=scenario,
        algorithms=list(algorithms),
        churn_spec=churn,
        server_churn_spec=server_churn,
        migration_cost=migration_cost,
        seed=sim_rng,
        policy=policy,
        policy_period=policy_period,
        backend=backend,
        solver_backend=solver_backend,
    )
    # Stream records into per-(algorithm, epoch) accumulators so the worker
    # ships back O(algorithms × epochs) statistics, not O(epochs) records.
    stats = GroupedRunningStats()
    for record in simulator.stream(num_epochs):
        stats.add(("after", record.algorithm, record.epoch), record.pqos_after)
        stats.add(("adopted", record.algorithm, record.epoch), record.pqos_adopted)
    return stats


def run_dynamics(
    label: str = PAPER_DEFAULT_LABEL,
    algorithms: Optional[Sequence[str]] = None,
    num_runs: int = 3,
    seed: SeedLike = 0,
    num_epochs: int = 5,
    policy: str = "reexecute",
    policy_period: int = 0,
    backend: str = "delta",
    churn: ChurnSpec | None = None,
    server_churn: Optional[ServerChurnSpec] = None,
    migration_cost: Optional[MigrationCostModel] = None,
    correlation: float = 0.0,
    workers: Optional[int] = None,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
) -> DynamicsResult:
    """Run the longitudinal dynamics experiment.

    Every run builds a fresh scenario (new topology / placements), simulates
    ``num_epochs`` churn epochs under the given repair policy, and the
    per-epoch pQoS values are aggregated across runs.  Runs are independent,
    so ``workers`` distributes them over a process pool exactly as in
    :func:`~repro.experiments.runner.run_replications`.  ``server_churn``
    adds infrastructure churn per epoch and ``migration_cost`` prices zone
    moves (both default to the paper's fixed-fleet, free-migration setting).
    """
    algorithms = list(algorithms or PAPER_ALGORITHM_ORDER)
    churn = churn or ChurnSpec()
    migration_cost = migration_cost or MigrationCostModel()
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    config = apply_delay_backend(config_from_label(label, correlation=correlation), delay_backend)
    rng = as_generator(seed)
    run_rngs = spawn_generators(rng, num_runs)

    tasks = [
        (
            config,
            tuple(algorithms),
            churn,
            server_churn,
            migration_cost,
            num_epochs,
            policy,
            policy_period,
            backend,
            solver_backend,
            run_rngs[i],
        )
        for i in range(num_runs)
    ]
    merged = GroupedRunningStats()
    for run_stats in ordered_map(_execute_dynamics_run, tasks, workers=workers):
        merged.merge(run_stats)

    # Resolve the schedule name once so the result reports e.g. "every_5_epochs".
    schedule = make_policy(policy, period=policy_period or None)
    after = {
        (name, epoch): merged.stat(("after", name, epoch))
        for name in algorithms
        for epoch in range(num_epochs)
    }
    adopted = {
        (name, epoch): merged.stat(("adopted", name, epoch))
        for name in algorithms
        for epoch in range(num_epochs)
    }
    return DynamicsResult(
        label=label,
        algorithms=algorithms,
        policy=schedule.name,
        backend=backend,
        num_epochs=num_epochs,
        num_runs=num_runs,
        churn=churn,
        after=after,
        adopted=adopted,
    )


def format_dynamics(result: DynamicsResult, max_rows: int = 12) -> str:
    """Render the trajectory table (subsampled for very long runs)."""
    headers = ["epoch"]
    for name in result.algorithms:
        headers.append(f"{name} stale")
        headers.append(f"{name} adopted")
    rows = result.rows()
    if len(rows) > max_rows:
        step = max(1, len(rows) // max_rows)
        sampled = rows[::step]
        if sampled[-1][0] != rows[-1][0]:
            sampled.append(rows[-1])
        rows = sampled
    churn = result.churn
    title = (
        f"Longitudinal dynamics: pQoS per epoch, {result.label}, "
        f"policy={result.policy}, backend={result.backend}, churn "
        f"{churn.num_joins}j/{churn.num_leaves}l/{churn.num_moves}m, "
        f"{result.num_runs} runs"
    )
    return format_table(headers, rows, title=title, float_format=".3f")
