"""Experiment (extension) — cross-shard capacity arbitration in federated worlds.

Several independent DVE shards share one topology and one server fleet
(:mod:`repro.world.federation`); this driver compares capacity arbiters
(:mod:`repro.core.arbitration`) on a *skewed* federation — shard client
populations descend (the first shard is the largest), so a static equal split
starves the big shard while demand-aware arbiters move capacity toward it.

Every arbiter replays the same federation and the same churn streams (shared
integer seed per run), so differences come from the arbitration policy alone.
Scores per arbiter:

* **aggregate pQoS** — client-weighted over all shards (the operator's SLA);
* **worst-shard pQoS** — the fairness floor a per-world SLA cares about;
* **pQoS spread** — max minus min shard mean (inter-world fairness);
* **migration bill** — clients migrated and cost per epoch, plus the maximum
  single-epoch bill (to check the per-epoch migration budget held).

Replications are independent federations (fresh topology, placements and
churn), parallelised over the shared ``workers`` knob.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.arbitration import ARBITER_NAMES, CapacityArbiter, make_arbiter
from repro.dynamics.churn import ChurnSpec
from repro.dynamics.federation_engine import AGGREGATE_SHARD_ID, FederatedSimulator
from repro.dynamics.migration import MigrationCostModel
from repro.experiments.config import PAPER_DEFAULT_LABEL, apply_delay_backend, config_from_label
from repro.io.tables import format_table
from repro.metrics.summary import AggregateStat, GroupedRunningStats
from repro.utils.pool import ordered_map
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.world.federation import build_federation, split_client_counts

__all__ = ["FederationResult", "run_federation", "format_federation"]

#: Per-arbiter metrics aggregated across runs.
_METRICS = (
    "mean_pqos",
    "worst_shard_pqos",
    "pqos_spread",
    "clients_migrated",
    "migration_cost",
    "max_epoch_migration_cost",
)

#: Default per-epoch churn, as a fraction of each shard's client count.
_DEFAULT_CHURN_FRACTION = 0.1


@dataclass(frozen=True)
class FederationResult:
    """Aggregated arbiter comparison on a federated world.

    ``stats`` maps ``(arbiter_name, metric)`` to the cross-run aggregate for
    the metrics in :data:`_METRICS`.
    """

    label: str
    algorithm: str
    num_shards: int
    arbiter_names: List[str]
    num_epochs: int
    num_runs: int
    client_weights: Tuple[float, ...]
    migration_budget: Optional[float]
    stats: Dict[Tuple[str, str], AggregateStat]

    def rows(self) -> List[list]:
        """One row per arbiter with every aggregated metric's mean."""
        return [
            [name, *(self.stats[(name, metric)].mean for metric in _METRICS)]
            for name in self.arbiter_names
        ]


def _shard_churn_specs(config, num_shards, client_weights) -> List[ChurnSpec]:
    """Per-shard churn at the default fraction of each shard's population."""
    counts = split_client_counts(config.num_clients, num_shards, weights=client_weights)
    return [
        ChurnSpec(
            num_joins=max(1, round(_DEFAULT_CHURN_FRACTION * c)),
            num_leaves=max(1, round(_DEFAULT_CHURN_FRACTION * c)),
            num_moves=max(1, round(_DEFAULT_CHURN_FRACTION * c)),
        )
        for c in counts
    ]


def _execute_federation_run(task) -> GroupedRunningStats:
    """One replication across all arbiters (worker-side; must be picklable)."""
    import repro.baselines  # noqa: F401 — repopulate the registry under spawn

    (
        config,
        algorithm,
        arbiters,
        num_shards,
        client_weights,
        churn_specs,
        migration_cost,
        migration_budget,
        num_epochs,
        policy,
        backend,
        solver_backend,
        shard_workers,
        rng,
    ) = task
    fed_rng, sim_rng = spawn_generators(rng, 2)
    world = build_federation(
        config, num_shards=num_shards, seed=fed_rng, client_weights=list(client_weights)
    )
    # Every arbiter replays the same world and churn streams — a shared
    # *integer* seed (not a shared Generator) re-seeds identically per arbiter.
    sim_seed = int(sim_rng.integers(2**63))
    stats = GroupedRunningStats()
    for name, arbiter in arbiters:
        simulator = FederatedSimulator(
            world=world,
            algorithms=[algorithm],
            arbiter=arbiter,
            churn_spec=list(churn_specs),
            migration_cost=migration_cost,
            seed=sim_seed,
            policy=policy,
            policy_migration_budget=migration_budget,
            backend=backend,
            solver_backend=solver_backend,
            shard_workers=shard_workers,
        )
        records = simulator.run(num_epochs)
        aggregate = [r for r in records if r.shard_id == AGGREGATE_SHARD_ID]
        shard_means: Dict[int, List[float]] = {}
        for r in records:
            if r.shard_id != AGGREGATE_SHARD_ID and not math.isnan(r.pqos_adopted):
                shard_means.setdefault(r.shard_id, []).append(r.pqos_adopted)
        means = [sum(v) / len(v) for v in shard_means.values()]
        stats.add((name, "mean_pqos"), sum(r.pqos_adopted for r in aggregate) / len(aggregate))
        stats.add((name, "worst_shard_pqos"), min(means))
        stats.add((name, "pqos_spread"), max(means) - min(means))
        stats.add(
            (name, "clients_migrated"),
            sum(r.clients_migrated for r in aggregate) / len(aggregate),
        )
        stats.add(
            (name, "migration_cost"),
            sum(r.migration_cost for r in aggregate) / len(aggregate),
        )
        stats.add(
            (name, "max_epoch_migration_cost"),
            max(r.migration_cost for r in aggregate),
        )
    return stats


def run_federation(
    label: str = PAPER_DEFAULT_LABEL,
    num_shards: int = 3,
    arbiters: Optional[Sequence[Union[str, CapacityArbiter]]] = None,
    algorithm: str = "grez-grec",
    num_runs: int = 3,
    seed: SeedLike = 0,
    num_epochs: int = 5,
    churn: Optional[ChurnSpec] = None,
    migration_cost: Optional[MigrationCostModel] = None,
    migration_budget: Optional[float] = None,
    client_weights: Optional[Sequence[float]] = None,
    correlation: float = 0.0,
    policy: str = "reexecute",
    backend: str = "delta",
    workers: Optional[int] = None,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
    shard_workers: Optional[int] = None,
) -> FederationResult:
    """Run the federated-arbitration experiment.

    The label's client population is split across ``num_shards`` shards with
    descending weights (``N, N-1, …, 1`` by default), per-shard churn runs at
    10 % of each shard's population, migrations cost one unit per client, and
    every scheduled re-execution is capped by a per-shard migration budget of
    25 % of the shard-average population (so arbiters are compared under the
    same disruption ceiling).  Pass ``churn`` to force one spec for every
    shard, ``migration_budget=math.inf`` for the unbudgeted setting.

    ``workers`` parallelises *replications* over processes; ``shard_workers``
    additionally threads the shards *within* each federated epoch (records
    are bit-identical either way).  The two compose, but on small machines
    prefer one level of parallelism at a time.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    config = apply_delay_backend(config_from_label(label, correlation=correlation), delay_backend)
    if client_weights is None:
        client_weights = tuple(float(num_shards - i) for i in range(num_shards))
    client_weights = tuple(float(w) for w in client_weights)
    if churn is None:
        churn_specs = _shard_churn_specs(config, num_shards, client_weights)
    else:
        churn_specs = [churn] * num_shards
    if migration_cost is None:
        migration_cost = MigrationCostModel(cost_per_client=1.0)
    if migration_budget is None:
        migration_budget = (
            0.25 * config.num_clients / num_shards * migration_cost.cost_per_client
            if migration_cost.cost_per_client > 0
            else math.inf
        )
    resolved: List[Tuple[str, CapacityArbiter]] = []
    for entry in arbiters if arbiters is not None else ARBITER_NAMES:
        instance = make_arbiter(entry, solver_backend=solver_backend)
        resolved.append((instance.name, instance))

    rng = as_generator(seed)
    run_rngs = spawn_generators(rng, num_runs)
    tasks = [
        (
            config,
            algorithm,
            tuple(resolved),
            num_shards,
            client_weights,
            tuple(churn_specs),
            migration_cost,
            migration_budget,
            num_epochs,
            policy,
            backend,
            solver_backend,
            shard_workers,
            run_rngs[i],
        )
        for i in range(num_runs)
    ]
    merged = GroupedRunningStats()
    for run_stats in ordered_map(_execute_federation_run, tasks, workers=workers):
        merged.merge(run_stats)

    names = [name for name, _ in resolved]
    stats = {
        (name, metric): merged.stat((name, metric)) for name in names for metric in _METRICS
    }
    return FederationResult(
        label=label,
        algorithm=algorithm,
        num_shards=num_shards,
        arbiter_names=names,
        num_epochs=num_epochs,
        num_runs=num_runs,
        client_weights=client_weights,
        migration_budget=None if math.isinf(migration_budget) else migration_budget,
        stats=stats,
    )


def format_federation(result: FederationResult) -> str:
    """Render the arbiter comparison table."""
    budget = "unlimited" if result.migration_budget is None else f"{result.migration_budget:g}"
    weights = ", ".join(f"{w:g}" for w in result.client_weights)
    title = (
        f"Federated arbitration on {result.algorithm}, {result.label} split over "
        f"{result.num_shards} shards (weights {weights}), "
        f"{result.num_epochs} epochs × {result.num_runs} runs, "
        f"per-shard migration budget {budget}"
    )
    headers = [
        "arbiter",
        "aggregate pQoS",
        "worst-shard pQoS",
        "pQoS spread",
        "clients migrated / epoch",
        "migration cost / epoch",
        "max epoch cost",
    ]
    return format_table(headers, result.rows(), title=title, float_format=".3f")
