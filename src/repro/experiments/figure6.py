"""Experiment E4 — Figure 6: impact of clustered client distributions.

Reproduces the paper's Figure 6: on the default configuration
(20s-80z-1000c-500cp), evaluate the four distribution types of its Table 2
(no clustering / physical-world clusters / virtual-world clusters / both) and
report per-algorithm pQoS and resource utilisation.

Expected shape: virtual-world clustering (types 2 and 3) sharply increases
resource utilisation for every algorithm (zone bandwidth grows quadratically
with zone population) and slightly lowers GreZ-GreC's pQoS, while
physical-world clustering alone has little effect on either metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import PAPER_DEFAULT_LABEL, apply_delay_backend, config_from_label
from repro.experiments.paper_values import PAPER_ALGORITHM_ORDER
from repro.experiments.runner import ReplicatedResult, run_replications
from repro.io.tables import format_table
from repro.utils.rng import SeedLike
from repro.world.distributions import DISTRIBUTION_TYPES

__all__ = ["Figure6Result", "run_figure6", "format_figure6"]


@dataclass(frozen=True)
class Figure6Result:
    """Per-distribution-type results for each algorithm."""

    label: str
    types: List[int]
    results: Dict[int, ReplicatedResult]
    algorithms: List[str]

    def pqos_series(self, algorithm: str) -> List[float]:
        """pQoS per distribution type for one algorithm."""
        return [self.results[t].pqos(algorithm) for t in self.types]

    def utilization_series(self, algorithm: str) -> List[float]:
        """Resource utilisation per distribution type for one algorithm."""
        return [self.results[t].utilization(algorithm) for t in self.types]

    def rows(self, metric: str = "pqos") -> List[list]:
        """One row per distribution type; columns are the algorithms."""
        if metric not in ("pqos", "utilization"):
            raise ValueError("metric must be 'pqos' or 'utilization'")
        rows = []
        for t in self.types:
            result = self.results[t]
            pw, vw = DISTRIBUTION_TYPES[t]
            values = [
                result.pqos(a) if metric == "pqos" else result.utilization(a)
                for a in self.algorithms
            ]
            rows.append([t, pw, vw] + values)
        return rows


def run_figure6(
    label: str = PAPER_DEFAULT_LABEL,
    types: Sequence[int] = (0, 1, 2, 3),
    algorithms: Optional[Sequence[str]] = None,
    num_runs: int = 3,
    seed: SeedLike = 0,
    correlation: float = 0.5,
    hot_zone_factor: float = 10.0,
    share_topology: bool = True,
    workers: Optional[int] = None,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
) -> Figure6Result:
    """Run the distribution-type sweep of Figure 6."""
    algorithms = list(algorithms or PAPER_ALGORITHM_ORDER)
    results: Dict[int, ReplicatedResult] = {}
    for dist_type in types:
        if dist_type not in DISTRIBUTION_TYPES:
            raise ValueError(f"unknown distribution type {dist_type}")
        physical, virtual = DISTRIBUTION_TYPES[dist_type]
        config = apply_delay_backend(
            config_from_label(
                label,
                correlation=correlation,
                physical_distribution=physical,
                virtual_distribution=virtual,
                hot_zone_factor=hot_zone_factor,
            ),
            delay_backend,
        )
        results[int(dist_type)] = run_replications(
            config,
            algorithms,
            num_runs=num_runs,
            seed=seed,
            share_topology=share_topology,
            workers=workers,
            solver_backend=solver_backend,
        )
    return Figure6Result(
        label=label,
        types=[int(t) for t in types],
        results=results,
        algorithms=algorithms,
    )


def format_figure6(result: Figure6Result) -> str:
    """Render both panels (pQoS and resource utilisation) as text tables."""
    headers = ["type", "physical", "virtual"] + result.algorithms
    part_a = format_table(
        headers,
        result.rows("pqos"),
        title=f"Figure 6(a): pQoS vs distribution type, {result.label}",
    )
    part_b = format_table(
        headers,
        result.rows("utilization"),
        title="Figure 6(b): resource utilisation vs distribution type",
    )
    return part_a + "\n\n" + part_b
