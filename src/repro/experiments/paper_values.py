"""The numbers reported by the paper, for side-by-side comparison.

These are transcribed from the paper's Tables 1, 3 and 4 (pQoS with resource
utilisation in brackets where given) and from the qualitative description of
Figures 4-6.  The benchmark harness prints measured values next to these so
EXPERIMENTS.md can record paper-vs-measured for every artefact, and the
integration tests assert the *shape* relations (orderings, trends) rather than
the absolute values, which depend on the authors' exact topology instances.
"""

from __future__ import annotations

__all__ = [
    "PAPER_TABLE1_PQOS",
    "PAPER_TABLE1_UTILIZATION",
    "PAPER_TABLE3_PQOS",
    "PAPER_TABLE4_PQOS",
    "PAPER_TABLE4_UTILIZATION",
    "PAPER_ALGORITHM_ORDER",
]

#: Algorithm column order used by the paper's tables.
PAPER_ALGORITHM_ORDER = ("ranz-virc", "ranz-grec", "grez-virc", "grez-grec")

#: Table 1 — pQoS per configuration and algorithm ("optimal" = lp_solve column).
PAPER_TABLE1_PQOS = {
    "5s-15z-200c-100cp": {
        "ranz-virc": 0.57,
        "ranz-grec": 0.66,
        "grez-virc": 0.79,
        "grez-grec": 0.82,
        "optimal": 0.83,
    },
    "10s-30z-400c-200cp": {
        "ranz-virc": 0.57,
        "ranz-grec": 0.69,
        "grez-virc": 0.83,
        "grez-grec": 0.88,
        "optimal": 0.89,
    },
    "20s-80z-1000c-500cp": {
        "ranz-virc": 0.61,
        "ranz-grec": 0.75,
        "grez-virc": 0.89,
        "grez-grec": 0.94,
    },
    "30s-160z-2000c-1000cp": {
        "ranz-virc": 0.58,
        "ranz-grec": 0.76,
        "grez-virc": 0.91,
        "grez-grec": 0.96,
    },
}

#: Table 1 — resource utilisation (the bracketed values).
PAPER_TABLE1_UTILIZATION = {
    "5s-15z-200c-100cp": {
        "ranz-virc": 0.60,
        "ranz-grec": 0.77,
        "grez-virc": 0.60,
        "grez-grec": 0.66,
        "optimal": 0.73,
    },
    "10s-30z-400c-200cp": {
        "ranz-virc": 0.61,
        "ranz-grec": 0.84,
        "grez-virc": 0.61,
        "grez-grec": 0.69,
        "optimal": 0.69,
    },
    "20s-80z-1000c-500cp": {
        "ranz-virc": 0.58,
        "ranz-grec": 0.88,
        "grez-virc": 0.58,
        "grez-grec": 0.66,
    },
    "30s-160z-2000c-1000cp": {
        "ranz-virc": 0.58,
        "ranz-grec": 0.93,
        "grez-virc": 0.58,
        "grez-grec": 0.65,
    },
}

#: Table 3 — pQoS around one churn batch (before / after / re-executed), δ = 0.
PAPER_TABLE3_PQOS = {
    "ranz-virc": {"before": 0.59, "after": 0.59, "executed": 0.59},
    "ranz-grec": {"before": 0.73, "after": 0.68, "executed": 0.71},
    "grez-virc": {"before": 0.83, "after": 0.79, "executed": 0.82},
    "grez-grec": {"before": 0.90, "after": 0.83, "executed": 0.90},
}

#: Table 4 — pQoS under delay-estimation error (e = 1.2 King, e = 2 IDMaps).
PAPER_TABLE4_PQOS = {
    1.2: {"ranz-virc": 0.58, "ranz-grec": 0.70, "grez-virc": 0.86, "grez-grec": 0.90},
    2.0: {"ranz-virc": 0.59, "ranz-grec": 0.57, "grez-virc": 0.80, "grez-grec": 0.78},
}

#: Table 4 — resource utilisation under delay-estimation error.
PAPER_TABLE4_UTILIZATION = {
    1.2: {"ranz-virc": 0.58, "ranz-grec": 0.91, "grez-virc": 0.58, "grez-grec": 0.67},
    2.0: {"ranz-virc": 0.58, "ranz-grec": 1.00, "grez-virc": 0.58, "grez-grec": 0.82},
}
