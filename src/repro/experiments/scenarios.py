"""Experiment (extension) — incident scenarios and recovery tracking.

Runs every named scenario of the incident library (regional outage, flash
crowd, diurnal wave, maintenance calendar, link degradation and the
composed outage + flash crowd) through the churn simulator with graceful
degradation enabled, and aggregates the recovery metrics — time to recover,
pQoS dip depth / area, degraded client-epochs — across independent
replications.  The point of the study is robustness, not raw pQoS: every
world is pushed into (possibly infeasible) territory and the engine must
shed, track and re-admit instead of crashing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.dynamics.churn import ChurnSpec
from repro.dynamics.degradation import AdmissionPolicy
from repro.dynamics.engine import BACKENDS, ChurnSimulator
from repro.dynamics.scenarios import SCENARIO_LIBRARY
from repro.experiments.config import PAPER_DEFAULT_LABEL, apply_delay_backend, config_from_label
from repro.io.tables import format_table
from repro.metrics.recovery import recovery_report
from repro.metrics.summary import AggregateStat, GroupedRunningStats
from repro.utils.pool import ordered_map
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.world.scenario import build_scenario

__all__ = ["ScenariosResult", "run_scenarios", "format_scenarios"]

#: Recovery metrics reported per (scenario, algorithm), in column order.
RECOVERY_METRICS = (
    "time_to_recover",
    "dip_depth",
    "dip_area",
    "degraded_client_epochs",
    "max_clients_degraded",
    "recovered",
)


@dataclass(frozen=True)
class ScenariosResult:
    """Aggregated recovery metrics of the incident-scenario study.

    ``stats`` maps ``(scenario, algorithm, metric)`` — with ``metric`` one of
    :data:`RECOVERY_METRICS` — to its cross-run aggregate.  ``recovered`` is
    aggregated as a 0/1 indicator, so its mean is the recovery rate.
    """

    label: str
    scenarios: List[str]
    algorithms: List[str]
    num_epochs: int
    num_runs: int
    churn: ChurnSpec
    patience_epochs: Optional[int]
    stats: Dict[tuple, AggregateStat]

    def rows(self) -> List[list]:
        """One row per (scenario, algorithm) with the mean of each metric."""
        rows = []
        for scenario in self.scenarios:
            for name in self.algorithms:
                row: list = [scenario, name]
                row.extend(self.stats[(scenario, name, m)].mean for m in RECOVERY_METRICS)
                rows.append(row)
        return rows


def _execute_scenario_run(task) -> GroupedRunningStats:
    """One scenario replication (worker-side entry point; must be picklable)."""
    import repro.baselines  # noqa: F401 — repopulate the registry under spawn

    (
        config,
        scenario_name,
        algorithms,
        churn,
        num_epochs,
        backend,
        solver_backend,
        measurement_backend,
        patience_epochs,
        rng,
    ) = task
    scenario_rng, sim_rng = spawn_generators(rng, 2)
    world = build_scenario(config, seed=scenario_rng)
    simulator = ChurnSimulator(
        scenario=world,
        algorithms=list(algorithms),
        churn_spec=churn,
        seed=sim_rng,
        backend=backend,
        solver_backend=solver_backend,
        measurement_backend=measurement_backend,
        scenario_timeline=scenario_name,
        admission_policy=AdmissionPolicy(patience_epochs=patience_epochs),
    )
    records = list(simulator.stream(num_epochs))
    stats = GroupedRunningStats()
    for name in algorithms:
        report = recovery_report(records, algorithm=name)
        stats.add((scenario_name, name, "time_to_recover"), float(report.time_to_recover))
        stats.add((scenario_name, name, "dip_depth"), report.dip_depth)
        stats.add((scenario_name, name, "dip_area"), report.dip_area)
        stats.add(
            (scenario_name, name, "degraded_client_epochs"),
            float(report.degraded_client_epochs),
        )
        stats.add(
            (scenario_name, name, "max_clients_degraded"),
            float(report.max_clients_degraded),
        )
        stats.add((scenario_name, name, "recovered"), 1.0 if report.recovered else 0.0)
    return stats


def run_scenarios(
    label: str = PAPER_DEFAULT_LABEL,
    scenarios: Optional[Sequence[str]] = None,
    algorithms: Optional[Sequence[str]] = None,
    num_runs: int = 3,
    seed: SeedLike = 0,
    num_epochs: int = 16,
    backend: str = "delta",
    churn: ChurnSpec | None = None,
    patience_epochs: Optional[int] = 6,
    correlation: float = 0.0,
    workers: Optional[int] = None,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
    measurement_backend: str = "incremental",
) -> ScenariosResult:
    """Run the incident-scenario recovery experiment.

    Each (scenario, run) pair is an independent replication — fresh topology,
    placements and churn stream — simulated for ``num_epochs`` epochs with the
    named disturbance timeline active and admission control shedding excess
    clients to the degraded pool (``patience_epochs`` bounds how long a shed
    client waits before abandoning; ``None`` waits forever).  Recovery metrics
    are computed per replication and aggregated across runs.
    """
    scenarios = list(scenarios or sorted(SCENARIO_LIBRARY))
    for name in scenarios:
        if name not in SCENARIO_LIBRARY:
            raise ValueError(
                f"unknown scenario {name!r}; available: {', '.join(sorted(SCENARIO_LIBRARY))}"
            )
    algorithms = list(algorithms or ("grez-grec",))
    churn = churn or ChurnSpec()
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {BACKENDS}")
    config = apply_delay_backend(config_from_label(label, correlation=correlation), delay_backend)
    rng = as_generator(seed)
    # One independent sub-stream per (scenario, run); scenario order is fixed
    # above, so the streams are stable for a fixed seed.
    run_rngs = spawn_generators(rng, len(scenarios) * num_runs)

    tasks = [
        (
            config,
            scenario_name,
            tuple(algorithms),
            churn,
            num_epochs,
            backend,
            solver_backend,
            measurement_backend,
            patience_epochs,
            run_rngs[i * num_runs + r],
        )
        for i, scenario_name in enumerate(scenarios)
        for r in range(num_runs)
    ]
    merged = GroupedRunningStats()
    for run_stats in ordered_map(_execute_scenario_run, tasks, workers=workers):
        merged.merge(run_stats)

    stats = {
        (scenario, name, metric): merged.stat((scenario, name, metric))
        for scenario in scenarios
        for name in algorithms
        for metric in RECOVERY_METRICS
    }
    return ScenariosResult(
        label=label,
        scenarios=scenarios,
        algorithms=algorithms,
        num_epochs=num_epochs,
        num_runs=num_runs,
        churn=churn,
        patience_epochs=patience_epochs,
        stats=stats,
    )


def format_scenarios(result: ScenariosResult) -> str:
    """Render the per-scenario recovery table."""
    headers = [
        "scenario",
        "algorithm",
        "ttr (epochs)",
        "dip depth",
        "dip area",
        "degraded c-e",
        "max pool",
        "recovered",
    ]
    title = (
        f"Incident scenarios: recovery metrics, {result.label}, "
        f"{result.num_epochs} epochs, patience={result.patience_epochs}, "
        f"{result.num_runs} runs"
    )
    return format_table(headers, result.rows(), title=title, float_format=".3f")
