"""Experiment E2 — Figure 4: CDF of client→target-server delays.

Reproduces the paper's Figure 4: for the largest configuration
(30s-160z-2000c-1000cp) plot, for every algorithm, the cumulative distribution
of the communication delays from all clients to their target servers over the
[250 ms, 500 ms] range.  The paper's qualitative finding: GreZ-GreC not only
has the highest fraction of clients within the bound but also keeps the
clients *without* QoS closest to the bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.experiments.config import apply_delay_backend, config_from_label
from repro.experiments.paper_values import PAPER_ALGORITHM_ORDER
from repro.experiments.runner import run_replications
from repro.io.tables import format_table
from repro.metrics.cdf import EmpiricalCDF
from repro.utils.rng import SeedLike

__all__ = ["Figure4Result", "run_figure4", "format_figure4"]

#: Configuration used by the paper for Figure 4.
FIGURE4_LABEL = "30s-160z-2000c-1000cp"


@dataclass(frozen=True)
class Figure4Result:
    """Per-algorithm delay CDFs on the Figure 4 configuration."""

    label: str
    cdfs: Dict[str, EmpiricalCDF]
    pqos: Dict[str, float]

    def rows(self) -> List[list]:
        """One row per grid point: threshold followed by each algorithm's CDF value."""
        algorithms = list(self.cdfs)
        grid = self.cdfs[algorithms[0]].grid
        rows = []
        for i, threshold in enumerate(grid):
            rows.append([float(threshold)] + [float(self.cdfs[a].values[i]) for a in algorithms])
        return rows

    def algorithms(self) -> List[str]:
        """Algorithm names, in insertion order."""
        return list(self.cdfs)


def run_figure4(
    label: str = FIGURE4_LABEL,
    algorithms: Optional[Sequence[str]] = None,
    num_runs: int = 3,
    seed: SeedLike = 0,
    correlation: float = 0.5,
    grid: Optional[np.ndarray] = None,
    share_topology: bool = True,
    workers: Optional[int] = None,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
) -> Figure4Result:
    """Run the Figure 4 experiment and return per-algorithm delay CDFs."""
    algorithms = list(algorithms or PAPER_ALGORITHM_ORDER)
    config = apply_delay_backend(config_from_label(label, correlation=correlation), delay_backend)
    if grid is None:
        grid = np.linspace(250.0, 500.0, 26)
    result = run_replications(
        config,
        algorithms,
        num_runs=num_runs,
        seed=seed,
        collect_delays=True,
        cdf_grid=grid,
        share_topology=share_topology,
        workers=workers,
        solver_backend=solver_backend,
    )
    cdfs = {
        name: result.summaries[name].delay_cdf
        for name in algorithms
        if result.summaries[name].delay_cdf is not None
    }
    pqos = {name: result.summaries[name].pqos.mean for name in algorithms}
    return Figure4Result(label=label, cdfs=cdfs, pqos=pqos)


def format_figure4(result: Figure4Result) -> str:
    """Render the CDF series as a plain-text table (one column per algorithm)."""
    algorithms = result.algorithms()
    headers = ["delay (ms)"] + algorithms
    table = format_table(
        headers,
        result.rows(),
        title=f"Figure 4: CDF of client→target delays, {result.label}",
    )
    pqos_line = "pQoS: " + ", ".join(f"{a}={result.pqos[a]:.3f}" for a in algorithms)
    return table + "\n" + pqos_line
