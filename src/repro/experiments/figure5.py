"""Experiment E3 — Figure 5: impact of the physical↔virtual correlation.

Reproduces the paper's Figure 5: on the default configuration
(20s-80z-1000c-500cp) with delay bound D = 200 ms, sweep the correlation
parameter δ over {0, 0.2, ..., 1.0} and report, per algorithm, (a) pQoS and
(b) resource utilisation.

Expected shape (the paper's finding): the pQoS of the delay-aware initial
assignments (GreZ-VirC, GreZ-GreC) increases markedly with δ while the RanZ
variants stay roughly flat, and GreZ-GreC's resource utilisation falls as δ
grows (fewer clients need forwarding when their zone's server is nearby).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.experiments.config import PAPER_DEFAULT_LABEL, apply_delay_backend, config_from_label
from repro.experiments.paper_values import PAPER_ALGORITHM_ORDER
from repro.experiments.runner import ReplicatedResult, run_replications
from repro.io.tables import format_table
from repro.utils.rng import SeedLike

__all__ = ["Figure5Result", "run_figure5", "format_figure5"]

#: Correlation values swept by the paper.
DEFAULT_CORRELATIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
#: The delay bound used for Figure 5 (the paper sets D = 200 ms here).
FIGURE5_DELAY_BOUND_MS = 200.0


@dataclass(frozen=True)
class Figure5Result:
    """Per-correlation results for each algorithm."""

    label: str
    correlations: List[float]
    results: Dict[float, ReplicatedResult]
    algorithms: List[str]

    def pqos_series(self, algorithm: str) -> List[float]:
        """pQoS as a function of correlation for one algorithm."""
        return [self.results[c].pqos(algorithm) for c in self.correlations]

    def utilization_series(self, algorithm: str) -> List[float]:
        """Resource utilisation as a function of correlation for one algorithm."""
        return [self.results[c].utilization(algorithm) for c in self.correlations]

    def rows(self, metric: str = "pqos") -> List[list]:
        """One row per correlation value; columns are the algorithms."""
        if metric not in ("pqos", "utilization"):
            raise ValueError("metric must be 'pqos' or 'utilization'")
        rows = []
        for c in self.correlations:
            result = self.results[c]
            values = [
                result.pqos(a) if metric == "pqos" else result.utilization(a)
                for a in self.algorithms
            ]
            rows.append([c] + values)
        return rows


def run_figure5(
    label: str = PAPER_DEFAULT_LABEL,
    correlations: Sequence[float] = DEFAULT_CORRELATIONS,
    algorithms: Optional[Sequence[str]] = None,
    num_runs: int = 3,
    seed: SeedLike = 0,
    delay_bound_ms: float = FIGURE5_DELAY_BOUND_MS,
    share_topology: bool = True,
    workers: Optional[int] = None,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
) -> Figure5Result:
    """Run the correlation sweep of Figure 5."""
    algorithms = list(algorithms or PAPER_ALGORITHM_ORDER)
    results: Dict[float, ReplicatedResult] = {}
    for delta in correlations:
        config = apply_delay_backend(
            config_from_label(label, correlation=float(delta), delay_bound_ms=delay_bound_ms),
            delay_backend,
        )
        results[float(delta)] = run_replications(
            config,
            algorithms,
            num_runs=num_runs,
            seed=seed,
            share_topology=share_topology,
            workers=workers,
            solver_backend=solver_backend,
        )
    return Figure5Result(
        label=label,
        correlations=[float(c) for c in correlations],
        results=results,
        algorithms=algorithms,
    )


def format_figure5(result: Figure5Result) -> str:
    """Render both panels (pQoS and resource utilisation) as text tables."""
    headers = ["correlation"] + result.algorithms
    part_a = format_table(
        headers,
        result.rows("pqos"),
        title=(
            f"Figure 5(a): pQoS vs correlation, {result.label}, "
            f"D={FIGURE5_DELAY_BOUND_MS:.0f} ms"
        ),
    )
    part_b = format_table(
        headers,
        result.rows("utilization"),
        title="Figure 5(b): resource utilisation vs correlation",
    )
    return part_a + "\n\n" + part_b
