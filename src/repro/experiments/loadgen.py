"""Sustained-throughput load generator for the epoch engine.

The online-service reading of the paper's assignment problem cares about a
number the figures never show: how many churn epochs per second one engine
can sustain at steady state.  ``repro-dve loadgen`` (and the throughput
benchmark built on the same harness) answers it by streaming a long run of
identical churn epochs through one :class:`~repro.dynamics.engine.EpochSession`
and reporting

* steady-state **epochs/sec** and **events/sec** (events = joins + leaves +
  moves processed per epoch), measured after a warmup prefix so allocator
  ramp-up and branch warm-up never count;
* the **p50 / p99 epoch wall time**, from per-epoch timestamps;
* the per-phase wall-time split the engine already keeps; and, optionally,
* the per-phase **allocated bytes per epoch** at steady state, from a
  separate tracemalloc-instrumented pass (tracemalloc costs wall time, so it
  never taints the throughput numbers).

The harness is deliberately symmetric in the ``arena`` flag: the same driver
measures the allocation-free fast path and the ``arena=False`` executable
specification, which is how the benchmark states its speedup as a
same-harness ratio.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dynamics.churn import ChurnSpec
from repro.dynamics.engine import ChurnSimulator
from repro.experiments.config import (
    PAPER_DEFAULT_LABEL,
    apply_delay_backend,
    config_from_label,
)
from repro.io.tables import format_table
from repro.utils.rng import SeedLike
from repro.world.scenario import build_scenario

__all__ = ["LoadgenResult", "run_loadgen", "format_loadgen"]


@dataclass(frozen=True)
class LoadgenResult:
    """Steady-state throughput measurements of one epoch-engine run."""

    label: str
    policy: str
    backend: str
    measurement_backend: str
    arena: bool
    epochs: int
    warmup: int
    events_per_epoch: int
    wall_seconds: float
    epochs_per_sec: float
    events_per_sec: float
    p50_epoch_ms: float
    p99_epoch_ms: float
    phase_seconds: Dict[str, float]
    #: Steady-state tracemalloc peak bytes per phase *per epoch*; ``None``
    #: unless the alloc pass ran.
    phase_alloc_bytes_per_epoch: Optional[Dict[str, float]]
    #: ``EpochArena.stats()`` after the run (``None`` with ``arena=False``).
    arena_stats: Optional[dict]

    @property
    def alloc_bytes_per_epoch(self) -> Optional[float]:
        """Total steady-state allocated bytes per epoch across all phases."""
        if self.phase_alloc_bytes_per_epoch is None:
            return None
        return float(sum(self.phase_alloc_bytes_per_epoch.values()))


def _build_session(
    label: str,
    algorithms: Sequence[str],
    churn: ChurnSpec,
    policy: str,
    backend: str,
    measurement_backend: str,
    correlation: float,
    seed: SeedLike,
    arena: bool,
    num_epochs: int,
    solver_backend: Optional[str],
    delay_backend: Optional[str],
):
    config = apply_delay_backend(
        config_from_label(label, correlation=correlation), delay_backend
    )
    scenario = build_scenario(config, seed=seed)
    simulator = ChurnSimulator(
        scenario=scenario,
        algorithms=list(algorithms),
        churn_spec=churn,
        seed=seed,
        policy=policy,
        backend=backend,
        solver_backend=solver_backend,
        measurement_backend=measurement_backend,
        arena=arena,
    )
    return simulator.session(num_epochs)


def run_loadgen(
    label: str = PAPER_DEFAULT_LABEL,
    algorithms: Sequence[str] = ("grez-grec",),
    epochs: int = 300,
    warmup: int = 20,
    churn: Optional[ChurnSpec] = None,
    policy: str = "warm_start",
    backend: str = "delta",
    measurement_backend: str = "incremental",
    correlation: float = 0.0,
    seed: SeedLike = 0,
    arena: bool = True,
    alloc_profile: bool = False,
    alloc_epochs: int = 40,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
) -> LoadgenResult:
    """Measure sustained epoch throughput of one engine configuration.

    Runs ``warmup`` epochs unmeasured, then ``epochs`` measured epochs with a
    per-epoch timestamp.  When ``alloc_profile`` is set, a second session
    (same seeds, so the identical record stream) runs ``alloc_epochs``
    steady-state epochs under tracemalloc to report per-phase allocated
    bytes per epoch without perturbing the timing pass.
    """
    if epochs < 1:
        raise ValueError("epochs must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    churn = churn or ChurnSpec()
    build = lambda total: _build_session(  # noqa: E731 - one-config factory
        label, algorithms, churn, policy, backend, measurement_backend,
        correlation, seed, arena, total, solver_backend, delay_backend,
    )

    # Timing pass: no tracemalloc anywhere near it.
    session = build(warmup + epochs)
    if warmup:
        session.run_batch(warmup)
    for key in session.phase_seconds:
        session.phase_seconds[key] = 0.0
    epoch_walls = np.empty(epochs, dtype=np.float64)
    t_start = time.perf_counter()
    prev = t_start
    for i in range(epochs):
        session.run_epoch()
        now = time.perf_counter()
        epoch_walls[i] = now - prev
        prev = now
    wall = time.perf_counter() - t_start

    phase_alloc: Optional[Dict[str, float]] = None
    if alloc_profile:
        alloc_epochs = min(alloc_epochs, epochs)
        alloc_session = build(warmup + alloc_epochs)
        started_here = not tracemalloc.is_tracing()
        if started_here:
            tracemalloc.start()
        try:
            alloc_session.alloc_profile = True
            if warmup:
                alloc_session.run_batch(warmup)
            for key in alloc_session.phase_alloc_bytes:
                alloc_session.phase_alloc_bytes[key] = 0
            alloc_session.run_batch(alloc_epochs)
            phase_alloc = {
                key: value / alloc_epochs
                for key, value in alloc_session.phase_alloc_bytes.items()
            }
        finally:
            if started_here:
                tracemalloc.stop()

    events_per_epoch = churn.num_joins + churn.num_leaves + churn.num_moves
    epochs_per_sec = epochs / wall if wall > 0 else float("inf")
    return LoadgenResult(
        label=label,
        policy=policy,
        backend=backend,
        measurement_backend=measurement_backend,
        arena=arena,
        epochs=epochs,
        warmup=warmup,
        events_per_epoch=events_per_epoch,
        wall_seconds=wall,
        epochs_per_sec=epochs_per_sec,
        events_per_sec=events_per_epoch * epochs_per_sec,
        p50_epoch_ms=float(np.percentile(epoch_walls, 50) * 1e3),
        p99_epoch_ms=float(np.percentile(epoch_walls, 99) * 1e3),
        phase_seconds=dict(session.phase_seconds),
        phase_alloc_bytes_per_epoch=phase_alloc,
        arena_stats=session.state.arena.stats() if session.state.arena else None,
    )


def format_loadgen(results: Sequence[LoadgenResult]) -> str:
    """Render one table row per measured configuration."""
    headers = [
        "arena",
        "epochs/s",
        "events/s",
        "p50 ms",
        "p99 ms",
        "alloc B/epoch",
    ]
    rows: List[list] = []
    for result in results:
        alloc = result.alloc_bytes_per_epoch
        rows.append(
            [
                "on" if result.arena else "off",
                result.epochs_per_sec,
                result.events_per_sec,
                result.p50_epoch_ms,
                result.p99_epoch_ms,
                "-" if alloc is None else f"{alloc:.0f}",
            ]
        )
    first = results[0]
    return format_table(
        headers,
        rows,
        title=(
            f"Epoch throughput: {first.label}, {first.policy} policy, "
            f"{first.backend} backend, {first.epochs} epochs after {first.warmup} warmup"
        ),
        float_format=".1f",
    )
