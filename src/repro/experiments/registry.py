"""Registry of experiment drivers, keyed by the DESIGN.md experiment ids.

Each entry maps an experiment id (``table1``, ``figure4``, ...) to a small
descriptor holding the run function, a formatter and a human-readable
description; the CLI and the benchmark harness both dispatch through this
table so the set of reproducible artefacts lives in exactly one place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Union

from repro.experiments import (
    ablation,
    baselines_compare,
    controller,
    delay_bound,
    dynamics,
    federation,
    figure4,
    figure5,
    figure6,
    runtime,
    scenarios,
    table1,
    table3,
    table4,
)
from repro.experiments.config import ExperimentConfig

__all__ = [
    "ExperimentSpec",
    "EXPERIMENTS",
    "get_experiment",
    "experiment_ids",
    "run_experiment",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """A runnable, formattable experiment.

    ``run`` accepts keyword arguments (at least ``num_runs`` and ``seed``;
    also ``workers`` when ``supports_workers``) and returns a result object;
    ``format`` turns that result into printable text.
    """

    experiment_id: str
    paper_artifact: str
    description: str
    run: Callable[..., object]
    format: Callable[[object], str]
    supports_workers: bool = True
    #: Driver accepts ``shard_workers`` (thread-parallel shard stepping
    #: inside each federated epoch); only the federation driver does.
    supports_shard_workers: bool = False


def _spec(
    experiment_id,
    paper_artifact,
    description,
    run,
    fmt,
    supports_workers=True,
    supports_shard_workers=False,
):
    return ExperimentSpec(
        experiment_id=experiment_id,
        paper_artifact=paper_artifact,
        description=description,
        run=run,
        format=fmt,
        supports_workers=supports_workers,
        supports_shard_workers=supports_shard_workers,
    )


EXPERIMENTS: Dict[str, ExperimentSpec] = {
    "table1": _spec(
        "table1",
        "Table 1",
        "pQoS and resource utilisation across the four DVE configurations",
        table1.run_table1,
        table1.format_table1,
    ),
    "figure4": _spec(
        "figure4",
        "Figure 4",
        "CDF of client-to-target-server delays on 30s-160z-2000c-1000cp",
        figure4.run_figure4,
        figure4.format_figure4,
    ),
    "figure5": _spec(
        "figure5",
        "Figure 5",
        "pQoS and utilisation vs physical-virtual correlation (D = 200 ms)",
        figure5.run_figure5,
        figure5.format_figure5,
    ),
    "figure6": _spec(
        "figure6",
        "Figure 6",
        "pQoS and utilisation vs clustered client distributions (types 0-3)",
        figure6.run_figure6,
        figure6.format_figure6,
    ),
    "table3": _spec(
        "table3",
        "Table 3",
        "pQoS before / after / re-executed around join-leave-move churn",
        table3.run_table3,
        table3.format_table3,
    ),
    "table4": _spec(
        "table4",
        "Table 4",
        "pQoS and utilisation with delay-estimation error (King, IDMaps)",
        table4.run_table4,
        table4.format_table4,
    ),
    "ablation": _spec(
        "ablation",
        "(extension)",
        "Design-choice ablation of the greedy heuristics",
        ablation.run_ablation,
        ablation.format_ablation,
    ),
    "baselines": _spec(
        "baselines",
        "(extension)",
        "Comparison against related-work baselines across configurations",
        baselines_compare.run_baseline_comparison,
        baselines_compare.format_baseline_comparison,
    ),
    "runtime": _spec(
        "runtime",
        "(runtime discussion in Section 4.2)",
        "Solver execution times across configuration sizes",
        runtime.run_runtime,
        runtime.format_runtime,
        # Wall-clock measurements on a contended pool would be meaningless,
        # so the runtime experiment always executes serially.
        supports_workers=False,
    ),
    "dynamics": _spec(
        "dynamics",
        "(extension)",
        "Longitudinal churn: per-epoch pQoS under a repair-policy schedule",
        dynamics.run_dynamics,
        dynamics.format_dynamics,
    ),
    "controller": _spec(
        "controller",
        "(extension)",
        "Rebalance-controller trigger policies under elastic churn with migration costs",
        controller.run_controller,
        controller.format_controller,
    ),
    "federation": _spec(
        "federation",
        "(extension)",
        "Cross-shard capacity arbiters on a federated multi-shard world",
        federation.run_federation,
        federation.format_federation,
        supports_shard_workers=True,
    ),
    "scenarios": _spec(
        "scenarios",
        "(extension)",
        "Incident scenario library: recovery metrics under graceful degradation",
        scenarios.run_scenarios,
        scenarios.format_scenarios,
    ),
    "delay-bound": _spec(
        "delay-bound",
        "(extension)",
        "pQoS and utilisation as the interactivity bound D is swept (100-500 ms)",
        delay_bound.run_delay_bound,
        delay_bound.format_delay_bound,
    ),
}


def get_experiment(experiment_id: str) -> ExperimentSpec:
    """Look up an experiment spec by id (case-insensitive)."""
    key = experiment_id.lower()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(sorted(EXPERIMENTS))}"
        )
    return EXPERIMENTS[key]


def experiment_ids() -> list[str]:
    """All experiment ids, sorted."""
    return sorted(EXPERIMENTS)


def run_experiment(
    experiment: Union[str, ExperimentSpec],
    config: ExperimentConfig,
    **extra,
) -> object:
    """Run an experiment under the given execution settings.

    ``workers`` is forwarded only to drivers that support parallel execution
    (all except ``runtime``); any ``extra`` keyword arguments are passed to
    the driver verbatim.
    """
    spec = experiment if isinstance(experiment, ExperimentSpec) else get_experiment(experiment)
    kwargs = config.run_kwargs(supports_workers=spec.supports_workers)
    kwargs.update(extra)
    return spec.run(**kwargs)
