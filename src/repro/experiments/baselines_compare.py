"""Experiment E8 — comparison against related-work baselines and the
centralised deployment (not in the paper, motivated by its Sections 1-2).

Two comparisons:

1. **Solver baselines** — the paper's GreZ-GreC and GreZ-VirC against the
   delay-oblivious load balancer (locally distributed cluster partitioning)
   and the nearest-server selection (mirrored-architecture style), on every
   Table 1 configuration.
2. **Architecture baseline** — GreZ-GreC on the geographically distributed
   server architecture versus GreZ-GreC on the *centralised* twin of the same
   scenario (all servers moved to the best single site), quantifying how much
   interactivity geographic distribution itself buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import repro.baselines  # noqa: F401 - registers the baseline solvers
from repro.baselines.central import centralize_servers
from repro.core.problem import CAPInstance
from repro.core.registry import solve as registry_solve
from repro.experiments.config import PAPER_TABLE1_LABELS, apply_delay_backend, config_from_label
from repro.experiments.runner import ReplicatedResult, run_replications
from repro.io.tables import format_table
from repro.metrics.summary import AggregateStat, aggregate
from repro.utils.pool import ordered_map
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.world.scenario import build_scenario

__all__ = [
    "BaselineComparisonResult",
    "CentralizationResult",
    "run_baseline_comparison",
    "run_centralization_comparison",
    "format_baseline_comparison",
]

DEFAULT_SOLVERS = ("grez-grec", "grez-virc", "nearest-server", "load-balance", "ranz-virc")


@dataclass(frozen=True)
class BaselineComparisonResult:
    """Per-configuration comparison of the paper's algorithms vs baselines."""

    labels: List[str]
    solvers: List[str]
    results: Dict[str, ReplicatedResult]

    def rows(self) -> List[list]:
        """One row per configuration; one pQoS column per solver."""
        rows = []
        for label in self.labels:
            result = self.results[label]
            rows.append([label] + [result.pqos(s) for s in self.solvers])
        return rows


@dataclass(frozen=True)
class CentralizationResult:
    """GDSA vs centralised deployment, same algorithm, same workload."""

    label: str
    algorithm: str
    distributed_pqos: AggregateStat
    centralized_pqos: AggregateStat

    def rows(self) -> List[list]:
        """Two rows: distributed and centralised."""
        return [
            ["distributed (GDSA)", self.distributed_pqos.mean, self.distributed_pqos.std],
            ["centralised (one site)", self.centralized_pqos.mean, self.centralized_pqos.std],
        ]


def run_baseline_comparison(
    labels: Sequence[str] = PAPER_TABLE1_LABELS,
    solvers: Optional[Sequence[str]] = None,
    num_runs: int = 3,
    seed: SeedLike = 0,
    correlation: float = 0.5,
    share_topology: bool = True,
    workers: Optional[int] = None,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
) -> BaselineComparisonResult:
    """Compare the paper's algorithms against the related-work baselines."""
    solvers = list(solvers or DEFAULT_SOLVERS)
    results: Dict[str, ReplicatedResult] = {}
    for label in labels:
        config = apply_delay_backend(
            config_from_label(label, correlation=correlation), delay_backend
        )
        results[label] = run_replications(
            config,
            solvers,
            num_runs=num_runs,
            seed=seed,
            share_topology=share_topology,
            workers=workers,
            solver_backend=solver_backend,
        )
    return BaselineComparisonResult(labels=list(labels), solvers=solvers, results=results)


def _execute_centralization_run(task) -> tuple[float, float]:
    """One distributed-vs-centralised run (worker-side; must be picklable)."""
    import repro.baselines  # noqa: F401 — repopulate the registry under spawn

    config, algorithm, solver_backend, rng = task
    scenario_rng, solve_rng = spawn_generators(rng, 2)
    scenario = build_scenario(config, seed=scenario_rng)
    central_scenario = centralize_servers(scenario)

    instance = CAPInstance.from_scenario(scenario)
    central_instance = CAPInstance.from_scenario(central_scenario)
    return (
        registry_solve(instance, algorithm, seed=solve_rng, backend=solver_backend).pqos(
            instance
        ),
        registry_solve(
            central_instance, algorithm, seed=solve_rng, backend=solver_backend
        ).pqos(central_instance),
    )


def run_centralization_comparison(
    label: str = "20s-80z-1000c-500cp",
    algorithm: str = "grez-grec",
    num_runs: int = 3,
    seed: SeedLike = 0,
    correlation: float = 0.5,
    workers: Optional[int] = None,
    solver_backend: Optional[str] = None,
    delay_backend: Optional[str] = None,
) -> CentralizationResult:
    """Compare the GDSA against a centralised deployment of the same servers."""
    config = apply_delay_backend(config_from_label(label, correlation=correlation), delay_backend)
    rng = as_generator(seed)
    run_rngs = spawn_generators(rng, num_runs)

    tasks = [(config, algorithm, solver_backend, run_rngs[i]) for i in range(num_runs)]
    distributed: List[float] = []
    centralized: List[float] = []
    for dist_pqos, central_pqos in ordered_map(_execute_centralization_run, tasks, workers=workers):
        distributed.append(dist_pqos)
        centralized.append(central_pqos)

    return CentralizationResult(
        label=label,
        algorithm=algorithm,
        distributed_pqos=aggregate(distributed),
        centralized_pqos=aggregate(centralized),
    )


def format_baseline_comparison(
    comparison: BaselineComparisonResult,
    centralization: Optional[CentralizationResult] = None,
) -> str:
    """Render the baseline-comparison tables."""
    parts = [
        format_table(
            ["DVE conf."] + list(comparison.solvers),
            comparison.rows(),
            title="Baseline comparison (E8): pQoS per configuration",
        )
    ]
    if centralization is not None:
        parts.append("")
        parts.append(
            format_table(
                ["architecture", "pQoS (mean)", "pQoS (std)"],
                centralization.rows(),
                title=(
                    f"GDSA vs centralised deployment ({centralization.algorithm}, "
                    f"{centralization.label})"
                ),
            )
        )
    return "\n".join(parts)
