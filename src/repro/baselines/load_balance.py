"""Load-balancing-only baseline (locally distributed cluster partitioning).

The related work the paper positions itself against ("research on how to
assign clients to servers in DVEs is usually formulated as a load balancing
problem in a locally distributed server architecture", citing Lui & Chan and
Ta & Zhou 2003) balances zone load across servers but ignores network delays
entirely — which is fine when every server sits in the same machine room and
fatal when servers are geographically distributed.

This baseline implements that strategy on the GDSA: zones are assigned to
servers with a longest-processing-time (LPT) greedy that only looks at
bandwidth demands, and every client contacts the server hosting its zone.  It
is delay-oblivious like RanZ but *perfectly load balanced*, which isolates the
effect of delay awareness from the effect of load balancing in the
baseline-comparison experiment (E8 in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import Assignment, ZoneAssignment
from repro.core.problem import CAPInstance
from repro.core.virc import assign_contacts_virtual
from repro.utils.rng import SeedLike
from repro.utils.timing import Timer

__all__ = ["assign_zones_load_balanced", "solve_load_balance"]


def assign_zones_load_balanced(instance: CAPInstance) -> ZoneAssignment:
    """Assign zones to servers by LPT greedy load balancing (delay-oblivious).

    Zones are sorted by decreasing bandwidth demand; each is placed on the
    server with the largest *relative* residual capacity, which keeps the
    per-server utilisations as even as possible for heterogeneous capacities.
    """
    with Timer() as timer:
        zone_demands = instance.zone_demands()
        capacities = instance.server_capacities
        loads = np.zeros(instance.num_servers, dtype=np.float64)
        zone_to_server = np.full(instance.num_zones, -1, dtype=np.int64)
        capacity_exceeded = False

        for zone in np.argsort(-zone_demands, kind="stable"):
            demand = zone_demands[zone]
            projected = (loads + demand) / capacities
            server = int(np.argmin(projected))
            if loads[server] + demand > capacities[server] * (1 + 1e-9):
                capacity_exceeded = True
            zone_to_server[zone] = server
            loads[server] += demand

    return ZoneAssignment(
        zone_to_server=zone_to_server,
        algorithm="load-balance",
        capacity_exceeded=capacity_exceeded,
        runtime_seconds=timer.elapsed,
    )


def solve_load_balance(instance: CAPInstance, seed: SeedLike = None) -> Assignment:  # noqa: ARG001
    """Full CAP baseline: load-balanced zones, contact = target."""
    zones = assign_zones_load_balanced(instance)
    assignment = assign_contacts_virtual(instance, zones)
    return assignment.with_algorithm("load-balance")
