"""Related-work baselines for comparison against the paper's two-phase algorithms.

* ``load-balance`` — delay-oblivious zone load balancing (locally distributed
  cluster partitioning, the paper's refs [17, 25]).
* ``nearest-server`` — per-client / per-zone nearest-server selection (mirrored
  architecture style, the paper's ref [16], adapted to the zoned GDSA).
* :func:`~repro.baselines.central.centralize_servers` — the centralised
  single-site deployment the introduction argues against, as a scenario
  transform.

Importing this package registers the two solver baselines in
:mod:`repro.core.registry` so the experiment harness can refer to them by
name.
"""

from repro.baselines.central import best_central_node, centralize_servers
from repro.baselines.load_balance import assign_zones_load_balanced, solve_load_balance
from repro.baselines.nearest_server import solve_nearest_server
from repro.core.registry import register_solver, solver_names

__all__ = [
    "assign_zones_load_balanced",
    "solve_load_balance",
    "solve_nearest_server",
    "best_central_node",
    "centralize_servers",
]


def _register_baselines() -> None:
    if "load-balance" not in solver_names():
        register_solver("load-balance", solve_load_balance)
    if "nearest-server" not in solver_names():
        register_solver("nearest-server", solve_nearest_server)


_register_baselines()
