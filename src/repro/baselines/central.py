"""Centralised-cluster baseline: all servers in one machine room.

The paper's introduction motivates the geographically distributed server
architecture by contrast with "putting all servers at a central geographic
location [which] may result in high communication delays for clients which are
far from the servers" (the EverQuest / Ultima Online deployment model).

:func:`centralize_servers` turns any scenario into its centralised twin: the
same number of servers with the same capacities, but all placed on a single
topology node (by default the node that minimises the mean RTT to the current
client population — the most favourable possible data-centre site).  Running
the same assignment algorithms on both scenarios quantifies how much of the
achievable interactivity comes from geographic distribution itself versus from
clever assignment (experiment E8).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import SeedLike
from repro.world.scenario import DVEScenario
from repro.world.servers import ServerSet

__all__ = ["best_central_node", "centralize_servers"]


def best_central_node(scenario: DVEScenario, criterion: str = "mean") -> int:
    """Topology node minimising the mean (or max) RTT to the scenario's clients."""
    if criterion not in ("mean", "max"):
        raise ValueError("criterion must be 'mean' or 'max'")
    rtt = scenario.delay_model.rtt  # (nodes, nodes)
    client_nodes = scenario.population.nodes
    if client_nodes.size == 0:
        return 0
    to_clients = rtt[:, client_nodes]
    score = to_clients.mean(axis=1) if criterion == "mean" else to_clients.max(axis=1)
    return int(np.argmin(score))


def centralize_servers(
    scenario: DVEScenario,
    node: Optional[int] = None,
    seed: SeedLike = None,  # noqa: ARG001 - kept for signature symmetry with builders
) -> DVEScenario:
    """Return a scenario identical to ``scenario`` but with co-located servers.

    Every server is moved to ``node`` (default: the best central node for the
    current client population); capacities are unchanged.  The inter-server
    mesh consequently has zero delay, and client-server delays become uniform
    across servers — which is exactly what makes the centralised architecture
    uninteresting for the refined phase.
    """
    if node is None:
        node = best_central_node(scenario)
    if not 0 <= node < scenario.topology.num_nodes:
        raise ValueError(f"node {node} outside the topology")

    central_nodes = np.full(scenario.num_servers, node, dtype=np.int64)
    servers = ServerSet(nodes=central_nodes, capacities=scenario.servers.capacities.copy())
    client_server_delays = scenario.delay_model.client_server_delays(
        scenario.population.nodes, servers.nodes
    )
    server_server_delays = scenario.delay_model.server_server_delays(servers.nodes)

    return DVEScenario(
        config=scenario.config,
        topology=scenario.topology,
        delay_model=scenario.delay_model,
        servers=servers,
        world=scenario.world,
        population=scenario.population,
        client_server_delays=client_server_delays,
        server_server_delays=server_server_delays,
        client_demands=scenario.client_demands,
    )
