"""Nearest-server baseline (mirrored-architecture-style server selection).

Lee, Ko & Calo's adaptive server selection (cited as [16] by the paper) lets
each client pick the lowest-delay server in a *mirrored* architecture where
every server replicates the whole world.  The zone-based GDSA cannot replicate
zones (consistency would suffer), so the closest meaningful adaptation — and a
natural single-phase baseline — is:

* every client contacts its lowest-delay server that still has capacity, and
* each zone's target server is the server that is "nearest" to the zone's
  clients in aggregate (the one that minimises the number of the zone's
  clients missing the delay bound, ties broken by mean delay), subject to
  capacity.

It is delay-aware in both decisions but makes them independently per client /
zone, without the paper's global regret ordering or the two-phase interaction,
so it quantifies how much the structured two-phase optimisation adds.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import Assignment, ZoneAssignment, zone_server_loads
from repro.core.costs import initial_cost_matrix
from repro.core.problem import CAPInstance
from repro.utils.rng import SeedLike
from repro.utils.timing import Timer

__all__ = ["solve_nearest_server"]


def _assign_zones_nearest(instance: CAPInstance) -> ZoneAssignment:
    """Zone → server map minimising per-zone QoS misses, greedily by zone size."""
    cost = initial_cost_matrix(instance)  # (m, n) clients-without-QoS counts
    # Mean client delay per (server, zone) used only to break ties.
    populations = np.maximum(instance.zone_populations(), 1)
    if instance.has_dense_delays:
        sums = np.zeros((instance.num_zones, instance.num_servers))
        if instance.num_clients:
            np.add.at(sums, instance.client_zones, instance.client_server_delays)
    else:
        sums = instance.client_server_delays.zone_delay_sums(
            instance.client_zones, instance.num_zones
        )
    mean_delay = (sums / populations[:, None]).T

    zone_demands = instance.zone_demands()
    capacities = instance.server_capacities
    loads = np.zeros(instance.num_servers)
    zone_to_server = np.full(instance.num_zones, -1, dtype=np.int64)
    capacity_exceeded = False

    for zone in np.argsort(-zone_demands, kind="stable"):
        demand = zone_demands[zone]
        # Rank servers by (miss count, mean delay).
        order = np.lexsort((mean_delay[:, zone], cost[:, zone]))
        placed = False
        for server in order:
            if loads[server] + demand <= capacities[server] + 1e-9:
                zone_to_server[zone] = int(server)
                loads[server] += demand
                placed = True
                break
        if not placed:
            server = int(np.argmax(capacities - loads))
            zone_to_server[zone] = server
            loads[server] += demand
            capacity_exceeded = True

    return ZoneAssignment(
        zone_to_server=zone_to_server,
        algorithm="nearest-server",
        capacity_exceeded=capacity_exceeded,
    )


def solve_nearest_server(
    instance: CAPInstance, seed: SeedLike = None  # noqa: ARG001
) -> Assignment:
    """Full CAP baseline: nearest target server per zone, nearest contact per client."""
    with Timer() as timer:
        zones = _assign_zones_nearest(instance)
        targets = zones.targets_of_clients(instance)
        clients = np.arange(instance.num_clients)

        # Each client greedily picks the contact server with the lowest total
        # delay to its target, first-come-first-served in client order, subject
        # to residual capacity for the forwarding overhead.
        loads = zone_server_loads(instance, zones.zone_to_server)
        capacities = instance.server_capacities
        contacts = targets.copy()
        # total_delay[c, s] = d(c, s) + d(s, target_c).  The per-client greedy
        # scan below is inherently dense; compact instances materialise here
        # (this baseline only runs on paper-scale worlds).
        total_delay = (
            instance.dense_client_server_delays()
            + instance.server_server_delays[:, targets].T
        )
        direct = instance.delay_pairs(clients, targets)
        for client in clients:
            if direct[client] <= instance.delay_bound:
                continue
            order = np.argsort(total_delay[client], kind="stable")
            for server in order:
                server = int(server)
                if server == targets[client]:
                    contacts[client] = server
                    break
                extra = 2.0 * instance.client_demands[client]
                if loads[server] + extra <= capacities[server] + 1e-9:
                    contacts[client] = server
                    loads[server] += extra
                    break

    return Assignment(
        zone_to_server=zones.zone_to_server,
        contact_of_client=contacts,
        algorithm="nearest-server",
        capacity_exceeded=zones.capacity_exceeded,
        runtime_seconds=timer.elapsed,
    )
