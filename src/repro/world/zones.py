"""Virtual world model: the zone-partitioned shared world.

The paper's DVE follows the "zone-based approach": the virtual world is
spatially partitioned into ``n`` distinct zones, each managed by exactly one
server; a client only interacts with clients in the same zone and may move to
other zones over time.

:class:`VirtualWorld` models the zones as a rectangular grid (the standard
layout for zoned MMOG worlds) which provides a zone-adjacency structure used
by the dynamics substrate when simulating avatar movement between zones.  The
assignment algorithms themselves only care about the number of zones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

__all__ = ["VirtualWorld"]


def _grid_shape(num_zones: int) -> Tuple[int, int]:
    """Choose a near-square (rows, cols) factorisation with rows*cols >= num_zones."""
    rows = int(np.floor(np.sqrt(num_zones)))
    while rows > 1 and num_zones % rows != 0:
        rows -= 1
    cols = num_zones // rows
    if rows * cols < num_zones:
        cols += 1
    return rows, cols


@dataclass(frozen=True)
class VirtualWorld:
    """A zone-partitioned virtual world laid out as a grid.

    Attributes
    ----------
    num_zones:
        Number of distinct zones.
    rows, cols:
        Grid layout; ``rows * cols >= num_zones`` and zones are numbered
        row-major.  Cells beyond ``num_zones`` (for non-rectangular counts) do
        not exist.
    """

    num_zones: int
    rows: int = field(default=0)
    cols: int = field(default=0)

    def __post_init__(self) -> None:
        if self.num_zones < 1:
            raise ValueError(f"num_zones must be >= 1, got {self.num_zones}")
        if self.rows <= 0 or self.cols <= 0:
            rows, cols = _grid_shape(self.num_zones)
            object.__setattr__(self, "rows", rows)
            object.__setattr__(self, "cols", cols)
        if self.rows * self.cols < self.num_zones:
            raise ValueError(
                f"grid {self.rows}x{self.cols} cannot hold {self.num_zones} zones"
            )

    # ------------------------------------------------------------------ #
    def zone_coordinates(self, zone: int) -> Tuple[int, int]:
        """(row, col) grid coordinates of a zone."""
        self._check_zone(zone)
        return divmod(zone, self.cols)

    def zone_at(self, row: int, col: int) -> int:
        """Zone id at grid position (row, col); raises if outside the world."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise ValueError(f"grid position ({row}, {col}) outside {self.rows}x{self.cols}")
        zone = row * self.cols + col
        self._check_zone(zone)
        return zone

    def neighbors(self, zone: int) -> List[int]:
        """Zones adjacent (4-neighbourhood) to ``zone`` in the grid layout.

        Used by the churn generator to model avatars crossing zone borders.
        Returns an empty list only for a single-zone world.
        """
        row, col = self.zone_coordinates(zone)
        result: List[int] = []
        for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
            r, c = row + dr, col + dc
            if 0 <= r < self.rows and 0 <= c < self.cols:
                z = r * self.cols + c
                if z < self.num_zones:
                    result.append(z)
        return result

    def all_zones(self) -> np.ndarray:
        """Array ``[0, 1, ..., num_zones - 1]``."""
        return np.arange(self.num_zones)

    # ------------------------------------------------------------------ #
    def zone_populations(self, client_zones: np.ndarray) -> np.ndarray:
        """Number of clients currently in each zone.

        Parameters
        ----------
        client_zones:
            ``(num_clients,)`` zone index per client.
        """
        client_zones = np.asarray(client_zones, dtype=np.int64)
        if client_zones.size and (
            client_zones.min() < 0 or client_zones.max() >= self.num_zones
        ):
            raise ValueError("client_zones contains zone ids outside the virtual world")
        return np.bincount(client_zones, minlength=self.num_zones).astype(np.int64)

    def _check_zone(self, zone: int) -> None:
        if not (0 <= zone < self.num_zones):
            raise ValueError(f"zone {zone} outside [0, {self.num_zones - 1}]")
