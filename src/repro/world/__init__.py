"""DVE world model: servers, zones, clients, bandwidth and scenario assembly.

This package turns the paper's Section 4.1 simulation parameters into concrete
immutable objects:

* :class:`~repro.world.servers.ServerSet` — geographically distributed servers
  with bandwidth capacities.
* :class:`~repro.world.zones.VirtualWorld` — the zone-partitioned world.
* :class:`~repro.world.clients.ClientPopulation` — clients' physical nodes and
  avatar zones.
* :class:`~repro.world.bandwidth.BandwidthModel` — the quadratic client-server
  bandwidth model.
* :mod:`repro.world.distributions` / :mod:`repro.world.correlation` — uniform /
  clustered client distributions and the physical↔virtual correlation delta.
* :class:`~repro.world.scenario.DVEScenario` — everything assembled, ready for
  the assignment algorithms in :mod:`repro.core`.
"""

from repro.world.bandwidth import (
    DEFAULT_FRAME_RATE,
    DEFAULT_MESSAGE_BYTES,
    BandwidthModel,
)
from repro.world.clients import ClientPopulation
from repro.world.correlation import RegionZoneMap, correlated_zone_choice
from repro.world.distributions import (
    DISTRIBUTION_TYPES,
    DistributionSpec,
    distribution_type,
    sample_client_nodes,
    sample_client_zones,
    zone_weights,
)
from repro.world.federation import (
    FederatedWorld,
    build_federation,
    equal_slices,
    split_client_counts,
    weighted_slices,
)
from repro.world.scenario import DVEConfig, DVEScenario, build_scenario
from repro.world.servers import MBPS, ServerSet, allocate_capacities
from repro.world.zones import VirtualWorld

__all__ = [
    "BandwidthModel",
    "DEFAULT_FRAME_RATE",
    "DEFAULT_MESSAGE_BYTES",
    "ClientPopulation",
    "RegionZoneMap",
    "correlated_zone_choice",
    "DistributionSpec",
    "DISTRIBUTION_TYPES",
    "distribution_type",
    "zone_weights",
    "sample_client_nodes",
    "sample_client_zones",
    "DVEConfig",
    "DVEScenario",
    "build_scenario",
    "ServerSet",
    "allocate_capacities",
    "MBPS",
    "VirtualWorld",
    "FederatedWorld",
    "build_federation",
    "equal_slices",
    "weighted_slices",
    "split_client_counts",
]
