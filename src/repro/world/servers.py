"""Server set model: placement nodes and bandwidth capacities.

The paper measures server resource consumption by network bandwidth usage
("the network bandwidth often represents the major operating cost in current
server-based MMOGs") and parameterises experiments with the *total* system
capacity plus a minimum per-server capacity ("the minimum bandwidth capacity
of server is 10 Mbps, and the total capacity of the system is 500 Mbps").

:class:`ServerSet` stores, per server, the topology node it sits on and its
bandwidth capacity in bits per second.  Capacities can be allocated evenly or
heterogeneously (every server gets the minimum, the remainder is split with
random proportions), mirroring a rented, heterogeneous server fleet.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_non_negative, check_positive

__all__ = ["ServerSet", "allocate_capacities", "MBPS"]

#: Bits per second in one Mbps.
MBPS = 1_000_000.0

_CAPACITY_SCHEMES = ("uniform", "random", "proportional")


@dataclass(frozen=True)
class ServerSet:
    """The geographically distributed server fleet.

    Attributes
    ----------
    nodes:
        ``(num_servers,)`` topology node index of each server.
    capacities:
        ``(num_servers,)`` bandwidth capacity of each server in bits/s.
    """

    nodes: np.ndarray
    capacities: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", np.asarray(self.nodes, dtype=np.int64))
        object.__setattr__(self, "capacities", np.asarray(self.capacities, dtype=np.float64))
        if self.nodes.ndim != 1:
            raise ValueError("nodes must be a 1-D array")
        if self.nodes.size and self.nodes.min() < 0:
            # Negative indices would silently wrap in every delay-matrix
            # gather; the upper bound is checked against the topology by the
            # scenario layer (the server set itself does not know it).
            raise ValueError("server nodes must be non-negative topology indices")
        if self.capacities.shape != self.nodes.shape:
            raise ValueError("capacities must have one entry per server")
        if self.num_servers == 0:
            raise ValueError("a ServerSet needs at least one server")
        if (self.capacities <= 0).any():
            raise ValueError("all server capacities must be positive")

    @property
    def num_servers(self) -> int:
        """Number of servers."""
        return int(self.nodes.shape[0])

    @property
    def total_capacity(self) -> float:
        """Total system capacity in bits/s."""
        return float(self.capacities.sum())

    @property
    def total_capacity_mbps(self) -> float:
        """Total system capacity in Mbps."""
        return self.total_capacity / MBPS

    def capacities_mbps(self) -> np.ndarray:
        """Per-server capacities in Mbps."""
        return self.capacities / MBPS

    def with_capacities(self, capacities: np.ndarray) -> "ServerSet":
        """Return a copy of this server set with different capacities."""
        return ServerSet(nodes=self.nodes.copy(), capacities=np.asarray(capacities, dtype=float))

    # ------------------------------------------------------------------ #
    # Infrastructure churn transformations
    # ------------------------------------------------------------------ #
    def subset(self, server_indices: np.ndarray) -> "ServerSet":
        """Server set restricted to the given server indices (in that order)."""
        idx = np.asarray(server_indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_servers):
            raise ValueError("server indices are out of range")
        return ServerSet(nodes=self.nodes[idx], capacities=self.capacities[idx])

    def with_joined(self, nodes: np.ndarray, capacities: np.ndarray) -> "ServerSet":
        """Return a new server set with extra servers appended."""
        nodes = np.asarray(nodes, dtype=np.int64)
        capacities = np.asarray(capacities, dtype=np.float64)
        if nodes.shape != capacities.shape:
            raise ValueError("joined nodes and capacities must be parallel arrays")
        return ServerSet(
            nodes=np.concatenate([self.nodes, nodes]),
            capacities=np.concatenate([self.capacities, capacities]),
        )


def allocate_capacities(
    num_servers: int,
    total_capacity_mbps: float,
    min_capacity_mbps: float = 10.0,
    scheme: str = "random",
    seed: SeedLike = None,
) -> np.ndarray:
    """Allocate per-server capacities (bits/s) summing to the total capacity.

    Parameters
    ----------
    num_servers:
        Number of servers.
    total_capacity_mbps:
        Total system bandwidth capacity in Mbps (paper default 500).
    min_capacity_mbps:
        Minimum per-server capacity in Mbps (paper default 10).
    scheme:
        ``"uniform"`` — even split of the total.
        ``"random"`` — each server gets the minimum plus a random (Dirichlet)
        share of the remainder; models heterogeneous rented servers.
        ``"proportional"`` — like random but with mild heterogeneity (Dirichlet
        concentration 5), so capacities stay within a factor of ~2 of the mean.
    seed:
        RNG for the random schemes.

    Returns
    -------
    numpy.ndarray
        ``(num_servers,)`` capacities in bits per second.
    """
    if num_servers < 1:
        raise ValueError("num_servers must be >= 1")
    check_positive(total_capacity_mbps, "total_capacity_mbps")
    check_non_negative(min_capacity_mbps, "min_capacity_mbps")
    if scheme not in _CAPACITY_SCHEMES:
        raise ValueError(f"scheme must be one of {_CAPACITY_SCHEMES}, got {scheme!r}")
    if min_capacity_mbps * num_servers > total_capacity_mbps + 1e-9:
        raise ValueError(
            f"total capacity {total_capacity_mbps} Mbps cannot cover the minimum "
            f"{min_capacity_mbps} Mbps for each of {num_servers} servers"
        )

    if scheme == "uniform":
        caps = np.full(num_servers, total_capacity_mbps / num_servers)
    else:
        rng = as_generator(seed)
        remainder = total_capacity_mbps - min_capacity_mbps * num_servers
        concentration = 1.0 if scheme == "random" else 5.0
        shares = rng.dirichlet(np.full(num_servers, concentration))
        caps = min_capacity_mbps + shares * remainder
    return caps * MBPS
