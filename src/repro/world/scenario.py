"""DVE scenario assembly: configuration → fully materialised simulation state.

A :class:`DVEConfig` captures every knob of the paper's Section 4.1 setup (the
``<m>s-<n>z-<k>c-<P>cp`` notation plus delay bound, correlation, distributions
and bandwidth-model parameters).  :func:`build_scenario` expands a config into
a :class:`DVEScenario`: topology, delay model, placed servers with capacities,
the client population, per-client bandwidth demands, and the two delay
matrices that the assignment algorithms consume.

Scenarios are immutable snapshots; the dynamics substrate produces new
scenarios from old ones via :meth:`DVEScenario.with_population` (full rebuild
of the derived arrays) or :meth:`DVEScenario.apply_churn_delta` (delta update
that reuses the surviving clients' delay rows) when clients join, leave or
move.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.topology.brite import BriteConfig, generate_topology
from repro.topology.delay_backends import (
    DEFAULT_COORDS_DIM,
    DEFAULT_DELAY_BACKEND,
    DEFAULT_SPARSE_TOP_K,
    DELAY_BACKENDS,
    CompactDelayMatrix,
    make_delay_backend,
)
from repro.topology.delays import (
    DEFAULT_MAX_RTT_MS,
    DEFAULT_SERVER_MESH_FACTOR,
    DelayModel,
)
from repro.topology.graph import Topology
from repro.topology.placement import place_servers
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.utils.validation import check_positive, check_probability
from repro.world.bandwidth import (
    DEFAULT_FRAME_RATE,
    DEFAULT_MESSAGE_BYTES,
    BandwidthModel,
)
from repro.world.clients import ClientPopulation
from repro.world.distributions import DistributionSpec, sample_client_nodes, sample_client_zones
from repro.world.servers import MBPS, ServerSet, allocate_capacities
from repro.world.zones import VirtualWorld

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.dynamics.events import ChurnResult
    from repro.dynamics.infrastructure import ServerChurnResult

__all__ = ["DVEConfig", "DVEScenario", "build_scenario"]


@dataclass(frozen=True)
class DVEConfig:
    """Declarative description of a DVE simulation scenario.

    The defaults reproduce the paper's default configuration:
    20 servers, 80 zones, 1000 clients, 500 Mbps total capacity, minimum server
    capacity 10 Mbps, delay bound 250 ms, correlation 0.5, uniform client
    distributions, 25 msg/s × 100 B bandwidth model, 500-node BRITE-like
    hierarchical topology with 500 ms maximum RTT and a 50 %-latency
    inter-server mesh.
    """

    num_servers: int = 20
    num_zones: int = 80
    num_clients: int = 1000
    total_capacity_mbps: float = 500.0
    min_server_capacity_mbps: float = 10.0
    delay_bound_ms: float = 250.0
    correlation: float = 0.5
    physical_distribution: str = "uniform"
    virtual_distribution: str = "uniform"
    hot_zone_factor: float = 10.0
    hot_zone_fraction: float = 0.1
    physical_hotspots: int = 10
    physical_hotspot_fraction: float = 0.7
    frame_rate: float = DEFAULT_FRAME_RATE
    message_bytes: float = DEFAULT_MESSAGE_BYTES
    capacity_scheme: str = "random"
    max_rtt_ms: float = DEFAULT_MAX_RTT_MS
    server_mesh_factor: float = DEFAULT_SERVER_MESH_FACTOR
    topology: BriteConfig = field(default_factory=BriteConfig)
    delay_backend: str = DEFAULT_DELAY_BACKEND
    coords_dim: int = DEFAULT_COORDS_DIM
    sparse_top_k: int = DEFAULT_SPARSE_TOP_K

    def __post_init__(self) -> None:
        if self.num_servers < 1:
            raise ValueError("num_servers must be >= 1")
        if self.num_zones < 1:
            raise ValueError("num_zones must be >= 1")
        if self.num_clients < 0:
            raise ValueError("num_clients must be >= 0")
        check_positive(self.total_capacity_mbps, "total_capacity_mbps")
        check_positive(self.delay_bound_ms, "delay_bound_ms")
        check_probability(self.correlation, "correlation")
        if self.delay_backend not in DELAY_BACKENDS:
            raise ValueError(
                f"unknown delay backend {self.delay_backend!r}; "
                f"expected one of {DELAY_BACKENDS}"
            )
        if self.coords_dim < 1:
            raise ValueError("coords_dim must be >= 1")
        if self.sparse_top_k < 1:
            raise ValueError("sparse_top_k must be >= 1")

    # ------------------------------------------------------------------ #
    @property
    def label(self) -> str:
        """The paper's configuration notation, e.g. ``"20s-80z-1000c-500cp"``."""
        cap = self.total_capacity_mbps
        cap_str = f"{int(cap)}" if float(cap).is_integer() else f"{cap:g}"
        return f"{self.num_servers}s-{self.num_zones}z-{self.num_clients}c-{cap_str}cp"

    @property
    def distribution_spec(self) -> DistributionSpec:
        """The distribution spec implied by this config."""
        return DistributionSpec(
            physical=self.physical_distribution,
            virtual=self.virtual_distribution,
            correlation=self.correlation,
            hot_zone_factor=self.hot_zone_factor,
            hot_zone_fraction=self.hot_zone_fraction,
            physical_hotspots=self.physical_hotspots,
            physical_hotspot_fraction=self.physical_hotspot_fraction,
        )

    @property
    def bandwidth_model(self) -> BandwidthModel:
        """The bandwidth model implied by this config."""
        return BandwidthModel(frame_rate=self.frame_rate, message_bytes=self.message_bytes)

    def with_updates(self, **kwargs) -> "DVEConfig":
        """Return a copy of this config with some fields replaced."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class DVEScenario:
    """A fully materialised DVE instance, ready for assignment algorithms.

    Attributes
    ----------
    config:
        The generating configuration.
    topology / delay_model:
        The network substrate and its delay matrices.
    servers:
        Server nodes and capacities.
    world:
        The zone-partitioned virtual world.
    population:
        Client physical nodes and avatar zones.
    client_server_delays:
        ``(num_clients, num_servers)`` RTT matrix (ms) — a dense ndarray for
        the ``"dense"`` delay backend, a
        :class:`~repro.topology.delay_backends.CompactDelayMatrix` (same
        virtual shape, O(nodes·servers + clients) state) for ``"coords"`` /
        ``"sparse"``.
    server_server_delays:
        ``(num_servers, num_servers)`` inter-server mesh RTT matrix (ms).
    client_demands:
        ``(num_clients,)`` per-client target-server bandwidth demand (bits/s).
    """

    config: DVEConfig
    topology: Topology
    delay_model: DelayModel
    servers: ServerSet
    world: VirtualWorld
    population: ClientPopulation
    client_server_delays: np.ndarray
    server_server_delays: np.ndarray
    client_demands: np.ndarray

    # ------------------------------------------------------------------ #
    @property
    def has_dense_delays(self) -> bool:
        """True when ``client_server_delays`` is a real dense ndarray.

        Scenarios built with the ``"coords"`` / ``"sparse"`` delay backends
        carry a :class:`~repro.topology.delay_backends.CompactDelayMatrix`
        instead — O(nodes·servers + clients) state rather than O(k·m).
        """
        return not isinstance(self.client_server_delays, CompactDelayMatrix)

    @property
    def num_servers(self) -> int:
        """Number of servers."""
        return self.servers.num_servers

    @property
    def num_zones(self) -> int:
        """Number of zones."""
        return self.world.num_zones

    @property
    def num_clients(self) -> int:
        """Number of clients."""
        return self.population.num_clients

    @property
    def delay_bound_ms(self) -> float:
        """DVE interactivity delay bound D in milliseconds."""
        return self.config.delay_bound_ms

    def zone_demands(self) -> np.ndarray:
        """Per-zone bandwidth demand (bits/s), summing per-client demands."""
        demands = np.zeros(self.num_zones, dtype=np.float64)
        np.add.at(demands, self.population.zones, self.client_demands)
        return demands

    def zone_populations(self) -> np.ndarray:
        """Number of clients in each zone."""
        return self.population.zone_populations(self.num_zones)

    def total_demand(self) -> float:
        """Total target-server bandwidth demand of the system (bits/s)."""
        return float(self.client_demands.sum())

    def demand_to_capacity_ratio(self) -> float:
        """Total demand divided by total capacity (a rough load factor)."""
        return self.total_demand() / self.servers.total_capacity

    # ------------------------------------------------------------------ #
    def with_population(self, population: ClientPopulation) -> "DVEScenario":
        """Return a new scenario for a different client population snapshot.

        Client-server delays and per-client demands are recomputed; topology,
        servers and configuration are shared (they are immutable).
        """
        if population.zones.size and population.zones.max() >= self.num_zones:
            raise ValueError("population refers to zones outside this scenario's world")
        if self.has_dense_delays:
            delays = self.delay_model.client_server_delays(population.nodes, self.servers.nodes)
        else:
            # Compact path: the node→server table and candidate sets carry
            # over by reference; only the O(k) index arrays change.
            delays = self.client_server_delays.with_clients(population.nodes, population.zones)
        demands = self.config.bandwidth_model.client_target_demands(
            population.zones, self.num_zones
        )
        return DVEScenario(
            config=self.config,
            topology=self.topology,
            delay_model=self.delay_model,
            servers=self.servers,
            world=self.world,
            population=population,
            client_server_delays=delays,
            server_server_delays=self.server_server_delays,
            client_demands=demands,
        )

    def apply_churn_delta(self, churn: "ChurnResult", arena=None) -> "DVEScenario":
        """Delta version of :meth:`with_population` for a churn batch.

        Instead of recomputing the full client×server delay matrix, the delay
        rows of surviving clients are carried over through the churn's
        ``old_to_new`` index map and only the *joining* clients' rows are
        gathered from the delay model.  Movers keep their rows untouched (a
        zone move changes the virtual location, not the physical node), and
        per-client demands are recomputed from the new zone populations —
        demands depend on how crowded each zone is, so they can change for
        every client, but that is one :func:`numpy.bincount` away.

        The result is bit-identical to
        ``self.with_population(churn.population)``: both paths gather the same
        float64 entries from the same cached all-pairs RTT matrix.

        With an :class:`~repro.utils.arena.EpochArena` the new delay matrix
        and demand vector are acquired from recycled arena buffers instead of
        freshly allocated (the engine double-buffers: the previous epoch's
        matrix stays live until the state has advanced past it, then goes
        back to the pool).  Values are bit-identical either way.
        """
        population = churn.population
        if churn.old_to_new.shape[0] != self.num_clients:
            raise ValueError(
                f"churn was generated against a population of "
                f"{churn.old_to_new.shape[0]} clients, scenario has {self.num_clients}"
            )
        if population.zones.size and population.zones.max() >= self.num_zones:
            raise ValueError("population refers to zones outside this scenario's world")

        if self.has_dense_delays:
            shape = (population.num_clients, self.num_servers)
            if arena is None:
                delays = np.empty(shape, dtype=np.float64)
            else:
                delays = arena.acquire(shape, dtype=np.float64)
            survivors_old = churn.survivors_old
            if survivors_old is None:
                survivors_old = np.flatnonzero(churn.old_to_new >= 0)
            if arena is not None:
                # apply_churn numbers survivors 0..k-1 in original order, so
                # old_to_new restricted to survivors IS arange(k) and the
                # scatter below is really a contiguous row gather — np.take
                # with ``out=`` writes the same float64 values into the same
                # rows without materialising the gathered block first.
                # mode="clip" skips numpy's bounce buffer (mode="raise"
                # stages the gather in a temporary); indices come from
                # flatnonzero over old_to_new, so they are in range and
                # clipping never fires.
                np.take(
                    self.client_server_delays,
                    survivors_old,
                    axis=0,
                    out=delays[: survivors_old.size],
                    mode="clip",
                )
            else:
                delays[churn.old_to_new[survivors_old]] = self.client_server_delays[
                    survivors_old
                ]
            if churn.new_client_indices.size:
                join_nodes = population.nodes[churn.new_client_indices]
                delays[churn.new_client_indices] = self.delay_model.client_server_delays(
                    join_nodes, self.servers.nodes
                )
        else:
            # Compact path: delays are derived from the per-client node
            # indices, so the "delta" is the O(k) index swap itself — churn
            # epochs never densify, whatever the batch size.
            delays = self.client_server_delays.with_clients(population.nodes, population.zones)
        demands_out = None
        if arena is not None:
            demands_out = arena.acquire((population.num_clients,), dtype=np.float64)
        demands = self.config.bandwidth_model.client_target_demands(
            population.zones, self.num_zones, out=demands_out
        )
        return DVEScenario(
            config=self.config,
            topology=self.topology,
            delay_model=self.delay_model,
            servers=self.servers,
            world=self.world,
            population=population,
            client_server_delays=delays,
            server_server_delays=self.server_server_delays,
            client_demands=demands,
        )

    def with_servers(self, servers: ServerSet) -> "DVEScenario":
        """Return a new scenario for a different server fleet snapshot.

        The full client×server delay matrix and the inter-server mesh are
        recomputed from the delay model; population, topology and
        configuration are shared.  This is the executable specification that
        :meth:`apply_server_delta` must match bit-for-bit.
        """
        if servers.nodes.size and servers.nodes.max() >= self.topology.num_nodes:
            raise ValueError("servers refer to nodes outside this scenario's topology")
        if self.has_dense_delays:
            delays = self.delay_model.client_server_delays(self.population.nodes, servers.nodes)
            mesh = self.delay_model.server_server_delays(servers.nodes)
        else:
            # Compact path: rebuild the O(nodes·m) node→server table (and the
            # per-zone candidate sets) — independent of the client count.
            delays = self.client_server_delays.with_servers(servers.nodes)
            mesh = delays.backend.server_server_delays(servers.nodes)
        return DVEScenario(
            config=self.config,
            topology=self.topology,
            delay_model=self.delay_model,
            servers=servers,
            world=self.world,
            population=self.population,
            client_server_delays=delays,
            server_server_delays=mesh,
            client_demands=self.client_demands,
        )

    def with_server_capacities(self, capacities: np.ndarray) -> "DVEScenario":
        """Return a new scenario whose fleet has different capacities only.

        The server *index space* is unchanged — same nodes, same order — so
        every delay matrix, the population and the demands carry over by
        identity (no gather, no copy): this is the O(num_servers) path for
        capacity-only fleet changes (drift batches, federation capacity
        re-slices), where :meth:`apply_server_delta` would re-gather the full
        client×server matrix just to reproduce it.
        """
        return DVEScenario(
            config=self.config,
            topology=self.topology,
            delay_model=self.delay_model,
            servers=ServerSet(nodes=self.servers.nodes, capacities=capacities),
            world=self.world,
            population=self.population,
            client_server_delays=self.client_server_delays,
            server_server_delays=self.server_server_delays,
            client_demands=self.client_demands,
        )

    def apply_server_delta(self, server_churn: "ServerChurnResult") -> "DVEScenario":
        """Delta version of :meth:`with_servers` for an infrastructure churn batch.

        Surviving servers' client-delay *columns* are carried over through the
        churn's ``old_to_new`` map and only the joining servers' columns are
        gathered from the delay model; the inter-server mesh is regathered in
        full (it is ``m × m`` — negligible next to the client matrix).
        Capacity drift lives entirely in the new :class:`ServerSet`, so
        demands and population carry over untouched.

        The result is bit-identical to ``self.with_servers(server_churn.servers)``:
        both paths gather the same float64 entries from the same cached
        all-pairs RTT matrix.
        """
        servers = server_churn.servers
        if server_churn.old_to_new.shape[0] != self.num_servers:
            raise ValueError(
                f"server churn was generated against a fleet of "
                f"{server_churn.old_to_new.shape[0]} servers, scenario has {self.num_servers}"
            )
        if servers.nodes.size and servers.nodes.max() >= self.topology.num_nodes:
            raise ValueError("servers refer to nodes outside this scenario's topology")

        if not self.has_dense_delays:
            # Compact path: the full node→server rebuild already costs only
            # O(nodes·m), so the column-delta optimisation has nothing to
            # save — reuse the with_servers machinery.
            delays = self.client_server_delays.with_servers(servers.nodes)
            mesh = delays.backend.server_server_delays(servers.nodes)
            return DVEScenario(
                config=self.config,
                topology=self.topology,
                delay_model=self.delay_model,
                servers=servers,
                world=self.world,
                population=self.population,
                client_server_delays=delays,
                server_server_delays=mesh,
                client_demands=self.client_demands,
            )

        delays = np.empty((self.num_clients, servers.num_servers), dtype=np.float64)
        survivors_old = np.flatnonzero(server_churn.old_to_new >= 0)
        delays[:, server_churn.old_to_new[survivors_old]] = self.client_server_delays[
            :, survivors_old
        ]
        if server_churn.new_server_indices.size:
            join_nodes = servers.nodes[server_churn.new_server_indices]
            delays[:, server_churn.new_server_indices] = self.delay_model.client_server_delays(
                self.population.nodes, join_nodes
            )
        return DVEScenario(
            config=self.config,
            topology=self.topology,
            delay_model=self.delay_model,
            servers=servers,
            world=self.world,
            population=self.population,
            client_server_delays=delays,
            server_server_delays=self.delay_model.server_server_delays(servers.nodes),
            client_demands=self.client_demands,
        )

    def summary(self) -> dict:
        """Descriptive statistics used by the CLI and reports."""
        return {
            "label": self.config.label,
            "servers": self.num_servers,
            "zones": self.num_zones,
            "clients": self.num_clients,
            "total_capacity_mbps": self.servers.total_capacity_mbps,
            "total_demand_mbps": self.total_demand() / MBPS,
            "load_factor": self.demand_to_capacity_ratio(),
            "delay_bound_ms": self.delay_bound_ms,
            "correlation": self.config.correlation,
            "topology": self.topology.name,
        }


def build_scenario(
    config: DVEConfig | None = None,
    seed: SeedLike = None,
    topology: Optional[Topology] = None,
    delay_model: Optional[DelayModel] = None,
    servers: Optional[ServerSet] = None,
) -> DVEScenario:
    """Materialise a :class:`DVEScenario` from a configuration.

    Parameters
    ----------
    config:
        Scenario configuration (paper defaults when omitted).
    seed:
        Master seed; sub-streams for topology generation, server placement,
        capacity allocation, client placement and zone sampling are derived
        from it deterministically.
    topology / delay_model:
        Optionally reuse an existing topology (and its expensive all-pairs
        delay matrix) across scenarios — the experiment runner does this when
        averaging over many simulation runs on the same substrate.
    servers:
        Optionally supply the server fleet instead of placing and sizing one
        from the config (requires ``topology``).  The federation layer uses
        this to hand every shard the same fleet nodes with per-shard capacity
        slices; ``config.num_servers`` / capacity knobs are ignored then.
        The client-side RNG sub-streams are unaffected: the placement and
        capacity streams are spawned (to keep the stream layout identical to
        a config-built scenario) but never drawn from.
    """
    config = config or DVEConfig()
    rng = as_generator(seed)
    (
        topo_rng,
        server_rng,
        capacity_rng,
        client_node_rng,
        client_zone_rng,
    ) = spawn_generators(rng, 5)

    if topology is None:
        if servers is not None:
            raise ValueError("supplying servers requires supplying their topology too")
        topology = generate_topology(config.topology, seed=topo_rng)
    if delay_model is None:
        delay_model = DelayModel(
            topology,
            max_rtt_ms=config.max_rtt_ms,
            server_mesh_factor=config.server_mesh_factor,
        )
    elif delay_model.topology is not topology:
        raise ValueError("delay_model must be built from the supplied topology")

    if servers is None:
        server_nodes = place_servers(topology, config.num_servers, seed=server_rng)
        capacities = allocate_capacities(
            config.num_servers,
            config.total_capacity_mbps,
            min_capacity_mbps=config.min_server_capacity_mbps,
            scheme=config.capacity_scheme,
            seed=capacity_rng,
        )
        servers = ServerSet(nodes=server_nodes, capacities=capacities)
    elif servers.nodes.size and servers.nodes.max() >= topology.num_nodes:
        raise ValueError("servers refer to nodes outside the supplied topology")

    spec = config.distribution_spec
    client_nodes = sample_client_nodes(topology, config.num_clients, spec, seed=client_node_rng)
    client_zones = sample_client_zones(
        topology, client_nodes, config.num_zones, spec, seed=client_zone_rng
    )
    population = ClientPopulation(nodes=client_nodes, zones=client_zones)

    world = VirtualWorld(num_zones=config.num_zones)
    if config.delay_backend == "dense":
        client_server_delays = delay_model.client_server_delays(client_nodes, servers.nodes)
        server_server_delays = delay_model.server_server_delays(servers.nodes)
    else:
        backend = make_delay_backend(
            config.delay_backend,
            delay_model,
            coords_dim=config.coords_dim,
            sparse_top_k=config.sparse_top_k,
        )
        client_server_delays = backend.client_matrix(
            client_nodes, client_zones, config.num_zones, servers.nodes
        )
        server_server_delays = backend.server_server_delays(servers.nodes)
    client_demands = config.bandwidth_model.client_target_demands(
        client_zones, config.num_zones
    )

    return DVEScenario(
        config=config,
        topology=topology,
        delay_model=delay_model,
        servers=servers,
        world=world,
        population=population,
        client_server_delays=client_server_delays,
        server_server_delays=server_server_delays,
        client_demands=client_demands,
    )
