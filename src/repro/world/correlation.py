"""Physical-world ↔ virtual-world correlation model.

The paper models the empirical observation that "clients that are close to
each other in their physical locations (e.g. from the same country or the same
geographic region) tend to gather in a specific zone of the virtual world due
to their common cultural preferences" with a correlation parameter
``0 <= delta <= 1`` (following Nguyen, Safaei & Boustead): the higher delta,
the stronger the tendency of physically co-located clients to share zones.

The concrete generative model used here:

1. Zones are partitioned into *preference groups*, one group per geographic
   region (AS domain / PoP metro area of the topology).  The partition is a
   random balanced split so every region prefers roughly ``n / #regions``
   zones.
2. For each client, with probability ``delta`` its avatar's zone is drawn from
   the preference group of the client's own region; with probability
   ``1 - delta`` it is drawn from the global zone distribution.

With ``delta = 0`` the virtual-world distribution is independent of physical
location; with ``delta = 1`` every zone is populated (almost) exclusively by
clients of a single region — which is precisely what makes the delay-aware
GreZ assignment shine in Figure 5 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_probability

__all__ = ["RegionZoneMap", "correlated_zone_choice"]


@dataclass(frozen=True)
class RegionZoneMap:
    """A partition of zones into per-region preference groups.

    Attributes
    ----------
    num_zones:
        Total number of zones.
    region_of_zone:
        ``(num_zones,)`` region id preferred for each zone.
    regions:
        Sorted array of distinct region ids.
    """

    num_zones: int
    region_of_zone: np.ndarray
    regions: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "region_of_zone", np.asarray(self.region_of_zone, dtype=np.int64)
        )
        object.__setattr__(self, "regions", np.asarray(self.regions, dtype=np.int64))
        if self.region_of_zone.shape != (self.num_zones,):
            raise ValueError("region_of_zone must have one entry per zone")
        if not np.isin(self.region_of_zone, self.regions).all():
            raise ValueError("region_of_zone refers to unknown regions")

    @classmethod
    def balanced(
        cls, num_zones: int, regions: np.ndarray, seed: SeedLike = None
    ) -> "RegionZoneMap":
        """Create a balanced random partition of zones among regions.

        Every region receives either ``floor(n/r)`` or ``ceil(n/r)`` zones.
        """
        regions = np.unique(np.asarray(regions, dtype=np.int64))
        if regions.size == 0:
            raise ValueError("at least one region is required")
        if num_zones < 1:
            raise ValueError("num_zones must be >= 1")
        rng = as_generator(seed)
        zone_order = rng.permutation(num_zones)
        region_of_zone = np.empty(num_zones, dtype=np.int64)
        # Deal zones to regions round-robin over a shuffled zone order.
        for i, zone in enumerate(zone_order):
            region_of_zone[zone] = regions[i % regions.size]
        return cls(num_zones=num_zones, region_of_zone=region_of_zone, regions=regions)

    @classmethod
    def balanced_prepared(
        cls, num_zones: int, regions: np.ndarray, deal: np.ndarray, seed: SeedLike = None
    ) -> "RegionZoneMap":
        """:meth:`balanced` with the region bookkeeping precomputed.

        ``regions`` must already be sorted, duplicate-free int64 and ``deal``
        must equal ``regions[np.arange(num_zones) % regions.size]`` — exactly
        what :class:`~repro.world.distributions.ZoneSamplingPlan` caches
        across churn epochs.  Consumes the same single ``permutation`` draw as
        :meth:`balanced` and produces a bit-identical map: scattering ``deal``
        through the shuffled zone order is the vectorised form of the
        round-robin dealing loop (permutation indices are distinct, so the
        scatter has no conflicts), and the construction is valid by
        construction, so the ``__post_init__`` membership re-validation is
        skipped.
        """
        rng = as_generator(seed)
        zone_order = rng.permutation(num_zones)
        region_of_zone = np.empty(num_zones, dtype=np.int64)
        region_of_zone[zone_order] = deal
        self = object.__new__(cls)
        object.__setattr__(self, "num_zones", num_zones)
        object.__setattr__(self, "region_of_zone", region_of_zone)
        object.__setattr__(self, "regions", regions)
        return self

    def zones_of_region(self, region: int) -> np.ndarray:
        """Zones preferred by clients of ``region`` (never empty for known regions)."""
        zones = np.flatnonzero(self.region_of_zone == region)
        if zones.size == 0:
            # More regions than zones: fall back to a deterministic single zone
            # so that sampling never fails.
            zones = np.array([int(region) % self.num_zones])
        return zones

    def preference_matrix(self) -> Dict[int, np.ndarray]:
        """Mapping region id → preferred zone array (for inspection / tests)."""
        return {int(r): self.zones_of_region(int(r)) for r in self.regions}


def correlated_zone_choice(
    client_regions: np.ndarray,
    zone_weights: np.ndarray,
    delta: float,
    region_map: RegionZoneMap,
    seed: SeedLike = None,
    plan_probs: np.ndarray | None = None,
    plan_cdf: np.ndarray | None = None,
) -> np.ndarray:
    """Sample a zone for each client with physical↔virtual correlation ``delta``.

    Parameters
    ----------
    client_regions:
        ``(num_clients,)`` geographic region id (AS domain) of each client.
    zone_weights:
        ``(num_zones,)`` non-negative global popularity weight of each zone
        (uniform or clustered "hot zone" weights); it is used both for the
        uncorrelated draws and, restricted and renormalised, for the
        correlated draws inside a region's preference group.
    delta:
        Correlation parameter in [0, 1].
    region_map:
        The zone→region preference partition.
    seed:
        RNG.
    plan_probs / plan_cdf:
        Optional precomputed normalised probabilities and sampling cdf of
        ``zone_weights`` (cached by
        :class:`~repro.world.distributions.ZoneSamplingPlan`).  The cdf draw
        replicates ``Generator.choice(..., p=probs)`` exactly — numpy's own
        implementation is ``cdf.searchsorted(rng.random(size), "right")``
        over the same cdf — so results and the RNG state afterwards are
        bit-identical with or without the cache.

    Returns
    -------
    numpy.ndarray
        ``(num_clients,)`` zone index per client.
    """
    check_probability(delta, "delta")
    rng = as_generator(seed)
    client_regions = np.asarray(client_regions, dtype=np.int64)
    if plan_probs is not None:
        # Weights were validated and normalised once at plan-build time.
        probs = plan_probs
    else:
        weights = np.asarray(zone_weights, dtype=np.float64)
        if weights.shape != (region_map.num_zones,):
            raise ValueError("zone_weights must have one entry per zone")
        if (weights < 0).any() or weights.sum() <= 0:
            raise ValueError("zone_weights must be non-negative and not all zero")
        probs = weights / weights.sum()

    num_clients = client_regions.shape[0]
    zones = np.empty(num_clients, dtype=np.int64)
    correlated = rng.random(num_clients) < delta

    # Uncorrelated clients: one vectorised draw from the global distribution.
    uncorrelated = ~correlated
    n_global = int(uncorrelated.sum())
    if n_global:
        if plan_cdf is not None:
            zones[uncorrelated] = plan_cdf.searchsorted(rng.random(n_global), side="right")
        else:
            zones[uncorrelated] = rng.choice(region_map.num_zones, size=n_global, p=probs)

    # Correlated clients: draw from their region's preference group, grouped by
    # region so each group needs a single vectorised draw.
    if correlated.any():
        corr_idx = np.flatnonzero(correlated)
        for region in np.unique(client_regions[corr_idx]):
            members = corr_idx[client_regions[corr_idx] == region]
            pref = region_map.zones_of_region(int(region))
            local = probs[pref]
            total = local.sum()
            if total <= 0:
                local = np.full(pref.size, 1.0 / pref.size)
            else:
                local = local / total
            zones[members] = rng.choice(pref, size=members.size, p=local)
    return zones
