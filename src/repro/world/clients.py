"""Client population model.

A client is characterised by two coordinates: its *physical* location (the
topology node it connects from) and its *virtual* location (the zone its
avatar currently occupies).  :class:`ClientPopulation` stores both as parallel
arrays and provides the join / leave / move transformations needed by the DVE
dynamics experiments (Table 3 of the paper).

All transformations return new populations (the arrays are copied), so an
assignment computed against one snapshot can be evaluated against a later
snapshot without aliasing surprises.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ClientPopulation"]


@dataclass(frozen=True)
class ClientPopulation:
    """A snapshot of the clients participating in the DVE.

    Attributes
    ----------
    nodes:
        ``(num_clients,)`` topology node index of each client (physical world).
    zones:
        ``(num_clients,)`` zone index of each client's avatar (virtual world).
    """

    nodes: np.ndarray
    zones: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", np.asarray(self.nodes, dtype=np.int64))
        object.__setattr__(self, "zones", np.asarray(self.zones, dtype=np.int64))
        if self.nodes.ndim != 1 or self.zones.ndim != 1:
            raise ValueError("nodes and zones must be 1-D arrays")
        if self.nodes.shape != self.zones.shape:
            raise ValueError(
                f"nodes and zones must be parallel arrays, got {self.nodes.shape} "
                f"and {self.zones.shape}"
            )
        if self.nodes.size and self.nodes.min() < 0:
            raise ValueError("node indices must be non-negative")
        if self.zones.size and self.zones.min() < 0:
            raise ValueError("zone indices must be non-negative")

    # ------------------------------------------------------------------ #
    @property
    def num_clients(self) -> int:
        """Number of clients in this snapshot."""
        return int(self.nodes.shape[0])

    def zone_populations(self, num_zones: int) -> np.ndarray:
        """Number of clients per zone (length ``num_zones``)."""
        if self.zones.size and self.zones.max() >= num_zones:
            raise ValueError("population contains zone ids >= num_zones")
        return np.bincount(self.zones, minlength=num_zones).astype(np.int64)

    def clients_in_zone(self, zone: int) -> np.ndarray:
        """Indices of the clients whose avatar is in ``zone``."""
        return np.flatnonzero(self.zones == zone)

    # ------------------------------------------------------------------ #
    # Churn transformations
    # ------------------------------------------------------------------ #
    def with_joined(self, nodes: np.ndarray, zones: np.ndarray) -> "ClientPopulation":
        """Return a new population with extra clients appended."""
        nodes = np.asarray(nodes, dtype=np.int64)
        zones = np.asarray(zones, dtype=np.int64)
        if nodes.shape != zones.shape:
            raise ValueError("joined nodes and zones must have matching shapes")
        return ClientPopulation(
            nodes=np.concatenate([self.nodes, nodes]),
            zones=np.concatenate([self.zones, zones]),
        )

    def with_left(self, client_indices: np.ndarray) -> "ClientPopulation":
        """Return a new population with the given client indices removed.

        The remaining clients keep their relative order; their indices shift
        down accordingly (callers that track per-client assignments must remap
        them, which :mod:`repro.dynamics` does).
        """
        idx = np.asarray(client_indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_clients):
            raise ValueError("client indices to remove are out of range")
        mask = np.ones(self.num_clients, dtype=bool)
        mask[idx] = False
        return ClientPopulation(nodes=self.nodes[mask], zones=self.zones[mask])

    def with_moved(self, client_indices: np.ndarray, new_zones: np.ndarray) -> "ClientPopulation":
        """Return a new population where the given clients moved to new zones."""
        idx = np.asarray(client_indices, dtype=np.int64)
        new_zones = np.asarray(new_zones, dtype=np.int64)
        if idx.shape != new_zones.shape:
            raise ValueError("client_indices and new_zones must have matching shapes")
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_clients):
            raise ValueError("client indices to move are out of range")
        zones = self.zones.copy()
        zones[idx] = new_zones
        return ClientPopulation(nodes=self.nodes.copy(), zones=zones)

    # ------------------------------------------------------------------ #
    def subset(self, client_indices: np.ndarray) -> "ClientPopulation":
        """Population restricted to the given client indices (in that order)."""
        idx = np.asarray(client_indices, dtype=np.int64)
        return ClientPopulation(nodes=self.nodes[idx], zones=self.zones[idx])
