"""Federated multi-shard worlds: several DVE scenarios on one substrate.

Production DVE operators run many independent worlds ("shards") on a shared
network topology and a shared server fleet.  The paper's CAP formulation
assigns one DVE's zones to one fleet; this module generalises the world layer
to that multi-tenant shape without copying the expensive substrate:

* every shard is an ordinary :class:`~repro.world.scenario.DVEScenario` —
  its own zones, clients, demands and assignments — so the whole solver /
  dynamics stack works on it unchanged;
* all shards share **one** :class:`~repro.topology.graph.Topology` and **one**
  :class:`~repro.topology.delays.DelayModel` *by identity* (the all-pairs RTT
  matrix is the dominant memory cost and is computed exactly once);
* all shards see the same fleet **nodes**, but each server's capacity is
  partitioned into per-shard *slices* — shard ``s`` sees server ``i`` with
  capacity ``slices[s, i]``, and the slices of each server sum to its full
  capacity (conservation).  Cross-shard capacity arbitration
  (:mod:`repro.core.arbitration`) moves capacity between shards by re-slicing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.topology.brite import generate_topology
from repro.topology.delays import DelayModel
from repro.topology.graph import Topology
from repro.topology.placement import place_servers
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.world.scenario import DVEConfig, DVEScenario, build_scenario
from repro.world.servers import ServerSet, allocate_capacities

__all__ = [
    "FederatedWorld",
    "build_federation",
    "equal_slices",
    "weighted_slices",
    "split_client_counts",
]

#: Relative tolerance for the per-server capacity-conservation check.
_CONSERVATION_RTOL = 1e-9


def equal_slices(capacities: np.ndarray, num_shards: int) -> np.ndarray:
    """Split every server's capacity evenly across ``num_shards`` shards."""
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    return weighted_slices(capacities, np.ones(num_shards))


def weighted_slices(capacities: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Split every server's capacity across shards proportionally to ``weights``.

    Columns sum back to the full capacities up to round-off; the first shard
    absorbs the residual so the sum is as close to exact as one float add
    allows.
    """
    capacities = np.asarray(capacities, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size < 1:
        raise ValueError("weights must be a non-empty 1-D array")
    if (weights <= 0).any():
        raise ValueError("every shard weight must be positive")
    fractions = weights / weights.sum()
    slices = fractions[:, None] * capacities[None, :]
    slices[0] += capacities - slices.sum(axis=0)
    return slices


def split_client_counts(
    total_clients: int, num_shards: int, weights: Optional[Sequence[float]] = None
) -> list[int]:
    """Partition a client population across shards (largest-remainder rounding).

    With no weights the split is as even as possible; with weights each shard
    gets a share proportional to its weight.  Counts always sum to
    ``total_clients`` exactly.
    """
    if num_shards < 1:
        raise ValueError("num_shards must be >= 1")
    if total_clients < 0:
        raise ValueError("total_clients must be >= 0")
    w = np.ones(num_shards) if weights is None else np.asarray(weights, dtype=np.float64)
    if w.shape != (num_shards,):
        raise ValueError(f"weights must have shape ({num_shards},), got {w.shape}")
    if (w <= 0).any():
        raise ValueError("every shard weight must be positive")
    exact = total_clients * w / w.sum()
    counts = np.floor(exact).astype(np.int64)
    remainder = total_clients - int(counts.sum())
    if remainder:
        # Hand the leftover clients to the shards with the largest fractional
        # parts (stable ties → lower shard index wins).
        order = np.argsort(-(exact - counts), kind="stable")
        counts[order[:remainder]] += 1
    return [int(c) for c in counts]


@dataclass(frozen=True)
class FederatedWorld:
    """N DVE shards sharing one topology, one delay model and one fleet.

    Attributes
    ----------
    topology / delay_model:
        The shared substrate.  Every shard references these *objects* — the
        all-pairs RTT matrix exists once, no matter how many shards run on it.
    servers:
        The full fleet: nodes and *total* per-server capacities.
    shards:
        One :class:`~repro.world.scenario.DVEScenario` per shard.  Shard ``s``
        sees the fleet's nodes with capacities ``slices[s]``.
    slices:
        ``(num_shards, num_servers)`` per-shard capacity slices (bits/s);
        every column sums to the corresponding full server capacity.
    """

    topology: Topology
    delay_model: DelayModel
    servers: ServerSet
    shards: tuple[DVEScenario, ...]
    slices: np.ndarray

    def __post_init__(self) -> None:
        object.__setattr__(self, "shards", tuple(self.shards))
        slices = np.asarray(self.slices, dtype=np.float64)
        object.__setattr__(self, "slices", slices)
        num_shards = len(self.shards)
        if num_shards < 1:
            raise ValueError("a FederatedWorld needs at least one shard")
        if slices.shape != (num_shards, self.servers.num_servers):
            raise ValueError(
                f"slices must have shape ({num_shards}, {self.servers.num_servers}), "
                f"got {slices.shape}"
            )
        if (slices <= 0).any():
            raise ValueError("every capacity slice must be strictly positive")
        if not np.allclose(
            slices.sum(axis=0), self.servers.capacities, rtol=_CONSERVATION_RTOL, atol=0.0
        ):
            raise ValueError(
                "capacity conservation violated: per-server slices must sum to the "
                "full server capacities"
            )
        for i, shard in enumerate(self.shards):
            if shard.topology is not self.topology:
                raise ValueError(f"shard {i} does not share the federation's topology")
            if shard.delay_model is not self.delay_model:
                raise ValueError(f"shard {i} does not share the federation's delay model")
            if not np.array_equal(shard.servers.nodes, self.servers.nodes):
                raise ValueError(f"shard {i} does not run on the federation's fleet nodes")
            if not np.array_equal(shard.servers.capacities, slices[i]):
                raise ValueError(f"shard {i}'s capacities do not match its slice")

    # ------------------------------------------------------------------ #
    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self.shards)

    @property
    def num_servers(self) -> int:
        """Number of servers in the shared fleet."""
        return self.servers.num_servers

    @property
    def total_capacity(self) -> float:
        """Total fleet capacity in bits/s."""
        return self.servers.total_capacity

    def shard_demands(self) -> np.ndarray:
        """Per-shard total client demand (bits/s)."""
        return np.array([shard.total_demand() for shard in self.shards])

    def with_slices(self, slices: np.ndarray) -> "FederatedWorld":
        """Return a re-sliced federation (shards updated via the zero-copy path).

        Every shard scenario is rebuilt with
        :meth:`~repro.world.scenario.DVEScenario.with_server_capacities`, so
        delay matrices and populations carry over by identity; only the
        per-shard capacity vectors change.
        """
        slices = np.asarray(slices, dtype=np.float64)
        shards = tuple(
            shard.with_server_capacities(slices[i]) for i, shard in enumerate(self.shards)
        )
        return FederatedWorld(
            topology=self.topology,
            delay_model=self.delay_model,
            servers=self.servers,
            shards=shards,
            slices=slices,
        )

    def summary(self) -> dict:
        """Descriptive statistics used by the CLI."""
        demands = self.shard_demands()
        return {
            "shards": self.num_shards,
            "servers": self.num_servers,
            "clients": sum(s.num_clients for s in self.shards),
            "zones": sum(s.num_zones for s in self.shards),
            "total_capacity_mbps": self.servers.total_capacity_mbps,
            "demand_to_capacity": float(demands.sum()) / self.total_capacity,
            "topology": self.topology.name,
        }


def build_federation(
    config: Union[DVEConfig, Sequence[DVEConfig], None] = None,
    num_shards: Optional[int] = None,
    seed: SeedLike = None,
    topology: Optional[Topology] = None,
    delay_model: Optional[DelayModel] = None,
    client_weights: Optional[Sequence[float]] = None,
    capacity_weights: Optional[Sequence[float]] = None,
) -> FederatedWorld:
    """Materialise a :class:`FederatedWorld` from one or more configurations.

    Parameters
    ----------
    config:
        Either one base :class:`~repro.world.scenario.DVEConfig` (combined
        with ``num_shards``: the base population is split across shards, each
        shard keeping the base zone count — shards are independent worlds) or
        an explicit sequence of per-shard configs.  The *first* config
        supplies the shared substrate: topology parameters, fleet size and
        total capacity.
    num_shards:
        Number of shards when a single base config is given (default 1);
        must be omitted (or match) when explicit configs are given.
    seed:
        Master seed; sub-streams for the topology, server placement, capacity
        allocation and each shard's client sampling are derived from it
        deterministically.
    topology / delay_model:
        Optionally reuse an existing substrate across federations (the
        experiment drivers do this across replications).
    client_weights:
        Optional per-shard weights for splitting the base config's client
        population (ignored when explicit configs are given) — a skewed
        federation is the interesting case for demand-aware arbitration.
    capacity_weights:
        Optional per-shard weights for the *initial* capacity slices
        (default: equal split per server).
    """
    if isinstance(config, DVEConfig) or config is None:
        base = config or DVEConfig()
        num_shards = 1 if num_shards is None else int(num_shards)
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        counts = split_client_counts(base.num_clients, num_shards, weights=client_weights)
        configs = [base.with_updates(num_clients=counts[i]) for i in range(num_shards)]
    else:
        configs = list(config)
        if not configs:
            raise ValueError("at least one shard config is required")
        if num_shards is not None and num_shards != len(configs):
            raise ValueError(
                f"num_shards={num_shards} does not match {len(configs)} explicit configs"
            )
        if client_weights is not None:
            raise ValueError("client_weights only apply when a single base config is given")
        num_shards = len(configs)
    base = configs[0]

    rng = as_generator(seed)
    topo_rng, server_rng, capacity_rng, *shard_rngs = spawn_generators(rng, 3 + num_shards)

    if topology is None:
        topology = generate_topology(base.topology, seed=topo_rng)
    if delay_model is None:
        delay_model = DelayModel(
            topology,
            max_rtt_ms=base.max_rtt_ms,
            server_mesh_factor=base.server_mesh_factor,
        )
    elif delay_model.topology is not topology:
        raise ValueError("delay_model must be built from the supplied topology")

    server_nodes = place_servers(topology, base.num_servers, seed=server_rng)
    capacities = allocate_capacities(
        base.num_servers,
        base.total_capacity_mbps,
        min_capacity_mbps=base.min_server_capacity_mbps,
        scheme=base.capacity_scheme,
        seed=capacity_rng,
    )
    fleet = ServerSet(nodes=server_nodes, capacities=capacities)

    if capacity_weights is None:
        slices = equal_slices(fleet.capacities, num_shards)
    else:
        weights = np.asarray(capacity_weights, dtype=np.float64)
        if weights.shape != (num_shards,):
            raise ValueError(
                f"capacity_weights must have shape ({num_shards},), got {weights.shape}"
            )
        slices = weighted_slices(fleet.capacities, weights)

    shards = tuple(
        build_scenario(
            configs[i],
            seed=shard_rngs[i],
            topology=topology,
            delay_model=delay_model,
            servers=ServerSet(nodes=fleet.nodes, capacities=slices[i]),
        )
        for i in range(num_shards)
    )
    return FederatedWorld(
        topology=topology,
        delay_model=delay_model,
        servers=fleet,
        shards=shards,
        slices=slices,
    )
