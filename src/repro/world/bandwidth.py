"""Bandwidth / server-resource model.

The paper measures the server resource consumed by a client as network
bandwidth and estimates it with the client-server bandwidth model of
Pellegrino & Dovrolis ("Bandwidth requirement and state consistency in three
multiplayer game architectures"): every client sends its inputs to the server
at the frame rate, and the server sends each client the state updates of every
other client in the same zone.  Per client this gives

    RT(c) = f * s * 8 * (n_zone(c) + 1)   bits/s

(upstream inputs + downstream updates about the ``n_zone(c)`` avatars in the
zone including the client's own echo), so a zone's total server bandwidth
grows quadratically with its population — exactly the behaviour the paper
relies on ("the bandwidth requirement in client-server architectures increases
quadratically with the total number of clients that are interacting with each
other").

Contact-server forwarding doubles a client's footprint: when the contact
server differs from the target server, all traffic traverses the contact
server in both directions, i.e. ``RC(c) = 2 * RT(c)`` (and ``RC(c) = 0`` when
the servers coincide), matching Section 2.1.

Paper defaults: frame rate 25 messages/s, message size 100 bytes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import check_positive

__all__ = ["BandwidthModel", "DEFAULT_FRAME_RATE", "DEFAULT_MESSAGE_BYTES"]

#: Paper default: each client sends 25 input messages per second.
DEFAULT_FRAME_RATE = 25.0
#: Paper default: each input / update message is 100 bytes.
DEFAULT_MESSAGE_BYTES = 100.0


@dataclass(frozen=True)
class BandwidthModel:
    """Quadratic client-server bandwidth model.

    Attributes
    ----------
    frame_rate:
        Input / update sending frequency per client (messages per second).
    message_bytes:
        Size of one input or update message in bytes.
    """

    frame_rate: float = DEFAULT_FRAME_RATE
    message_bytes: float = DEFAULT_MESSAGE_BYTES

    def __post_init__(self) -> None:
        check_positive(self.frame_rate, "frame_rate")
        check_positive(self.message_bytes, "message_bytes")

    # ------------------------------------------------------------------ #
    @property
    def stream_bps(self) -> float:
        """Bandwidth of a single client→server or server→client update stream."""
        return self.frame_rate * self.message_bytes * 8.0

    def client_target_demands(
        self, client_zones: np.ndarray, num_zones: int, out: np.ndarray = None
    ) -> np.ndarray:
        """Per-client bandwidth demand ``RT(c)`` on its target server, in bits/s.

        Parameters
        ----------
        client_zones:
            ``(num_clients,)`` zone index of each client.
        num_zones:
            Total number of zones in the virtual world.
        out:
            Optional ``(num_clients,)`` float64 buffer to write into (the
            epoch arena's recycled demand vector).  The ``out=`` path performs
            the same two float operations in the same order as the
            allocating path, so results are bit-identical.

        Returns
        -------
        numpy.ndarray
            ``(num_clients,)`` strictly positive per-client demand, where a
            client in a zone with ``p`` avatars requires
            ``stream_bps * (p + 1)`` bits/s.
        """
        client_zones = np.asarray(client_zones, dtype=np.int64)
        if client_zones.size and (client_zones.min() < 0 or client_zones.max() >= num_zones):
            raise ValueError("client_zones contains zone ids outside [0, num_zones)")
        populations = np.bincount(client_zones, minlength=num_zones)
        if out is None:
            return self.stream_bps * (populations[client_zones] + 1.0)
        np.add(populations[client_zones], 1.0, out=out)
        np.multiply(out, self.stream_bps, out=out)
        return out

    def zone_demands(self, client_zones: np.ndarray, num_zones: int) -> np.ndarray:
        """Total bandwidth demand of each zone on its target server, in bits/s.

        ``R(z) = sum over clients in z of RT(c) = stream_bps * p_z * (p_z + 1)``
        — the quadratic growth the zone-based architecture has to absorb.
        """
        client_zones = np.asarray(client_zones, dtype=np.int64)
        if client_zones.size and (client_zones.min() < 0 or client_zones.max() >= num_zones):
            raise ValueError("client_zones contains zone ids outside [0, num_zones)")
        populations = np.bincount(client_zones, minlength=num_zones).astype(np.float64)
        return self.stream_bps * populations * (populations + 1.0)

    def forwarding_demands(self, client_target_demands: np.ndarray) -> np.ndarray:
        """Per-client demand ``RC(c)`` on a *distinct* contact server (bits/s).

        ``RC(c) = 2 * RT(c)`` because the contact server relays both the
        client's inputs and the target server's updates.
        """
        demands = np.asarray(client_target_demands, dtype=np.float64)
        if (demands < 0).any():
            raise ValueError("client demands must be non-negative")
        return 2.0 * demands

    def total_demand(self, client_zones: np.ndarray, num_zones: int) -> float:
        """System-wide target-server bandwidth demand in bits/s."""
        return float(self.zone_demands(client_zones, num_zones).sum())
