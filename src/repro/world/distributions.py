"""Client distribution models for the physical and virtual world.

Section 4 of the paper varies two distributions independently (its Table 2):

====  ==================  ==================
type  clusters in PW       clusters in VW
====  ==================  ==================
0     no                   no
1     yes                  no
2     no                   yes
3     yes                  yes
====  ==================  ==================

* *Physical world (PW)*: where clients connect from.  Uniform over topology
  nodes, or clustered on a few hotspot nodes (different time zones / regions
  dominating at a given hour).
* *Virtual world (VW)*: which zone a client's avatar occupies.  Uniform over
  zones, or clustered on a few "hot" zones holding roughly ten times as many
  clients as a normal zone ("the number of clients in a clustered zone is 10
  times larger than that in a non-clustered zone").

On top of either VW distribution, the physical↔virtual correlation parameter
``delta`` (see :mod:`repro.world.correlation`) biases clients towards zones
preferred by their own geographic region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.topology.graph import Topology
from repro.topology.placement import (
    ClusteredPlacementParams,
    place_clients_clustered,
    place_clients_uniform,
)
from repro.utils.rng import SeedLike, as_generator, spawn_generators
from repro.utils.validation import check_positive, check_probability
from repro.world.correlation import RegionZoneMap, correlated_zone_choice

__all__ = [
    "DistributionSpec",
    "DISTRIBUTION_TYPES",
    "distribution_type",
    "zone_weights",
    "sample_client_nodes",
    "sample_client_zones",
    "ZoneSamplingPlan",
]

_PW_KINDS = ("uniform", "clustered")
_VW_KINDS = ("uniform", "clustered")

#: Paper Table 2 distribution types, as (physical_world, virtual_world) pairs.
DISTRIBUTION_TYPES: dict[int, tuple[str, str]] = {
    0: ("uniform", "uniform"),
    1: ("clustered", "uniform"),
    2: ("uniform", "clustered"),
    3: ("clustered", "clustered"),
}


@dataclass(frozen=True)
class DistributionSpec:
    """Full description of how clients are distributed.

    Attributes
    ----------
    physical:
        ``"uniform"`` or ``"clustered"`` — client locations in the network.
    virtual:
        ``"uniform"`` or ``"clustered"`` — avatar locations in the world.
    correlation:
        Physical↔virtual correlation delta in [0, 1] (paper default 0.5).
    hot_zone_factor:
        Weight multiplier of a hot zone relative to a normal zone (paper: 10).
    hot_zone_fraction:
        Fraction of zones that are "hot" under the clustered VW distribution.
    physical_hotspots / physical_hotspot_fraction:
        Parameters of the clustered PW distribution.
    """

    physical: str = "uniform"
    virtual: str = "uniform"
    correlation: float = 0.5
    hot_zone_factor: float = 10.0
    hot_zone_fraction: float = 0.1
    physical_hotspots: int = 10
    physical_hotspot_fraction: float = 0.7

    def __post_init__(self) -> None:
        if self.physical not in _PW_KINDS:
            raise ValueError(f"physical must be one of {_PW_KINDS}, got {self.physical!r}")
        if self.virtual not in _VW_KINDS:
            raise ValueError(f"virtual must be one of {_VW_KINDS}, got {self.virtual!r}")
        check_probability(self.correlation, "correlation")
        check_positive(self.hot_zone_factor, "hot_zone_factor")
        check_probability(self.hot_zone_fraction, "hot_zone_fraction")
        check_probability(self.physical_hotspot_fraction, "physical_hotspot_fraction")
        if self.physical_hotspots < 1:
            raise ValueError("physical_hotspots must be >= 1")

    @classmethod
    def from_type(cls, dist_type: int, correlation: float = 0.5, **kwargs) -> "DistributionSpec":
        """Build a spec from the paper's Table 2 distribution type (0-3)."""
        if dist_type not in DISTRIBUTION_TYPES:
            raise ValueError(f"distribution type must be in {sorted(DISTRIBUTION_TYPES)}")
        physical, virtual = DISTRIBUTION_TYPES[dist_type]
        return cls(physical=physical, virtual=virtual, correlation=correlation, **kwargs)

    @property
    def type_id(self) -> int:
        """The paper's Table 2 type id of this spec."""
        return distribution_type(self.physical, self.virtual)


def distribution_type(physical: str, virtual: str) -> int:
    """Inverse of :data:`DISTRIBUTION_TYPES`."""
    for type_id, pair in DISTRIBUTION_TYPES.items():
        if pair == (physical, virtual):
            return type_id
    raise ValueError(f"unknown distribution combination ({physical!r}, {virtual!r})")


def zone_weights(
    num_zones: int,
    virtual: str = "uniform",
    hot_zone_factor: float = 10.0,
    hot_zone_fraction: float = 0.1,
    seed: SeedLike = None,
) -> np.ndarray:
    """Global zone popularity weights.

    Uniform distribution → all-ones.  Clustered → a random ``hot_zone_fraction``
    of zones carries ``hot_zone_factor`` times the weight of the others.
    """
    if num_zones < 1:
        raise ValueError("num_zones must be >= 1")
    weights = np.ones(num_zones, dtype=np.float64)
    if virtual == "clustered":
        rng = as_generator(seed)
        n_hot = max(1, int(round(hot_zone_fraction * num_zones)))
        hot = rng.choice(num_zones, size=min(n_hot, num_zones), replace=False)
        weights[hot] = hot_zone_factor
    elif virtual != "uniform":
        raise ValueError(f"virtual must be one of {_VW_KINDS}, got {virtual!r}")
    return weights


def sample_client_nodes(
    topology: Topology,
    num_clients: int,
    spec: DistributionSpec,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample each client's physical node according to the PW distribution."""
    if spec.physical == "uniform":
        return place_clients_uniform(topology, num_clients, seed=seed)
    params = ClusteredPlacementParams(
        num_hotspots=spec.physical_hotspots,
        hotspot_fraction=spec.physical_hotspot_fraction,
    )
    return place_clients_clustered(topology, num_clients, params=params, seed=seed)


@dataclass(frozen=True, eq=False)
class ZoneSamplingPlan:
    """Cached population-independent state for :func:`sample_client_zones`.

    Churn generation redraws joiners' zones every epoch against the *same*
    topology, zone count and distribution spec; only the RNG state and the
    joining clients change.  The plan precomputes everything the per-epoch
    call used to derive from scratch — the sorted region universe, the
    round-robin dealing vector behind :meth:`RegionZoneMap.balanced`, and the
    all-ones uniform zone weights — and :func:`sample_client_zones` consumes
    the exact same RNG draws with or without a plan, so the sampled zones are
    bit-identical either way.
    """

    topology: Topology
    num_zones: int
    spec: DistributionSpec
    all_regions: np.ndarray
    deal: np.ndarray
    uniform_weights: Optional[np.ndarray]
    uniform_probs: Optional[np.ndarray]
    uniform_cdf: Optional[np.ndarray]

    @classmethod
    def build(cls, topology: Topology, num_zones: int, spec: DistributionSpec):
        """Precompute the plan for one (topology, num_zones, spec) world."""
        if topology.node_domain is not None:
            base = np.unique(topology.node_domain)
        else:
            base = np.arange(topology.num_nodes)
        all_regions = np.unique(np.asarray(base, dtype=np.int64))
        all_regions.setflags(write=False)
        deal = all_regions[np.arange(num_zones) % all_regions.size]
        deal.setflags(write=False)
        uniform_weights = uniform_probs = uniform_cdf = None
        if spec.virtual == "uniform":
            uniform_weights = np.ones(num_zones, dtype=np.float64)
            uniform_weights.setflags(write=False)
            # Probabilities and sampling cdf exactly as correlated_zone_choice
            # and numpy's Generator.choice derive them per call, frozen once.
            uniform_probs = uniform_weights / uniform_weights.sum()
            uniform_cdf = uniform_probs.cumsum()
            uniform_cdf /= uniform_cdf[-1]
            uniform_probs.setflags(write=False)
            uniform_cdf.setflags(write=False)
        return cls(
            topology=topology,
            num_zones=num_zones,
            spec=spec,
            all_regions=all_regions,
            deal=deal,
            uniform_weights=uniform_weights,
            uniform_probs=uniform_probs,
            uniform_cdf=uniform_cdf,
        )


def sample_client_zones(
    topology: Topology,
    client_nodes: np.ndarray,
    num_zones: int,
    spec: DistributionSpec,
    seed: SeedLike = None,
    plan: Optional[ZoneSamplingPlan] = None,
) -> np.ndarray:
    """Sample each client's zone according to the VW distribution and correlation.

    The geographic region of a client is the AS domain of its node (or node id
    itself when the topology carries no domain labels).

    ``plan`` optionally supplies the precomputed population-independent state
    (:class:`ZoneSamplingPlan`) so hot churn loops skip the per-call region
    bookkeeping; the RNG draw order is unchanged, so results are bit-identical
    with or without a plan.
    """
    if plan is not None and (
        plan.topology is not topology or plan.num_zones != num_zones or plan.spec != spec
    ):
        raise ValueError("ZoneSamplingPlan was built for a different world or spec")
    rng = as_generator(seed)
    weights_rng, map_rng, choice_rng = spawn_generators(rng, 3)
    if plan is not None and plan.uniform_weights is not None:
        # Uniform virtual weights are a constant all-ones vector and consume
        # no randomness (weights_rng is spawned either way, preserving the
        # draw layout).
        weights = plan.uniform_weights
    else:
        weights = zone_weights(
            num_zones,
            virtual=spec.virtual,
            hot_zone_factor=spec.hot_zone_factor,
            hot_zone_fraction=spec.hot_zone_fraction,
            seed=weights_rng,
        )
    client_nodes = np.asarray(client_nodes, dtype=np.int64)
    if topology.node_domain is not None:
        regions = topology.node_domain[client_nodes]
    else:
        regions = client_nodes
    if plan is not None:
        region_map = RegionZoneMap.balanced_prepared(
            num_zones, plan.all_regions, plan.deal, seed=map_rng
        )
    else:
        if topology.node_domain is not None:
            all_regions = np.unique(topology.node_domain)
        else:
            all_regions = np.arange(topology.num_nodes)
        region_map = RegionZoneMap.balanced(num_zones, all_regions, seed=map_rng)
    plan_probs = plan_cdf = None
    if plan is not None and plan.uniform_probs is not None:
        plan_probs, plan_cdf = plan.uniform_probs, plan.uniform_cdf
    return correlated_zone_choice(
        regions,
        weights,
        spec.correlation,
        region_map,
        seed=choice_rng,
        plan_probs=plan_probs,
        plan_cdf=plan_cdf,
    )
