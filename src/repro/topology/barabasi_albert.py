"""Barabási–Albert preferential-attachment generator (AS-level topology model).

The paper's BRITE configuration uses the Barabási–Albert (BA) model for the
20-node AS-level graph.  In the BA model the graph grows one node at a time;
each new node attaches to ``m`` existing nodes with probability proportional
to their current degree, producing the heavy-tailed degree distributions seen
in real AS graphs.

This implementation places nodes in a plane (so that edge latencies can be
distance-derived, as BRITE does) and supports an explicit RNG for
reproducibility.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.graph import Topology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive

__all__ = ["BarabasiAlbertParams", "barabasi_albert_topology"]


@dataclass(frozen=True)
class BarabasiAlbertParams:
    """Parameters of the Barabási–Albert model.

    ``m`` is the number of edges each new node creates.  ``plane_size`` and
    ``latency_per_unit`` control the geometric embedding used to derive edge
    latencies (BRITE assigns AS-level links latencies proportional to the
    Euclidean distance between AS centres).
    """

    m: int = 2
    plane_size: float = 1000.0
    latency_per_unit: float = 0.05

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError(f"m must be >= 1, got {self.m}")
        check_positive(self.plane_size, "plane_size")
        check_positive(self.latency_per_unit, "latency_per_unit")


def barabasi_albert_topology(
    num_nodes: int,
    params: BarabasiAlbertParams | None = None,
    seed: SeedLike = None,
    name: str = "barabasi-albert",
) -> Topology:
    """Generate a Barabási–Albert topology with distance-derived latencies.

    The first ``m + 1`` nodes form a clique (the usual seed graph choice so
    preferential attachment has well-defined degrees); every subsequent node
    attaches to ``m`` distinct existing nodes chosen with probability
    proportional to degree.
    """
    params = params or BarabasiAlbertParams()
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    rng = as_generator(seed)

    positions = rng.uniform(0.0, params.plane_size, size=(num_nodes, 2))
    if num_nodes == 1:
        return Topology(
            positions=positions,
            edges=np.zeros((0, 2), dtype=np.int64),
            latencies=np.zeros(0, dtype=np.float64),
            name=name,
        )

    m = min(params.m, num_nodes - 1)
    seed_size = m + 1
    edges: list[tuple[int, int]] = []
    # Seed clique over the first m+1 nodes.
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            edges.append((u, v))

    # repeated_nodes holds one entry per edge endpoint, so sampling uniformly
    # from it is sampling proportionally to degree.
    repeated_nodes: list[int] = []
    for u, v in edges:
        repeated_nodes.extend((u, v))

    for new_node in range(seed_size, num_nodes):
        targets: set[int] = set()
        # Rejection-sample m distinct targets proportional to degree.
        while len(targets) < m:
            pick = repeated_nodes[int(rng.integers(0, len(repeated_nodes)))]
            targets.add(pick)
        for t in sorted(targets):
            edges.append((new_node, t))
            repeated_nodes.extend((new_node, t))

    edge_arr = np.array(edges, dtype=np.int64)
    diff = positions[edge_arr[:, 0]] - positions[edge_arr[:, 1]]
    dist = np.sqrt((diff**2).sum(axis=1))
    latencies = np.maximum(dist * params.latency_per_unit, 1e-3)
    return Topology(positions=positions, edges=edge_arr, latencies=latencies, name=name)
