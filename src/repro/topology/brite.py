"""High-level BRITE-like topology configuration front end.

The original BRITE tool is driven by a configuration file selecting the model
(flat Waxman, flat Barabási–Albert, or two-level hierarchical) and its
parameters.  :class:`BriteConfig` plays the same role here: a single frozen
dataclass that experiment configurations can embed and hash, with
:func:`generate_topology` dispatching to the concrete generators.

The default configuration reproduces the paper's substrate: a 500-node
hierarchical topology with 20 Barabási–Albert AS domains of 25 Waxman routers
each.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.barabasi_albert import BarabasiAlbertParams, barabasi_albert_topology
from repro.topology.graph import Topology
from repro.topology.hierarchical import HierarchicalParams, hierarchical_topology
from repro.topology.waxman import WaxmanParams, waxman_topology
from repro.utils.rng import SeedLike

__all__ = ["BriteConfig", "generate_topology", "paper_default_topology"]

_VALID_MODELS = ("hierarchical", "waxman", "barabasi-albert")


@dataclass(frozen=True)
class BriteConfig:
    """Declarative description of a synthetic topology.

    Attributes
    ----------
    model:
        One of ``"hierarchical"`` (default, the paper's setting), ``"waxman"``
        or ``"barabasi-albert"``.
    num_nodes:
        Total node count.  For the hierarchical model this must equal
        ``num_as * routers_per_as``.
    num_as / routers_per_as:
        Hierarchy shape (ignored by the flat models).
    waxman_alpha / waxman_beta:
        Waxman parameters for the router level (or the whole flat graph).
    ba_m:
        Barabási–Albert attachment parameter for the AS level (or the whole
        flat graph).
    """

    model: str = "hierarchical"
    num_nodes: int = 500
    num_as: int = 20
    routers_per_as: int = 25
    waxman_alpha: float = 0.15
    waxman_beta: float = 0.2
    ba_m: int = 2

    def __post_init__(self) -> None:
        if self.model not in _VALID_MODELS:
            raise ValueError(f"model must be one of {_VALID_MODELS}, got {self.model!r}")
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.model == "hierarchical" and self.num_nodes != self.num_as * self.routers_per_as:
            raise ValueError(
                "for the hierarchical model num_nodes must equal num_as * routers_per_as "
                f"({self.num_as} * {self.routers_per_as} != {self.num_nodes})"
            )

    def describe(self) -> str:
        """One-line human-readable description (used in logs and reports)."""
        if self.model == "hierarchical":
            return (
                f"hierarchical BRITE-like topology: {self.num_as} AS (Barabási–Albert, m="
                f"{self.ba_m}) × {self.routers_per_as} routers (Waxman, alpha="
                f"{self.waxman_alpha}, beta={self.waxman_beta}) = {self.num_nodes} nodes"
            )
        return f"flat {self.model} topology with {self.num_nodes} nodes"


def generate_topology(config: BriteConfig | None = None, seed: SeedLike = None) -> Topology:
    """Generate a :class:`Topology` from a :class:`BriteConfig`."""
    config = config or BriteConfig()
    if config.model == "hierarchical":
        params = HierarchicalParams(
            num_as=config.num_as,
            routers_per_as=config.routers_per_as,
            as_params=BarabasiAlbertParams(m=config.ba_m),
            router_params=WaxmanParams(alpha=config.waxman_alpha, beta=config.waxman_beta),
        )
        return hierarchical_topology(params, seed=seed, name=f"brite-hier-{config.num_nodes}")
    if config.model == "waxman":
        return waxman_topology(
            config.num_nodes,
            params=WaxmanParams(alpha=config.waxman_alpha, beta=config.waxman_beta),
            seed=seed,
            name=f"brite-waxman-{config.num_nodes}",
        )
    # barabasi-albert
    return barabasi_albert_topology(
        config.num_nodes,
        params=BarabasiAlbertParams(m=config.ba_m),
        seed=seed,
        name=f"brite-ba-{config.num_nodes}",
    )


def paper_default_topology(seed: SeedLike = None) -> Topology:
    """The exact substrate described in the paper's Section 4.1.

    500 nodes, 20 AS domains (Barabási–Albert) with 25 Waxman routers each.
    """
    return generate_topology(BriteConfig(), seed=seed)
