"""Synthetic US continental IP backbone topology (AT&T-style).

The paper additionally validates its algorithms on "real topologies (e.g. the
US AT&T continental IP backbone)" and reports similar results.  The actual
AT&T PoP-level dataset is not redistributable, so this module builds the
closest synthetic equivalent: a PoP-level backbone over 25 real US metro
areas at their true geographic coordinates, with links between nearby PoPs
plus a handful of long-haul cross-country links, and per-city access routers
hanging off each PoP so clients and servers can be placed at the edge.

Link latencies are derived from great-circle distances at a propagation speed
of ~2/3 c, which is the standard approximation for fibre.  This preserves the
property that makes the real backbone interesting for the client assignment
problem: delays are irregular and geographically clustered, unlike the purely
random synthetic models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.graph import Topology
from repro.utils.rng import SeedLike, as_generator

__all__ = ["BackboneParams", "us_backbone_topology", "US_POPS"]

# (city, latitude, longitude) — 25 major US metro areas (PoP sites typical of
# continental IP backbones such as AT&T's).
US_POPS: list[tuple[str, float, float]] = [
    ("New York", 40.71, -74.01),
    ("Washington DC", 38.91, -77.04),
    ("Atlanta", 33.75, -84.39),
    ("Miami", 25.76, -80.19),
    ("Orlando", 28.54, -81.38),
    ("Boston", 42.36, -71.06),
    ("Philadelphia", 39.95, -75.17),
    ("Chicago", 41.88, -87.63),
    ("Detroit", 42.33, -83.05),
    ("Cleveland", 41.50, -81.69),
    ("St Louis", 38.63, -90.20),
    ("Nashville", 36.16, -86.78),
    ("New Orleans", 29.95, -90.07),
    ("Dallas", 32.78, -96.80),
    ("Houston", 29.76, -95.37),
    ("Austin", 30.27, -97.74),
    ("Kansas City", 39.10, -94.58),
    ("Denver", 39.74, -104.99),
    ("Salt Lake City", 40.76, -111.89),
    ("Phoenix", 33.45, -112.07),
    ("Seattle", 47.61, -122.33),
    ("Portland", 45.52, -122.68),
    ("San Francisco", 37.77, -122.42),
    ("Los Angeles", 34.05, -118.24),
    ("San Diego", 32.72, -117.16),
]

_EARTH_RADIUS_KM = 6371.0
# Propagation speed in fibre ≈ 200,000 km/s → 0.005 ms per km one-way.
_MS_PER_KM = 1.0 / 200.0


@dataclass(frozen=True)
class BackboneParams:
    """Parameters of the synthetic US backbone generator.

    ``access_routers_per_pop`` controls how many edge/access nodes hang off
    each PoP (so the total node count can approach the 500 nodes of the
    synthetic topologies).  ``neighbour_links`` is the number of nearest PoPs
    each PoP connects to; ``long_haul_links`` adds that many random
    cross-country links on top for path diversity.
    """

    access_routers_per_pop: int = 4
    neighbour_links: int = 3
    long_haul_links: int = 6
    access_latency_ms: float = 2.0
    access_latency_jitter_ms: float = 3.0

    def __post_init__(self) -> None:
        if self.access_routers_per_pop < 0:
            raise ValueError("access_routers_per_pop must be >= 0")
        if self.neighbour_links < 1:
            raise ValueError("neighbour_links must be >= 1")
        if self.long_haul_links < 0:
            raise ValueError("long_haul_links must be >= 0")
        if self.access_latency_ms <= 0:
            raise ValueError("access_latency_ms must be positive")
        if self.access_latency_jitter_ms < 0:
            raise ValueError("access_latency_jitter_ms must be >= 0")


def great_circle_km(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in kilometres between two (lat, lon) points."""
    p1, p2 = np.radians(lat1), np.radians(lat2)
    dphi = np.radians(lat2 - lat1)
    dlmb = np.radians(lon2 - lon1)
    a = np.sin(dphi / 2) ** 2 + np.cos(p1) * np.cos(p2) * np.sin(dlmb / 2) ** 2
    return float(2 * _EARTH_RADIUS_KM * np.arcsin(np.sqrt(a)))


def us_backbone_topology(
    params: BackboneParams | None = None,
    seed: SeedLike = None,
    name: str = "us-backbone",
) -> Topology:
    """Build the synthetic US backbone topology.

    PoPs are nodes ``0 .. 24`` (in :data:`US_POPS` order); access routers
    follow, grouped per PoP.  ``node_domain`` records the PoP index of every
    node so the correlation model can treat each metro area as a geographic
    region.
    """
    params = params or BackboneParams()
    rng = as_generator(seed)

    n_pop = len(US_POPS)
    lats = np.array([p[1] for p in US_POPS])
    lons = np.array([p[2] for p in US_POPS])

    # Use (lon, lat) directly as planar positions for reporting purposes.
    pop_positions = np.column_stack([lons, lats])

    # Distance matrix between PoPs (km).
    dist_km = np.zeros((n_pop, n_pop))
    for i in range(n_pop):
        for j in range(i + 1, n_pop):
            d = great_circle_km(lats[i], lons[i], lats[j], lons[j])
            dist_km[i, j] = dist_km[j, i] = d

    edges: set[tuple[int, int]] = set()
    # Each PoP connects to its nearest neighbours.
    for i in range(n_pop):
        order = np.argsort(dist_km[i])
        added = 0
        for j in order:
            if j == i:
                continue
            edge = (min(i, int(j)), max(i, int(j)))
            if edge not in edges:
                edges.add(edge)
            added += 1
            if added >= params.neighbour_links:
                break
    # A few random long-haul links for path diversity.
    for _ in range(params.long_haul_links):
        i, j = rng.choice(n_pop, size=2, replace=False)
        edges.add((min(int(i), int(j)), max(int(i), int(j))))

    edge_list = sorted(edges)
    latencies = [max(dist_km[u, v] * _MS_PER_KM, 0.1) for u, v in edge_list]

    # Access routers per PoP.
    positions = [pop_positions]
    domains = [np.arange(n_pop)]
    next_node = n_pop
    for pop in range(n_pop):
        for _ in range(params.access_routers_per_pop):
            jitter = rng.normal(scale=0.3, size=2)
            positions.append((pop_positions[pop] + jitter)[None, :])
            domains.append(np.array([pop]))
            lat = params.access_latency_ms + rng.uniform(0.0, params.access_latency_jitter_ms)
            edge_list.append((pop, next_node))
            latencies.append(float(lat))
            next_node += 1

    topology = Topology(
        positions=np.vstack(positions),
        edges=np.array(edge_list, dtype=np.int64),
        latencies=np.array(latencies, dtype=np.float64),
        node_domain=np.concatenate(domains),
        name=name,
    )
    if not topology.is_connected():
        raise RuntimeError("US backbone construction produced a disconnected graph")
    return topology
