"""Placement of servers and clients onto topology nodes.

The paper selects both the clients' and servers' physical locations "randomly
among these 500 nodes", and additionally studies *clustered* physical-world
distributions where "some nodes in the network topology are randomly selected
to have a larger number of clients than the rest" (Section 4.2, Figure 6).

Two placement flavours are provided:

* :func:`place_servers` — distinct random nodes, one per server (optionally
  spread across distinct AS domains so the geographic distribution is
  realistic).
* :func:`place_clients_uniform` / :func:`place_clients_clustered` — node
  choices for each client, uniform or with a configurable fraction of clients
  concentrated on a few hotspot nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.graph import Topology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_probability

__all__ = [
    "ClusteredPlacementParams",
    "place_servers",
    "place_clients_uniform",
    "place_clients_clustered",
]


@dataclass(frozen=True)
class ClusteredPlacementParams:
    """Parameters of the clustered physical-world client distribution.

    ``num_hotspots`` nodes are selected uniformly at random; a fraction
    ``hotspot_fraction`` of all clients is placed on those nodes (spread
    uniformly among them, i.e. each hotspot node receives roughly
    ``hotspot_fraction / num_hotspots`` of the population, about 10× the mass
    of a non-hotspot node for the defaults), the remaining clients are placed
    uniformly over all other nodes.
    """

    num_hotspots: int = 10
    hotspot_fraction: float = 0.7

    def __post_init__(self) -> None:
        if self.num_hotspots < 1:
            raise ValueError("num_hotspots must be >= 1")
        check_probability(self.hotspot_fraction, "hotspot_fraction")


def place_servers(
    topology: Topology,
    num_servers: int,
    seed: SeedLike = None,
    spread_across_domains: bool = True,
) -> np.ndarray:
    """Choose distinct topology nodes for the servers.

    When ``spread_across_domains`` is set and the topology has at least as
    many domains as servers, one server is placed in each of ``num_servers``
    distinct domains (at a random node of that domain); otherwise nodes are
    drawn uniformly without replacement.  The paper places servers at random
    nodes; spreading them across AS domains is the realistic interpretation of
    a *geographically distributed* server architecture and is the default.
    """
    if num_servers < 1:
        raise ValueError("num_servers must be >= 1")
    if num_servers > topology.num_nodes:
        raise ValueError(
            f"cannot place {num_servers} servers on {topology.num_nodes} nodes"
        )
    rng = as_generator(seed)
    if (
        spread_across_domains
        and topology.node_domain is not None
        and topology.num_domains >= num_servers
    ):
        domains = rng.choice(
            np.unique(topology.node_domain), size=num_servers, replace=False
        )
        nodes = np.array(
            [int(rng.choice(topology.domain_nodes(int(d)))) for d in domains],
            dtype=np.int64,
        )
        return nodes
    return rng.choice(topology.num_nodes, size=num_servers, replace=False).astype(np.int64)


def place_clients_uniform(
    topology: Topology,
    num_clients: int,
    seed: SeedLike = None,
    exclude_nodes: np.ndarray | None = None,
) -> np.ndarray:
    """Place clients uniformly at random over topology nodes (with replacement).

    ``exclude_nodes`` (e.g. server nodes) can be removed from the candidate
    set; by default clients may share nodes with servers, as in the paper.
    """
    if num_clients < 0:
        raise ValueError("num_clients must be >= 0")
    rng = as_generator(seed)
    candidates = np.arange(topology.num_nodes)
    if exclude_nodes is not None and len(exclude_nodes):
        mask = np.ones(topology.num_nodes, dtype=bool)
        mask[np.asarray(exclude_nodes, dtype=np.int64)] = False
        candidates = candidates[mask]
        if candidates.size == 0:
            raise ValueError("exclude_nodes removes every candidate node")
    return rng.choice(candidates, size=num_clients, replace=True).astype(np.int64)


def place_clients_clustered(
    topology: Topology,
    num_clients: int,
    params: ClusteredPlacementParams | None = None,
    seed: SeedLike = None,
) -> np.ndarray:
    """Place clients with a clustered physical-world distribution.

    A set of hotspot nodes receives ``hotspot_fraction`` of the population;
    the remainder is uniform over all nodes.  Returns the node index of each
    client.
    """
    if num_clients < 0:
        raise ValueError("num_clients must be >= 0")
    params = params or ClusteredPlacementParams()
    rng = as_generator(seed)
    num_hot = min(params.num_hotspots, topology.num_nodes)
    hotspots = rng.choice(topology.num_nodes, size=num_hot, replace=False)
    nodes = np.empty(num_clients, dtype=np.int64)
    in_hotspot = rng.random(num_clients) < params.hotspot_fraction
    n_hot_clients = int(in_hotspot.sum())
    nodes[in_hotspot] = rng.choice(hotspots, size=n_hot_clients, replace=True)
    nodes[~in_hotspot] = rng.choice(
        topology.num_nodes, size=num_clients - n_hot_clients, replace=True
    )
    return nodes
