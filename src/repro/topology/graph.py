"""Core network-topology container used by every other subsystem.

A :class:`Topology` is an undirected graph whose nodes are network routers /
points of presence and whose edges carry a one-way propagation latency (in
milliseconds).  It is the substrate on which servers and clients are placed
and from which every client-server / server-server round-trip delay used by
the assignment algorithms is derived.

The class wraps a :class:`networkx.Graph` for convenient construction and
inspection, but all heavy numerical work (all-pairs shortest paths) is done on
a SciPy sparse matrix so that the 500-node topologies of the paper are handled
in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

import networkx as nx
import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import connected_components, shortest_path

from repro.utils.validation import check_positive

__all__ = ["Topology", "TopologyError"]


class TopologyError(RuntimeError):
    """Raised when a topology is malformed (disconnected, empty, bad weights)."""


@dataclass
class Topology:
    """An undirected latency-weighted network graph.

    Parameters
    ----------
    positions:
        ``(num_nodes, 2)`` array of planar (or lon/lat) coordinates.  Only used
        for distance-derived latencies and plotting; algorithms never read it.
    edges:
        ``(num_edges, 2)`` integer array of undirected edges.
    latencies:
        ``(num_edges,)`` array of one-way edge latencies in milliseconds.
    node_domain:
        Optional ``(num_nodes,)`` integer array giving the AS / domain id of
        each node (used by the hierarchical generator and by the correlation
        model that groups clients into geographic regions).
    name:
        Human-readable identifier (e.g. ``"brite-hier-500"``).
    """

    positions: np.ndarray
    edges: np.ndarray
    latencies: np.ndarray
    node_domain: Optional[np.ndarray] = None
    name: str = "topology"
    _graph_cache: Optional[nx.Graph] = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=np.float64)
        self.edges = np.asarray(self.edges, dtype=np.int64)
        self.latencies = np.asarray(self.latencies, dtype=np.float64)
        if self.positions.ndim != 2 or self.positions.shape[1] != 2:
            raise TopologyError(f"positions must be (n, 2), got {self.positions.shape}")
        if self.edges.ndim != 2 or self.edges.shape[1] != 2:
            raise TopologyError(f"edges must be (e, 2), got {self.edges.shape}")
        if self.latencies.shape != (self.edges.shape[0],):
            raise TopologyError(
                f"latencies must have one entry per edge, got {self.latencies.shape} "
                f"for {self.edges.shape[0]} edges"
            )
        if self.num_nodes == 0:
            raise TopologyError("topology must have at least one node")
        if self.edges.size and (self.edges.min() < 0 or self.edges.max() >= self.num_nodes):
            raise TopologyError("edge endpoints out of range")
        if self.latencies.size and (self.latencies <= 0).any():
            raise TopologyError("all edge latencies must be strictly positive")
        if self.node_domain is not None:
            self.node_domain = np.asarray(self.node_domain, dtype=np.int64)
            if self.node_domain.shape != (self.num_nodes,):
                raise TopologyError("node_domain must have one entry per node")

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of nodes in the topology."""
        return int(self.positions.shape[0])

    @property
    def num_edges(self) -> int:
        """Number of undirected edges."""
        return int(self.edges.shape[0])

    @property
    def num_domains(self) -> int:
        """Number of distinct AS / domain ids (1 when no domain labels exist)."""
        if self.node_domain is None:
            return 1
        return int(np.unique(self.node_domain).size)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_networkx(
        cls,
        graph: nx.Graph,
        latency_attr: str = "latency",
        position_attr: str = "pos",
        domain_attr: str = "domain",
        name: str = "topology",
    ) -> "Topology":
        """Build a :class:`Topology` from a networkx graph.

        Nodes are relabelled to ``0..n-1`` in sorted order of their original
        labels; every edge must carry a positive ``latency_attr``.
        """
        nodes = sorted(graph.nodes())
        index: Dict[object, int] = {node: i for i, node in enumerate(nodes)}
        positions = np.zeros((len(nodes), 2), dtype=np.float64)
        domains = np.zeros(len(nodes), dtype=np.int64)
        has_domain = False
        for node, i in index.items():
            data = graph.nodes[node]
            pos = data.get(position_attr, (0.0, 0.0))
            positions[i] = (float(pos[0]), float(pos[1]))
            if domain_attr in data:
                has_domain = True
                domains[i] = int(data[domain_attr])
        edges = np.zeros((graph.number_of_edges(), 2), dtype=np.int64)
        latencies = np.zeros(graph.number_of_edges(), dtype=np.float64)
        for k, (u, v, data) in enumerate(graph.edges(data=True)):
            edges[k] = (index[u], index[v])
            if latency_attr not in data:
                raise TopologyError(f"edge ({u}, {v}) missing '{latency_attr}' attribute")
            latencies[k] = float(data[latency_attr])
        return cls(
            positions=positions,
            edges=edges,
            latencies=latencies,
            node_domain=domains if has_domain else None,
            name=name,
        )

    def to_networkx(self) -> nx.Graph:
        """Return an equivalent :class:`networkx.Graph` (cached)."""
        if self._graph_cache is None:
            g = nx.Graph(name=self.name)
            for i in range(self.num_nodes):
                attrs = {"pos": tuple(self.positions[i])}
                if self.node_domain is not None:
                    attrs["domain"] = int(self.node_domain[i])
                g.add_node(i, **attrs)
            for (u, v), lat in zip(self.edges, self.latencies):
                g.add_edge(int(u), int(v), latency=float(lat))
            self._graph_cache = g
        return self._graph_cache

    # ------------------------------------------------------------------ #
    # Structure queries
    # ------------------------------------------------------------------ #
    def adjacency_matrix(self) -> sp.csr_matrix:
        """Sparse symmetric adjacency matrix with latencies as weights."""
        n = self.num_nodes
        if self.num_edges == 0:
            return sp.csr_matrix((n, n))
        row = np.concatenate([self.edges[:, 0], self.edges[:, 1]])
        col = np.concatenate([self.edges[:, 1], self.edges[:, 0]])
        data = np.concatenate([self.latencies, self.latencies])
        return sp.csr_matrix((data, (row, col)), shape=(n, n))

    def is_connected(self) -> bool:
        """True iff every node can reach every other node."""
        if self.num_nodes == 1:
            return True
        n_comp, _ = connected_components(self.adjacency_matrix(), directed=False)
        return n_comp == 1

    def degree(self) -> np.ndarray:
        """Per-node degree counts."""
        deg = np.zeros(self.num_nodes, dtype=np.int64)
        if self.num_edges:
            np.add.at(deg, self.edges[:, 0], 1)
            np.add.at(deg, self.edges[:, 1], 1)
        return deg

    def domain_nodes(self, domain: int) -> np.ndarray:
        """Node indices that belong to AS / domain ``domain``."""
        if self.node_domain is None:
            if domain != 0:
                raise ValueError("topology has no domain labels; only domain 0 exists")
            return np.arange(self.num_nodes)
        return np.flatnonzero(self.node_domain == domain)

    # ------------------------------------------------------------------ #
    # Delay computation
    # ------------------------------------------------------------------ #
    def shortest_path_latencies(self) -> np.ndarray:
        """All-pairs one-way shortest-path latency matrix (milliseconds).

        Raises :class:`TopologyError` if the topology is disconnected, since a
        disconnected DVE substrate has no meaningful client-server delays.
        """
        dist = shortest_path(self.adjacency_matrix(), method="D", directed=False)
        if not np.isfinite(dist).all():
            raise TopologyError(
                f"topology '{self.name}' is disconnected; cannot compute all-pairs delays"
            )
        return dist

    def round_trip_delays(self, max_rtt_ms: Optional[float] = None) -> np.ndarray:
        """All-pairs round-trip delay matrix in milliseconds.

        RTT is twice the one-way shortest path latency.  If ``max_rtt_ms`` is
        given the whole matrix is linearly rescaled so the largest off-diagonal
        RTT equals ``max_rtt_ms`` — this mirrors the paper's setup where "the
        maximum round-trip delay between any two nodes is set to 500 ms".
        """
        rtt = 2.0 * self.shortest_path_latencies()
        if max_rtt_ms is not None:
            check_positive(max_rtt_ms, "max_rtt_ms")
            current_max = float(rtt.max())
            if current_max > 0:
                rtt = rtt * (max_rtt_ms / current_max)
        np.fill_diagonal(rtt, 0.0)
        return rtt

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #
    def with_name(self, name: str) -> "Topology":
        """Return a copy of this topology carrying a different name."""
        return Topology(
            positions=self.positions.copy(),
            edges=self.edges.copy(),
            latencies=self.latencies.copy(),
            node_domain=None if self.node_domain is None else self.node_domain.copy(),
            name=name,
        )

    def summary(self) -> Dict[str, float]:
        """Small dict of descriptive statistics (used by the CLI)."""
        deg = self.degree()
        return {
            "name": self.name,
            "nodes": self.num_nodes,
            "edges": self.num_edges,
            "domains": self.num_domains,
            "mean_degree": float(deg.mean()) if deg.size else 0.0,
            "max_degree": int(deg.max()) if deg.size else 0,
            "mean_latency_ms": float(self.latencies.mean()) if self.latencies.size else 0.0,
        }


def merge_topologies(
    parts: Iterable[Topology],
    cross_edges: Iterable[Tuple[int, int, float]],
    name: str = "merged",
) -> Topology:
    """Merge disjoint topologies into one, adding cross edges between them.

    ``cross_edges`` are given in *global* node indices of the concatenated
    topology (parts are concatenated in iteration order).  Used by the
    hierarchical generator to stitch per-AS router graphs together.
    """
    parts = list(parts)
    if not parts:
        raise TopologyError("merge_topologies needs at least one part")
    offsets = np.cumsum([0] + [p.num_nodes for p in parts[:-1]])
    positions = np.vstack([p.positions for p in parts])
    edges = []
    latencies = []
    domains = []
    for offset, part in zip(offsets, parts):
        if part.num_edges:
            edges.append(part.edges + offset)
            latencies.append(part.latencies)
        if part.node_domain is not None:
            domains.append(part.node_domain)
        else:
            domains.append(np.zeros(part.num_nodes, dtype=np.int64))
    cross = list(cross_edges)
    if cross:
        cross_arr = np.array([(u, v) for u, v, _ in cross], dtype=np.int64)
        cross_lat = np.array([lat for _, _, lat in cross], dtype=np.float64)
        edges.append(cross_arr)
        latencies.append(cross_lat)
    all_edges = np.vstack(edges) if edges else np.zeros((0, 2), dtype=np.int64)
    all_lat = np.concatenate(latencies) if latencies else np.zeros(0, dtype=np.float64)
    return Topology(
        positions=positions,
        edges=all_edges,
        latencies=all_lat,
        node_domain=np.concatenate(domains),
        name=name,
    )
