"""Waxman random-graph generator (router-level topology model).

The paper's BRITE configuration uses the Waxman model for the 25 router nodes
inside each AS domain.  In the Waxman model nodes are scattered uniformly in a
plane and each pair ``(u, v)`` is connected with probability

    P(u, v) = alpha * exp(-d(u, v) / (beta * L))

where ``d`` is the Euclidean distance and ``L`` the maximum possible distance
in the plane.  Because a raw Waxman sample may be disconnected (which would
make client-server delays undefined), the generator optionally augments the
sample with a minimum-latency spanning set of edges so the result is always
connected — the standard practice in topology generators, including BRITE.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.topology.graph import Topology
from repro.utils.rng import SeedLike, as_generator
from repro.utils.validation import check_positive, check_probability

__all__ = ["WaxmanParams", "waxman_topology"]


@dataclass(frozen=True)
class WaxmanParams:
    """Parameters of the Waxman model.

    ``alpha`` controls overall edge density, ``beta`` controls the relative
    preference for long edges (larger beta → more long-distance edges).  The
    defaults match BRITE's defaults (alpha=0.15, beta=0.2).
    """

    alpha: float = 0.15
    beta: float = 0.2
    plane_size: float = 100.0
    latency_per_unit: float = 1.0
    ensure_connected: bool = True

    def __post_init__(self) -> None:
        check_probability(self.alpha, "alpha")
        check_positive(self.beta, "beta")
        check_positive(self.plane_size, "plane_size")
        check_positive(self.latency_per_unit, "latency_per_unit")


def _pairwise_distances(positions: np.ndarray) -> np.ndarray:
    """Dense Euclidean distance matrix for a small set of planar points."""
    diff = positions[:, None, :] - positions[None, :, :]
    return np.sqrt((diff**2).sum(axis=-1))


def _connect_components(
    edges: list[tuple[int, int]],
    dist: np.ndarray,
    n: int,
) -> list[tuple[int, int]]:
    """Add minimum-distance edges between connected components until connected.

    A simple union-find over the current edge set; for the tiny per-AS graphs
    used here (tens of nodes) the quadratic candidate scan is negligible.
    """
    parent = np.arange(n)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for u, v in edges:
        union(u, v)

    extra: list[tuple[int, int]] = []
    while True:
        roots = np.array([find(i) for i in range(n)])
        unique_roots = np.unique(roots)
        if unique_roots.size <= 1:
            break
        # Connect the first component to its nearest node in any other component.
        comp_nodes = np.flatnonzero(roots == unique_roots[0])
        other_nodes = np.flatnonzero(roots != unique_roots[0])
        sub = dist[np.ix_(comp_nodes, other_nodes)]
        flat = int(np.argmin(sub))
        i, j = np.unravel_index(flat, sub.shape)
        u, v = int(comp_nodes[i]), int(other_nodes[j])
        extra.append((u, v))
        union(u, v)
    return extra


def waxman_topology(
    num_nodes: int,
    params: WaxmanParams | None = None,
    seed: SeedLike = None,
    name: str = "waxman",
) -> Topology:
    """Generate a Waxman random topology.

    Parameters
    ----------
    num_nodes:
        Number of router nodes.
    params:
        :class:`WaxmanParams`; defaults to BRITE-like defaults.
    seed:
        RNG seed / generator.
    name:
        Name attached to the resulting :class:`Topology`.

    Returns
    -------
    Topology
        A connected topology (when ``params.ensure_connected``), with edge
        latencies proportional to Euclidean distance.
    """
    if num_nodes < 1:
        raise ValueError(f"num_nodes must be >= 1, got {num_nodes}")
    params = params or WaxmanParams()
    rng = as_generator(seed)

    positions = rng.uniform(0.0, params.plane_size, size=(num_nodes, 2))
    if num_nodes == 1:
        return Topology(
            positions=positions,
            edges=np.zeros((0, 2), dtype=np.int64),
            latencies=np.zeros(0, dtype=np.float64),
            name=name,
        )

    dist = _pairwise_distances(positions)
    l_max = params.plane_size * np.sqrt(2.0)
    prob = params.alpha * np.exp(-dist / (params.beta * l_max))
    iu, ju = np.triu_indices(num_nodes, k=1)
    draws = rng.random(iu.size)
    keep = draws < prob[iu, ju]
    edge_list = list(zip(iu[keep].tolist(), ju[keep].tolist()))

    if params.ensure_connected:
        edge_list.extend(_connect_components(edge_list, dist, num_nodes))

    if edge_list:
        edges = np.array(edge_list, dtype=np.int64)
        latencies = dist[edges[:, 0], edges[:, 1]] * params.latency_per_unit
        # Guard against zero-length edges when two nodes land on the same point.
        latencies = np.maximum(latencies, 1e-3)
    else:
        edges = np.zeros((0, 2), dtype=np.int64)
        latencies = np.zeros(0, dtype=np.float64)

    return Topology(positions=positions, edges=edges, latencies=latencies, name=name)
