"""Vivaldi-style network coordinates fitted to a topology's RTT matrix.

Synthetic coordinate systems predict the round-trip delay between any two
nodes from O(n) state: every node gets a low-dimensional Euclidean position
plus a non-negative *height* (the height model absorbs the access-link cost
that violates the triangle inequality in real RTT data), and

``predicted_rtt(u, v) = ||x_u - x_v|| + h_u + h_v``   (0 when ``u == v``).

:func:`fit_network_coordinates` runs a deterministic, vectorised variant of
the Vivaldi spring relaxation against a full all-pairs RTT matrix: every
round moves each node along the sum of the spring forces exerted by *all*
other nodes (the classic algorithm samples neighbours; with the full matrix
in hand the exact gradient is cheaper than sampling well), with a decaying
step size so the embedding converges to a fixed point.  The fit is exact in
the sense that the same matrix and parameters always produce the same
coordinates — the internal RNG is seeded explicitly and never touches any
caller's stream.

The embedding is the state behind the ``"coords"`` delay backend
(:mod:`repro.topology.delay_backends`): O(n·dim) floats replace the O(n²)
RTT matrix, at the price of a bounded relative prediction error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "NetworkCoordinates",
    "fit_network_coordinates",
    "DEFAULT_COORDS_DIM",
]

#: Default embedding dimension (Vivaldi's accuracy plateaus around 5-7).
DEFAULT_COORDS_DIM = 6

#: Spring-relaxation schedule: enough rounds for the step size to anneal.
_FIT_ROUNDS = 48
#: Initial fraction of the residual each round corrects.
_INITIAL_STEP = 0.25
#: Multiplicative step decay per round.
_STEP_DECAY = 0.94
#: Row-chunk size for the force computation (bounds the (chunk, n, dim) temp).
_CHUNK = 256
#: Guard against division by zero for coincident positions.
_EPS = 1e-9


@dataclass(frozen=True)
class NetworkCoordinates:
    """A fitted height-model embedding of topology nodes.

    Attributes
    ----------
    positions:
        ``(num_nodes, dim)`` Euclidean coordinates (read-only).
    heights:
        ``(num_nodes,)`` non-negative access-link heights (read-only).
    fit_rmse_ms:
        Root-mean-square prediction error over all fitted pairs (ms).
    fit_median_relative_error:
        Median of ``|predicted - actual| / actual`` over off-diagonal pairs.
    """

    positions: np.ndarray
    heights: np.ndarray
    fit_rmse_ms: float
    fit_median_relative_error: float

    def __post_init__(self) -> None:
        positions = np.asarray(self.positions, dtype=np.float64)
        heights = np.asarray(self.heights, dtype=np.float64)
        if positions.ndim != 2:
            raise ValueError(f"positions must be 2-D, got shape {positions.shape}")
        if heights.shape != (positions.shape[0],):
            raise ValueError(
                f"heights must have shape ({positions.shape[0]},), got {heights.shape}"
            )
        if heights.size and (heights < 0).any():
            raise ValueError("heights must be non-negative")
        positions = positions.copy()
        heights = heights.copy()
        positions.flags.writeable = False
        heights.flags.writeable = False
        object.__setattr__(self, "positions", positions)
        object.__setattr__(self, "heights", heights)

    # ------------------------------------------------------------------ #
    @property
    def num_nodes(self) -> int:
        """Number of embedded nodes."""
        return int(self.positions.shape[0])

    @property
    def dim(self) -> int:
        """Embedding dimension (excluding the height component)."""
        return int(self.positions.shape[1])

    def predict_pairs(self, u_nodes: np.ndarray, v_nodes: np.ndarray) -> np.ndarray:
        """Predicted RTTs for broadcast pairs of node indices (ms).

        Pairs with ``u == v`` predict exactly zero, matching the RTT matrix's
        zero diagonal.
        """
        u_nodes = np.asarray(u_nodes, dtype=np.int64)
        v_nodes = np.asarray(v_nodes, dtype=np.int64)
        diff = self.positions[u_nodes] - self.positions[v_nodes]
        dist = np.sqrt(np.sum(diff * diff, axis=-1))
        predicted = dist + self.heights[u_nodes] + self.heights[v_nodes]
        return np.where(u_nodes == v_nodes, 0.0, predicted)

    def predict_matrix(self, u_nodes: np.ndarray, v_nodes: np.ndarray) -> np.ndarray:
        """Predicted ``(len(u), len(v))`` RTT matrix between two node sets (ms)."""
        u_nodes = np.asarray(u_nodes, dtype=np.int64)
        v_nodes = np.asarray(v_nodes, dtype=np.int64)
        pu = self.positions[u_nodes]
        pv = self.positions[v_nodes]
        # ||a - b||^2 = ||a||^2 + ||b||^2 - 2 a.b, clipped against round-off.
        sq = (
            np.sum(pu * pu, axis=1)[:, None]
            + np.sum(pv * pv, axis=1)[None, :]
            - 2.0 * (pu @ pv.T)
        )
        dist = np.sqrt(np.maximum(sq, 0.0))
        predicted = dist + self.heights[u_nodes][:, None] + self.heights[v_nodes][None, :]
        return np.where(u_nodes[:, None] == v_nodes[None, :], 0.0, predicted)


def _force_pass(
    rtt: np.ndarray, positions: np.ndarray, heights: np.ndarray, step: float
) -> tuple[np.ndarray, np.ndarray]:
    """One full-gradient spring round; returns the updated (positions, heights)."""
    n = rtt.shape[0]
    new_positions = positions.copy()
    new_heights = heights.copy()
    for start in range(0, n, _CHUNK):
        rows = slice(start, min(start + _CHUNK, n))
        diff = positions[rows, None, :] - positions[None, :, :]
        dist = np.sqrt(np.sum(diff * diff, axis=-1))
        predicted = dist + heights[rows, None] + heights[None, :]
        error = rtt[rows] - predicted  # positive → push apart / grow heights
        np.fill_diagonal(error[:, rows], 0.0)
        unit = diff / (dist + _EPS)[:, :, None]
        # Average force over neighbours keeps the step scale-free in n.
        new_positions[rows] += (step / n) * np.einsum("ij,ijk->ik", error, unit)
        new_heights[rows] += (step / n) * 0.5 * error.sum(axis=1)
    np.maximum(new_heights, 0.0, out=new_heights)
    return new_positions, new_heights


def fit_network_coordinates(
    rtt: np.ndarray,
    dim: int = DEFAULT_COORDS_DIM,
    num_rounds: int = _FIT_ROUNDS,
    seed: int = 0,
) -> NetworkCoordinates:
    """Fit a height-model embedding to a symmetric all-pairs RTT matrix.

    Parameters
    ----------
    rtt:
        ``(n, n)`` non-negative RTT matrix (ms) with a zero diagonal.
    dim:
        Embedding dimension.
    num_rounds:
        Spring-relaxation rounds (each visits every pair once).
    seed:
        Seed of the *internal* initialisation RNG.  The fit is deterministic
        in (rtt, dim, num_rounds, seed) and never consumes caller entropy.
    """
    rtt = np.asarray(rtt, dtype=np.float64)
    if rtt.ndim != 2 or rtt.shape[0] != rtt.shape[1]:
        raise ValueError(f"rtt must be a square matrix, got shape {rtt.shape}")
    if dim < 1:
        raise ValueError("dim must be >= 1")
    n = rtt.shape[0]
    if n == 0:
        return NetworkCoordinates(
            positions=np.zeros((0, dim)),
            heights=np.zeros(0),
            fit_rmse_ms=0.0,
            fit_median_relative_error=0.0,
        )

    rng = np.random.default_rng(seed)
    scale = float(rtt.max()) or 1.0
    positions = rng.normal(scale=0.1 * scale, size=(n, dim))
    # Start heights at half the per-node minimum off-diagonal RTT: the access
    # link is a lower bound on every path through the node.
    if n > 1:
        off = rtt + np.where(np.eye(n, dtype=bool), np.inf, 0.0)
        heights = 0.5 * off.min(axis=1)
        heights[~np.isfinite(heights)] = 0.0
    else:
        heights = np.zeros(n)

    step = _INITIAL_STEP
    for _ in range(num_rounds):
        positions, heights = _force_pass(rtt, positions, heights, step)
        step *= _STEP_DECAY

    coords = NetworkCoordinates(
        positions=positions,
        heights=heights,
        fit_rmse_ms=0.0,
        fit_median_relative_error=0.0,
    )
    predicted = coords.predict_matrix(np.arange(n), np.arange(n))
    error = predicted - rtt
    rmse = float(np.sqrt(np.mean(error * error)))
    mask = ~np.eye(n, dtype=bool)
    if mask.any() and (rtt[mask] > 0).any():
        positive = mask & (rtt > 0)
        med_rel = float(np.median(np.abs(error[positive]) / rtt[positive]))
    else:
        med_rel = 0.0
    object.__setattr__(coords, "fit_rmse_ms", rmse)
    object.__setattr__(coords, "fit_median_relative_error", med_rel)
    return coords
