"""Pluggable delay backends: dense, coordinate-predicted and sparse delays.

Every scenario used to materialise a dense ``num_clients × num_servers``
delay matrix, so memory grew O(k·m) and capped worlds at a few thousand
clients.  The key structural fact this module exploits is that clients live
*at topology nodes*: ``delay(c, s) = rtt[node(c), node(s)]``, so a
``(num_nodes, num_servers)`` node→server table plus the ``(num_clients,)``
node index of every client determines every client→server delay exactly —
O(nodes·m + clients) state instead of O(k·m).

Three backends share that representation:

``"dense"``
    The executable specification: the existing :class:`DelayModel` slices,
    bit-identical to the historical behaviour.  Scenarios built with this
    backend carry a real ndarray, exactly as before.
``"coords"``
    The node→server table is *predicted* from Vivaldi-style network
    coordinates (:mod:`repro.topology.coordinates`) fitted once per delay
    model: O(n·dim) floats replace the O(n²) RTT matrix for delay queries,
    at a bounded relative prediction error.
``"sparse"``
    Exact per-node delays, but each zone is restricted to its top-K nearby
    candidate servers (selected from the topology around the zone's anchor
    node).  Delays to non-candidate servers report a large finite sentinel
    (:data:`SPARSE_FILL_DELAY_MS`), so the restriction expresses itself
    purely through delay values and every solver works unchanged — the
    per-instance candidate state is O(zones·K).

Compact scenarios carry a :class:`CompactDelayMatrix` in place of the dense
ndarray: a virtual ``(k, m)`` matrix exposing vectorised row / pair gathers
and zone-aggregated fast paths, which is all the solvers' hot loops need.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.topology.coordinates import (
    DEFAULT_COORDS_DIM,
    NetworkCoordinates,
    fit_network_coordinates,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.topology.delays import DelayModel

# One process-wide lock guards every lazily-filled backend cache (candidate
# masks, sorted candidate sets, coordinate embeddings).  The fills are rare —
# once per instance / delay model — so a shared lock costs nothing, and the
# double-checked fast path never takes it after the first resolution.
_CACHE_FILL_LOCK = threading.Lock()

__all__ = [
    "DELAY_BACKENDS",
    "DEFAULT_DELAY_BACKEND",
    "DEFAULT_COORDS_DIM",
    "DEFAULT_SPARSE_TOP_K",
    "SPARSE_FILL_DELAY_MS",
    "CompactDelayMatrix",
    "DelayBackend",
    "DenseDelayBackend",
    "CoordsDelayBackend",
    "SparseDelayBackend",
    "make_delay_backend",
    "network_coordinates_for",
]

#: Names accepted by configs and the ``--delay-backend`` CLI flag.
DELAY_BACKENDS = ("dense", "coords", "sparse")
#: The executable-spec default.
DEFAULT_DELAY_BACKEND = "dense"
#: Default per-zone candidate-set size of the sparse backend.
DEFAULT_SPARSE_TOP_K = 8
#: Finite sentinel delay (ms) reported for non-candidate servers — far above
#: any realistic delay bound, so such pairings always count as QoS violations,
#: yet finite so every arithmetic path stays well-defined.
SPARSE_FILL_DELAY_MS = 1.0e9


def _read_only(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


def _candidates_from_anchors(
    node_server: np.ndarray, anchor_nodes: np.ndarray, top_k: int
) -> np.ndarray:
    """Per-zone K candidate servers as seen from the zone anchor nodes.

    Half the budget goes to the nearest servers; the other half is strided
    evenly across the remaining delay ranks, with the stride comb rotated by
    the zone index.  Pure top-K-nearest sets overlap heavily between zones
    anchored in the same region (and zones see near-identical delay rank
    orders), so under tight capacity the candidate *union* stays tiny and the
    solvers are forced onto non-candidate (sentinel-delay) servers, collapsing
    pQoS.  The rotated strided tails keep per-zone state at O(zones·K) while
    the union of real-delay fallbacks covers the whole fleet.
    """
    num_servers = node_server.shape[1]
    top_k = min(int(top_k), num_servers)
    anchor_delays = node_server[anchor_nodes]
    order = np.argsort(anchor_delays, axis=1, kind="stable")
    near = (top_k + 1) // 2
    if near >= top_k or top_k == num_servers:
        picks = order[:, :top_k]
    else:
        far = top_k - near
        step = (num_servers - near) // far  # >= 1 because far <= num_servers - near
        num_zones = order.shape[0]
        # (zones, far) rank comb: stride `step` keeps picks distinct per zone,
        # the zone-index phase makes consecutive zones cover different ranks.
        phases = (np.arange(num_zones) % step)[:, None]
        tail_ranks = near + np.arange(far)[None, :] * step + phases
        picks = np.concatenate(
            [order[:, :near], np.take_along_axis(order, tail_ranks, axis=1)], axis=1
        )
    return np.ascontiguousarray(picks, dtype=np.int64)


def zone_anchor_nodes(
    client_nodes: np.ndarray, client_zones: np.ndarray, num_zones: int, num_nodes: int
) -> np.ndarray:
    """Modal physical node of each zone's population (the zone "anchor").

    Ties break to the lowest node index; zones with no clients anchor at the
    globally most common client node (or node 0 for an empty population), so
    candidate sets stay well-defined for every zone.
    """
    client_nodes = np.asarray(client_nodes, dtype=np.int64)
    client_zones = np.asarray(client_zones, dtype=np.int64)
    counts = np.zeros((num_zones, num_nodes), dtype=np.int64)
    if client_nodes.size:
        flat = np.bincount(
            client_zones * num_nodes + client_nodes, minlength=num_zones * num_nodes
        )
        counts = flat.reshape(num_zones, num_nodes)
    anchors = counts.argmax(axis=1).astype(np.int64)
    empty = counts.sum(axis=1) == 0
    if empty.any():
        if client_nodes.size:
            global_mode = int(np.bincount(client_nodes, minlength=num_nodes).argmax())
        else:
            global_mode = 0
        anchors[empty] = global_mode
    return anchors


@dataclass(frozen=True)
class CompactDelayMatrix:
    """A virtual ``(num_clients, num_servers)`` delay matrix in O(n·m + k) state.

    Entries are ``node_server[client_nodes[c], s]``; with candidate
    restriction (sparse backend) entries for servers outside the client
    zone's candidate set are :attr:`fill_value` instead.  The matrix carries
    the generating :class:`DelayBackend` so scenario deltas can rebuild the
    node→server table on server churn without densifying.

    Attributes
    ----------
    backend:
        The generating backend (rebuilds ``node_server`` on server churn).
    server_nodes:
        ``(m,)`` topology node of each server.
    node_server:
        ``(num_nodes, m)`` node→server delay table (ms, read-only).
    client_nodes:
        ``(k,)`` topology node of each client.
    client_zones / zone_candidates / zone_anchors / fill_value:
        Candidate restriction of the sparse backend (`None` for coords):
        zone of each client, ``(num_zones, K)`` candidate server ids per
        zone, the zone anchor nodes the candidates were selected from, and
        the sentinel delay reported for non-candidate servers.
    """

    backend: "DelayBackend"
    server_nodes: np.ndarray
    node_server: np.ndarray
    client_nodes: np.ndarray
    client_zones: Optional[np.ndarray] = None
    zone_candidates: Optional[np.ndarray] = None
    zone_anchors: Optional[np.ndarray] = None
    fill_value: float = SPARSE_FILL_DELAY_MS
    _allowed_cache: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )
    _sorted_candidates_cache: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "server_nodes", np.asarray(self.server_nodes, dtype=np.int64)
        )
        object.__setattr__(
            self, "client_nodes", np.asarray(self.client_nodes, dtype=np.int64)
        )
        if self.node_server.ndim != 2:
            raise ValueError(
                f"node_server must be 2-D, got shape {self.node_server.shape}"
            )
        if self.server_nodes.shape != (self.node_server.shape[1],):
            raise ValueError("server_nodes must match node_server's column count")
        restriction = (self.client_zones is None, self.zone_candidates is None,
                       self.zone_anchors is None)
        if len(set(restriction)) != 1:
            raise ValueError(
                "client_zones, zone_candidates and zone_anchors must be given together"
            )
        if self.zone_candidates is not None:
            object.__setattr__(
                self, "client_zones", np.asarray(self.client_zones, dtype=np.int64)
            )
            object.__setattr__(
                self, "zone_candidates", np.asarray(self.zone_candidates, dtype=np.int64)
            )
            object.__setattr__(
                self, "zone_anchors", np.asarray(self.zone_anchors, dtype=np.int64)
            )
            if self.client_zones.shape != self.client_nodes.shape:
                raise ValueError("client_zones must match client_nodes in shape")
            if self.zone_candidates.ndim != 2:
                raise ValueError("zone_candidates must be (num_zones, K)")
            if self.zone_anchors.shape != (self.zone_candidates.shape[0],):
                raise ValueError("zone_anchors must have one entry per zone")

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> tuple[int, int]:
        """Virtual (num_clients, num_servers) shape."""
        return (int(self.client_nodes.shape[0]), int(self.node_server.shape[1]))

    @property
    def num_clients(self) -> int:
        """Number of clients (virtual rows)."""
        return self.shape[0]

    @property
    def num_servers(self) -> int:
        """Number of servers (virtual columns)."""
        return self.shape[1]

    @property
    def num_zones(self) -> int:
        """Zone count of the candidate restriction (0 when unrestricted)."""
        return 0 if self.zone_candidates is None else int(self.zone_candidates.shape[0])

    @property
    def nbytes(self) -> int:
        """Bytes held by this matrix's per-instance arrays.

        ``node_server`` is shared, backend-level state (one table per fleet
        snapshot, not per scenario), so it is counted once here but does not
        grow with the client count — the per-client cost is the index arrays.
        """
        total = self.server_nodes.nbytes + self.node_server.nbytes + self.client_nodes.nbytes
        if self.zone_candidates is not None:
            total += self.client_zones.nbytes + self.zone_candidates.nbytes
            total += self.zone_anchors.nbytes
        return total

    def candidate_mask(self) -> Optional[np.ndarray]:
        """The ``(num_zones, m)`` candidate mask, or ``None`` when unrestricted.

        Read-only and cached; the sparse backend's per-zone candidate sets as
        a boolean matrix.  The solvers use it to keep *fallback* placements
        delay-aware: a zone that cannot be placed within capacity should
        still land on a server its clients can actually reach, not on a
        sentinel-delay one.
        """
        if self.zone_candidates is None:
            return None
        return self._allowed()

    def _allowed(self) -> np.ndarray:
        """Cached ``(num_zones, m)`` candidate mask (sparse backend only).

        Double-checked against :data:`_CACHE_FILL_LOCK` so concurrent shard
        threads sharing an instance fill the cache at most once.
        """
        cached = self._allowed_cache
        if cached is None:
            with _CACHE_FILL_LOCK:
                cached = self._allowed_cache
                if cached is None:
                    num_zones, top_k = self.zone_candidates.shape
                    cached = np.zeros((num_zones, self.num_servers), dtype=bool)
                    rows = np.repeat(np.arange(num_zones), top_k)
                    cached[rows, self.zone_candidates.ravel()] = True
                    cached = _read_only(cached)
                    object.__setattr__(self, "_allowed_cache", cached)
        return cached

    def _sorted_candidates(self) -> np.ndarray:
        """Cached ``(num_zones, K)`` candidate sets, server ids ascending.

        Candidate rows are sets — their stored order (near-first, then the
        strided tail) carries no meaning — so a once-per-instance row sort
        gives every consumer index-sorted lists without a per-query sort.
        Thread-safe via the same double-checked lock as :meth:`_allowed`.
        """
        cached = self._sorted_candidates_cache
        if cached is None:
            with _CACHE_FILL_LOCK:
                cached = self._sorted_candidates_cache
                if cached is None:
                    cached = _read_only(np.sort(self.zone_candidates, axis=1))
                    object.__setattr__(self, "_sorted_candidates_cache", cached)
        return cached

    def candidate_rows(
        self, clients: np.ndarray
    ) -> Optional[tuple[np.ndarray, np.ndarray]]:
        """Per-client candidate servers and exact delays to them, or ``None``.

        ``clients`` is a 1-D index array.  Returns ``(servers, delays)`` of
        shape ``(len(clients), K)`` — the
        client zone's candidate set with server ids ascending per row, and
        the true (non-sentinel) delays ``delay(c, s)`` to each.  The delay
        values are bitwise the entries :meth:`rows` reports for those
        servers.  ``None`` when the matrix has no candidate restriction
        (coords backend): every server is then a genuine candidate.
        """
        if self.zone_candidates is None:
            return None
        clients = np.asarray(clients, dtype=np.int64)
        servers = self._sorted_candidates()[self.client_zones[clients]]
        delays = self.node_server[self.client_nodes[clients][:, None], servers]
        return servers, delays

    # ------------------------------------------------------------------ #
    # Gathers — the dense fancy-indexing idioms the solvers rely on.
    # ------------------------------------------------------------------ #
    def rows(self, clients: Union[int, np.ndarray]) -> np.ndarray:
        """Delay rows, mirroring ``dense[clients]`` (fresh, writable array)."""
        clients = np.asarray(clients, dtype=np.int64)
        out = self.node_server[self.client_nodes[clients]]
        if self.zone_candidates is not None:
            if out.base is not None or not out.flags.writeable:
                out = out.copy()
            # In-place masked fill: one pass over the gathered rows instead
            # of np.where's extra full-size output allocation.
            np.copyto(
                out,
                self.fill_value,
                where=np.logical_not(self._allowed()[self.client_zones[clients]]),
            )
        elif out.base is not None or not out.flags.writeable:
            out = out.copy()
        return out

    def pairs(
        self, clients: Union[int, np.ndarray], servers: Union[int, np.ndarray]
    ) -> np.ndarray:
        """Elementwise delays, mirroring ``dense[clients, servers]`` broadcasting."""
        clients = np.asarray(clients, dtype=np.int64)
        servers = np.asarray(servers, dtype=np.int64)
        out = self.node_server[self.client_nodes[clients], servers]
        if self.zone_candidates is not None:
            allowed = self._allowed()[self.client_zones[clients], servers]
            out = np.where(allowed, out, self.fill_value)
        return out

    def toarray(self) -> np.ndarray:
        """Materialise the full dense ``(k, m)`` matrix (small worlds only)."""
        return self.rows(np.arange(self.num_clients))

    # ------------------------------------------------------------------ #
    # Zone-aggregated fast paths — O(zones·nodes + nodes·m) instead of O(k·m).
    # ------------------------------------------------------------------ #
    def _zone_node_counts(self, client_zones: np.ndarray, num_zones: int) -> np.ndarray:
        """``(num_zones, num_nodes)`` count of clients per (zone, node) cell."""
        num_nodes = self.node_server.shape[0]
        if client_zones.size == 0:
            return np.zeros((num_zones, num_nodes), dtype=np.float64)
        flat = np.bincount(
            np.asarray(client_zones, dtype=np.int64) * num_nodes + self.client_nodes,
            minlength=num_zones * num_nodes,
        )
        return flat.reshape(num_zones, num_nodes).astype(np.float64)

    def zone_over_bound_counts(
        self, bound: float, client_zones: np.ndarray, num_zones: int
    ) -> np.ndarray:
        """Per-zone count of clients whose delay to each server exceeds ``bound``.

        Equivalent to scattering ``(delays > bound)`` per client into zones,
        but computed as a (zones × nodes) @ (nodes × servers) product — counts
        are integers, so the result is exact regardless of summation order.
        """
        counts = self._zone_node_counts(client_zones, num_zones)
        per_zone = counts @ (self.node_server > bound).astype(np.float64)
        if self.zone_candidates is not None:
            zone_pop = counts.sum(axis=1)
            per_zone = np.where(self._allowed(), per_zone, zone_pop[:, None])
        return per_zone

    def zone_direct_aggregates(
        self,
        bound: float,
        client_zones: np.ndarray,
        num_zones: int,
        server_self_delays: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-zone within-bound counts and excess-delay sums for zone moves.

        For every (zone, server) pair, aggregates the *direct* delays
        ``delay(c, s) + server_self_delays[s]`` of the zone's clients:
        the count of clients within ``bound`` and the summed excess
        ``max(direct - bound, 0)`` — the two matrices
        :func:`repro.core.local_search` needs to score wholesale zone moves
        without a dense ``(k, m)`` matrix.
        """
        counts = self._zone_node_counts(client_zones, num_zones)
        direct = self.node_server + np.asarray(server_self_delays, dtype=np.float64)[None, :]
        within = counts @ (direct <= bound).astype(np.float64)
        excess = counts @ np.maximum(direct - bound, 0.0)
        if self.zone_candidates is not None:
            allowed = self._allowed()
            zone_pop = counts.sum(axis=1)
            fill_direct = self.fill_value + np.asarray(server_self_delays, dtype=np.float64)
            fill_excess = np.maximum(fill_direct - bound, 0.0)
            within = np.where(allowed, within, 0.0)
            excess = np.where(allowed, excess, zone_pop[:, None] * fill_excess[None, :])
        return within, excess

    def zone_delay_sums(self, client_zones: np.ndarray, num_zones: int) -> np.ndarray:
        """Per-zone sum of client delays to each server (``(num_zones, m)``)."""
        counts = self._zone_node_counts(client_zones, num_zones)
        sums = counts @ self.node_server
        if self.zone_candidates is not None:
            zone_pop = counts.sum(axis=1)
            sums = np.where(self._allowed(), sums, zone_pop[:, None] * self.fill_value)
        return sums

    # ------------------------------------------------------------------ #
    # Scenario-delta transformations.
    # ------------------------------------------------------------------ #
    def with_clients(
        self, client_nodes: np.ndarray, client_zones: Optional[np.ndarray] = None
    ) -> "CompactDelayMatrix":
        """New matrix for a different client population (O(k), no regather).

        The node→server table and the candidate sets are shared by reference;
        only the per-client index arrays change.  Candidate sets are pinned
        at build time (they depend on zone anchors, not individual clients),
        which keeps churn epochs O(churn) and assignments stable.
        """
        if self.zone_candidates is not None and client_zones is None:
            raise ValueError("a candidate-restricted matrix needs the new client zones")
        return CompactDelayMatrix(
            backend=self.backend,
            server_nodes=self.server_nodes,
            node_server=self.node_server,
            client_nodes=client_nodes,
            client_zones=client_zones if self.zone_candidates is not None else None,
            zone_candidates=self.zone_candidates,
            zone_anchors=self.zone_anchors,
            fill_value=self.fill_value,
            _allowed_cache=self._allowed_cache,
            _sorted_candidates_cache=self._sorted_candidates_cache,
        )

    def with_servers(self, server_nodes: np.ndarray) -> "CompactDelayMatrix":
        """New matrix for a different fleet: rebuild the node→server table.

        O(nodes·m) — independent of the client count.  Candidate sets are
        re-selected from the stored zone anchors against the new fleet.
        """
        server_nodes = np.asarray(server_nodes, dtype=np.int64)
        node_server = self.backend.node_server_table(server_nodes)
        candidates = None
        if self.zone_candidates is not None:
            candidates = _candidates_from_anchors(
                node_server, self.zone_anchors, self.zone_candidates.shape[1]
            )
            # Re-cover guard: a server churn batch may have removed *every*
            # server a zone's old candidate set pointed at.  Re-selection from
            # the anchors must leave each zone at least one real-delay
            # (non-sentinel) candidate in the surviving fleet — otherwise the
            # 1e9 ms sentinel would silently win every assignment for that
            # zone.  This is structural (re-selection picks from the new
            # fleet), so a violation means the rebuild itself is broken.
            if candidates.size:
                if candidates.min() < 0 or candidates.max() >= node_server.shape[1]:
                    raise ValueError(
                        "candidate re-cover produced out-of-range server ids; "
                        "a zone would see only sentinel delays"
                    )
                anchor_delays = node_server[self.zone_anchors[:, None], candidates]
                if not (anchor_delays < self.fill_value).any(axis=1).all():
                    raise ValueError(
                        "candidate re-cover left a zone with sentinel-only "
                        "candidates after server churn"
                    )
        return CompactDelayMatrix(
            backend=self.backend,
            server_nodes=server_nodes,
            node_server=node_server,
            client_nodes=self.client_nodes,
            client_zones=self.client_zones,
            zone_candidates=candidates,
            zone_anchors=self.zone_anchors,
            fill_value=self.fill_value,
        )

    def with_node_server(self, node_server: np.ndarray) -> "CompactDelayMatrix":
        """New matrix with a substituted node→server table (overlay hook).

        Same fleet, clients and candidate sets — only the delay values
        change.  Scenario link-degradation overlays use this to scale the
        affected nodes' rows without touching the delay model or the
        candidate geometry; caches are carried since the candidate sets are
        unchanged.
        """
        node_server = np.asarray(node_server, dtype=np.float64)
        if node_server.shape != self.node_server.shape:
            raise ValueError(
                f"node_server must keep shape {self.node_server.shape}, "
                f"got {node_server.shape}"
            )
        return CompactDelayMatrix(
            backend=self.backend,
            server_nodes=self.server_nodes,
            node_server=_read_only(node_server),
            client_nodes=self.client_nodes,
            client_zones=self.client_zones,
            zone_candidates=self.zone_candidates,
            zone_anchors=self.zone_anchors,
            fill_value=self.fill_value,
            _allowed_cache=self._allowed_cache,
            _sorted_candidates_cache=self._sorted_candidates_cache,
        )


# ---------------------------------------------------------------------- #
# Backends
# ---------------------------------------------------------------------- #
class DelayBackend:
    """Strategy for producing a scenario's delay arrays from a delay model."""

    name: str = "abstract"

    def __init__(self, delay_model: "DelayModel") -> None:
        self.delay_model = delay_model

    def node_server_table(self, server_nodes: np.ndarray) -> np.ndarray:
        """``(num_nodes, m)`` node→server delay table (read-only)."""
        raise NotImplementedError

    def server_server_delays(self, server_nodes: np.ndarray) -> np.ndarray:
        """Inter-server mesh delays (zero diagonal)."""
        raise NotImplementedError

    def client_matrix(
        self,
        client_nodes: np.ndarray,
        client_zones: np.ndarray,
        num_zones: int,
        server_nodes: np.ndarray,
    ) -> Union[np.ndarray, CompactDelayMatrix]:
        """The scenario's client→server delay matrix (dense or compact)."""
        raise NotImplementedError


class DenseDelayBackend(DelayBackend):
    """The executable spec: historical dense matrices, bit-identical."""

    name = "dense"

    def node_server_table(self, server_nodes: np.ndarray) -> np.ndarray:
        return self.delay_model.client_server_delays(
            np.arange(self.delay_model.num_nodes), server_nodes
        )

    def server_server_delays(self, server_nodes: np.ndarray) -> np.ndarray:
        return self.delay_model.server_server_delays(server_nodes)

    def client_matrix(
        self,
        client_nodes: np.ndarray,
        client_zones: np.ndarray,
        num_zones: int,
        server_nodes: np.ndarray,
    ) -> np.ndarray:
        return self.delay_model.client_server_delays(client_nodes, server_nodes)


class CoordsDelayBackend(DelayBackend):
    """Vivaldi-coordinate predictions: O(n·dim) state, approximate delays."""

    name = "coords"

    def __init__(self, delay_model: "DelayModel", dim: int = DEFAULT_COORDS_DIM) -> None:
        super().__init__(delay_model)
        self.dim = int(dim)

    @property
    def coordinates(self) -> NetworkCoordinates:
        """The fitted embedding (cached on the delay model, shared per dim)."""
        return network_coordinates_for(self.delay_model, dim=self.dim)

    def node_server_table(self, server_nodes: np.ndarray) -> np.ndarray:
        coords = self.coordinates
        all_nodes = np.arange(coords.num_nodes)
        return _read_only(coords.predict_matrix(all_nodes, server_nodes))

    def server_server_delays(self, server_nodes: np.ndarray) -> np.ndarray:
        mesh = self.coordinates.predict_matrix(server_nodes, server_nodes)
        mesh *= self.delay_model.server_mesh_factor
        np.fill_diagonal(mesh, 0.0)
        return mesh

    def client_matrix(
        self,
        client_nodes: np.ndarray,
        client_zones: np.ndarray,
        num_zones: int,
        server_nodes: np.ndarray,
    ) -> CompactDelayMatrix:
        server_nodes = np.asarray(server_nodes, dtype=np.int64)
        return CompactDelayMatrix(
            backend=self,
            server_nodes=server_nodes,
            node_server=self.node_server_table(server_nodes),
            client_nodes=client_nodes,
        )


class SparseDelayBackend(DelayBackend):
    """Exact delays on per-zone top-K candidate servers, sentinel elsewhere."""

    name = "sparse"

    def __init__(
        self, delay_model: "DelayModel", top_k: int = DEFAULT_SPARSE_TOP_K
    ) -> None:
        super().__init__(delay_model)
        if top_k < 1:
            raise ValueError("top_k must be >= 1")
        self.top_k = int(top_k)

    def node_server_table(self, server_nodes: np.ndarray) -> np.ndarray:
        server_nodes = self.delay_model._check_nodes(server_nodes, "server_nodes")
        # Advanced indexing already yields a fresh array; just seal it.
        return _read_only(self.delay_model.rtt[:, server_nodes])

    def server_server_delays(self, server_nodes: np.ndarray) -> np.ndarray:
        return self.delay_model.server_server_delays(server_nodes)

    def client_matrix(
        self,
        client_nodes: np.ndarray,
        client_zones: np.ndarray,
        num_zones: int,
        server_nodes: np.ndarray,
    ) -> CompactDelayMatrix:
        server_nodes = np.asarray(server_nodes, dtype=np.int64)
        node_server = self.node_server_table(server_nodes)
        anchors = zone_anchor_nodes(
            client_nodes, client_zones, num_zones, self.delay_model.num_nodes
        )
        candidates = _candidates_from_anchors(node_server, anchors, self.top_k)
        return CompactDelayMatrix(
            backend=self,
            server_nodes=server_nodes,
            node_server=node_server,
            client_nodes=client_nodes,
            client_zones=client_zones,
            zone_candidates=candidates,
            zone_anchors=anchors,
        )


def make_delay_backend(
    name: str,
    delay_model: "DelayModel",
    coords_dim: int = DEFAULT_COORDS_DIM,
    sparse_top_k: int = DEFAULT_SPARSE_TOP_K,
) -> DelayBackend:
    """Instantiate a delay backend by name."""
    if name == "dense":
        return DenseDelayBackend(delay_model)
    if name == "coords":
        return CoordsDelayBackend(delay_model, dim=coords_dim)
    if name == "sparse":
        return SparseDelayBackend(delay_model, top_k=sparse_top_k)
    raise ValueError(f"unknown delay backend {name!r}; expected one of {DELAY_BACKENDS}")


def network_coordinates_for(
    delay_model: "DelayModel", dim: int = DEFAULT_COORDS_DIM
) -> NetworkCoordinates:
    """Fit (or reuse) the delay model's network-coordinate embedding.

    The fit is cached on the delay model keyed by dimension, so every
    scenario, federation shard and experiment replication sharing a delay
    model shares one embedding — and the fit's internal RNG never touches
    any scenario stream.  Double-checked locking makes concurrent first
    callers (thread-parallel shard stepping) agree on a single fit.
    """
    cache = getattr(delay_model, "_coords_cache", None)
    coords = None if cache is None else cache.get(dim)
    if coords is None:
        with _CACHE_FILL_LOCK:
            cache = getattr(delay_model, "_coords_cache", None)
            if cache is None:
                cache = {}
                delay_model._coords_cache = cache
            coords = cache.get(dim)
            if coords is None:
                coords = fit_network_coordinates(delay_model.rtt, dim=dim)
                cache[dim] = coords
    return coords
