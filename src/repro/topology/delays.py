"""Round-trip delay model derived from a topology.

The assignment algorithms never look at the graph itself; they only consume
three arrays:

* ``client_server`` — the round-trip delay between every client and every
  server (``num_clients × num_servers``),
* ``server_server`` — the round-trip delay over the well-provisioned
  inter-server mesh (``num_servers × num_servers``), and
* the delay bound ``D``.

:class:`DelayModel` computes the all-pairs node RTT matrix once (scaled so the
maximum RTT equals the paper's 500 ms), then slices it per placement.  The
inter-server mesh uses latencies discounted to 50 % of the underlying path
RTTs, exactly as in the paper ("we set the network latency between any two
geographically distributed servers to 50 % of the actual latency values
obtained from the topology generator").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.topology.graph import Topology
from repro.utils.shm import SharedArray
from repro.utils.validation import check_in_range, check_positive

__all__ = ["DelayModel", "DEFAULT_MAX_RTT_MS", "DEFAULT_SERVER_MESH_FACTOR"]

#: Paper default: maximum RTT between any two topology nodes (ms).
DEFAULT_MAX_RTT_MS = 500.0
#: Paper default: inter-server latencies are 50 % of the topology latencies.
DEFAULT_SERVER_MESH_FACTOR = 0.5


@dataclass
class DelayModel:
    """All-pairs round-trip delays for a topology, with a server-mesh discount.

    Parameters
    ----------
    topology:
        The underlying network topology.
    max_rtt_ms:
        The all-pairs RTT matrix is rescaled so its maximum equals this value.
    server_mesh_factor:
        Multiplier applied to RTTs between *servers* to model the
        well-provisioned inter-server connections (0.5 in the paper).
    """

    topology: Topology
    max_rtt_ms: float = DEFAULT_MAX_RTT_MS
    server_mesh_factor: float = DEFAULT_SERVER_MESH_FACTOR
    _rtt: Optional[np.ndarray] = field(default=None, repr=False, compare=False)
    _rtt_shared: Optional[SharedArray] = field(default=None, repr=False, compare=False)
    _rtt_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        check_positive(self.max_rtt_ms, "max_rtt_ms")
        check_in_range(self.server_mesh_factor, 0.0, 1.0, "server_mesh_factor")

    # ------------------------------------------------------------------ #
    @property
    def rtt(self) -> np.ndarray:
        """Cached all-pairs node round-trip delay matrix (milliseconds).

        Double-checked locking makes the lazy fill safe under thread
        fan-out: concurrent first readers compute at most once and every
        caller sees the same array object.
        """
        cached = self._rtt
        if cached is None:
            with self._rtt_lock:
                cached = self._rtt
                if cached is None:
                    cached = self.topology.round_trip_delays(max_rtt_ms=self.max_rtt_ms)
                    self._rtt = cached
        return cached

    # ------------------------------------------------------------------ #
    # Zero-copy process dispatch.  share_rtt() publishes the RTT matrix to a
    # POSIX shared-memory segment; while shared, pickling this model ships
    # the O(1) segment handle instead of the O(nodes²) matrix, and workers
    # rehydrate a read-only view of the same bits on unpickle.
    def share_rtt(self) -> SharedArray:
        """Publish the RTT matrix to shared memory (idempotent); return the handle."""
        rtt = self.rtt  # materialise outside the lock — the property takes it too
        with self._rtt_lock:
            if self._rtt_shared is None:
                self._rtt_shared = SharedArray(rtt)
            return self._rtt_shared

    def unshare_rtt(self) -> None:
        """Release the shared segment (no-op when not shared).

        Only call once every worker task that might attach has been drained;
        processes that already attached keep valid mappings.
        """
        with self._rtt_lock:
            shared, self._rtt_shared = self._rtt_shared, None
        if shared is not None:
            shared.release()

    def __getstate__(self):
        state = self.__dict__.copy()
        state.pop("_rtt_lock", None)
        if state.get("_rtt_shared") is not None:
            state["_rtt"] = None  # ship the O(1) handle, not the matrix
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.__dict__["_rtt_lock"] = threading.Lock()
        shared = self.__dict__.get("_rtt_shared")
        if shared is not None and self.__dict__.get("_rtt") is None:
            self.__dict__["_rtt"] = shared.as_array()

    @property
    def num_nodes(self) -> int:
        """Number of topology nodes."""
        return self.topology.num_nodes

    # ------------------------------------------------------------------ #
    def node_rtt(self, u: int, v: int) -> float:
        """RTT between two topology nodes in milliseconds."""
        return float(self.rtt[u, v])

    def client_server_delays(
        self, client_nodes: np.ndarray, server_nodes: np.ndarray, copy: bool = False
    ) -> np.ndarray:
        """Round-trip delays between clients and servers.

        Parameters
        ----------
        client_nodes:
            ``(num_clients,)`` topology node index of each client.
        server_nodes:
            ``(num_servers,)`` topology node index of each server.
        copy:
            By default the result is a fresh but *read-only* array (the
            advanced-indexing gather already allocates once; the historical
            unconditional ``.copy()`` briefly doubled the largest allocation
            in the rebuild path for no benefit).  Pass ``copy=True`` to get a
            writable matrix instead.

        Returns
        -------
        numpy.ndarray
            ``(num_clients, num_servers)`` matrix of RTTs in milliseconds.
        """
        client_nodes = self._check_nodes(client_nodes, "client_nodes")
        server_nodes = self._check_nodes(server_nodes, "server_nodes")
        delays = self.rtt[np.ix_(client_nodes, server_nodes)]
        if copy:
            return delays
        delays.flags.writeable = False
        return delays

    def server_server_delays(self, server_nodes: np.ndarray) -> np.ndarray:
        """Round-trip delays over the inter-server mesh (discounted).

        The diagonal is exactly zero: forwarding through "the same server"
        costs nothing, matching Definition 2.1's convention ``d(s_l, s_k) = 0``
        when the contact and target server coincide.
        """
        server_nodes = self._check_nodes(server_nodes, "server_nodes")
        mesh = self.rtt[np.ix_(server_nodes, server_nodes)] * self.server_mesh_factor
        np.fill_diagonal(mesh, 0.0)
        return mesh

    def eccentricity(self, nodes: Optional[np.ndarray] = None) -> np.ndarray:
        """Maximum RTT from each given node to any other node (diagnostics)."""
        if nodes is None:
            return self.rtt.max(axis=1)
        nodes = self._check_nodes(nodes, "nodes")
        return self.rtt[nodes].max(axis=1)

    # ------------------------------------------------------------------ #
    def _check_nodes(self, nodes: np.ndarray, name: str) -> np.ndarray:
        arr = np.asarray(nodes, dtype=np.int64)
        if arr.ndim != 1:
            raise ValueError(f"{name} must be a 1-D array of node indices, got shape {arr.shape}")
        if arr.size and (arr.min() < 0 or arr.max() >= self.num_nodes):
            raise ValueError(
                f"{name} contains node indices outside [0, {self.num_nodes - 1}]"
            )
        return arr
