"""Network topology substrate.

Provides the Internet-like graphs on which the DVE's servers and clients live:

* :mod:`repro.topology.graph` — the :class:`~repro.topology.graph.Topology`
  container and all-pairs delay computation.
* :mod:`repro.topology.waxman`, :mod:`repro.topology.barabasi_albert`,
  :mod:`repro.topology.hierarchical`, :mod:`repro.topology.brite` — BRITE-like
  synthetic topology generators (the paper's simulation substrate).
* :mod:`repro.topology.backbone` — a synthetic US continental backbone used in
  place of the proprietary AT&T dataset.
* :mod:`repro.topology.delays` — the round-trip delay model (500 ms max RTT,
  50 % discounted inter-server mesh).
* :mod:`repro.topology.coordinates` — Vivaldi-style network coordinates
  (O(n) synthetic-coordinate state predicting pairwise RTTs).
* :mod:`repro.topology.delay_backends` — pluggable dense / coords / sparse
  delay backends and the compact client×server delay representation.
* :mod:`repro.topology.placement` — server / client placement onto nodes.
"""

from repro.topology.backbone import BackboneParams, us_backbone_topology
from repro.topology.barabasi_albert import BarabasiAlbertParams, barabasi_albert_topology
from repro.topology.brite import BriteConfig, generate_topology, paper_default_topology
from repro.topology.coordinates import (
    DEFAULT_COORDS_DIM,
    NetworkCoordinates,
    fit_network_coordinates,
)
from repro.topology.delay_backends import (
    DEFAULT_DELAY_BACKEND,
    DEFAULT_SPARSE_TOP_K,
    DELAY_BACKENDS,
    SPARSE_FILL_DELAY_MS,
    CompactDelayMatrix,
    CoordsDelayBackend,
    DelayBackend,
    DenseDelayBackend,
    SparseDelayBackend,
    make_delay_backend,
    network_coordinates_for,
)
from repro.topology.delays import (
    DEFAULT_MAX_RTT_MS,
    DEFAULT_SERVER_MESH_FACTOR,
    DelayModel,
)
from repro.topology.graph import Topology, TopologyError, merge_topologies
from repro.topology.hierarchical import HierarchicalParams, hierarchical_topology
from repro.topology.placement import (
    ClusteredPlacementParams,
    place_clients_clustered,
    place_clients_uniform,
    place_servers,
)
from repro.topology.waxman import WaxmanParams, waxman_topology

__all__ = [
    "Topology",
    "TopologyError",
    "merge_topologies",
    "WaxmanParams",
    "waxman_topology",
    "BarabasiAlbertParams",
    "barabasi_albert_topology",
    "HierarchicalParams",
    "hierarchical_topology",
    "BriteConfig",
    "generate_topology",
    "paper_default_topology",
    "BackboneParams",
    "us_backbone_topology",
    "DelayModel",
    "DEFAULT_MAX_RTT_MS",
    "DEFAULT_SERVER_MESH_FACTOR",
    "NetworkCoordinates",
    "fit_network_coordinates",
    "DEFAULT_COORDS_DIM",
    "DELAY_BACKENDS",
    "DEFAULT_DELAY_BACKEND",
    "DEFAULT_SPARSE_TOP_K",
    "SPARSE_FILL_DELAY_MS",
    "CompactDelayMatrix",
    "DelayBackend",
    "DenseDelayBackend",
    "CoordsDelayBackend",
    "SparseDelayBackend",
    "make_delay_backend",
    "network_coordinates_for",
    "ClusteredPlacementParams",
    "place_servers",
    "place_clients_uniform",
    "place_clients_clustered",
]
