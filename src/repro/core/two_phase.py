"""Two-phase CAP algorithms: compositions of an IAP and an RAP heuristic.

Section 3.3 of the paper: "A two-phase algorithm for the CAP is obtained by
combining the algorithms for the IAP and the RAP.  Thus, in total we have four
different two-phase algorithms, namely RanZ-VirC, RanZ-GreC, GreZ-VirC and
GreZ-GreC."

:class:`TwoPhaseAlgorithm` glues one initial-phase solver to one refined-phase
solver; :data:`STANDARD_ALGORITHMS` holds the paper's four compositions plus
the dynamic-regret ablation variants, and :func:`solve_cap` is the convenience
entry point used by the experiment harness, the examples and the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.assignment import Assignment, ZoneAssignment
from repro.core.grec import assign_contacts_greedy
from repro.core.grez import assign_zones_greedy
from repro.core.problem import CAPInstance
from repro.core.ranz import assign_zones_random
from repro.core.virc import assign_contacts_virtual
from repro.utils.rng import SeedLike

__all__ = [
    "TwoPhaseAlgorithm",
    "STANDARD_ALGORITHMS",
    "PAPER_ALGORITHMS",
    "solve_cap",
    "available_algorithms",
]

IAPSolver = Callable[[CAPInstance, SeedLike, Optional[str]], ZoneAssignment]
RAPSolver = Callable[[CAPInstance, ZoneAssignment, Optional[str]], Assignment]


@dataclass(frozen=True)
class TwoPhaseAlgorithm:
    """A CAP algorithm composed of an initial-phase and a refined-phase solver.

    Attributes
    ----------
    name:
        Canonical lower-case name, e.g. ``"grez-grec"``.
    iap:
        Callable ``(instance, seed, solver_backend) -> ZoneAssignment``.
    rap:
        Callable ``(instance, zone_assignment, solver_backend) -> Assignment``.
    description:
        One-line human-readable description.
    """

    name: str
    iap: IAPSolver
    rap: RAPSolver
    description: str = ""

    def solve(
        self,
        instance: CAPInstance,
        seed: SeedLike = None,
        solver_backend: Optional[str] = None,
    ) -> Assignment:
        """Run both phases and return the complete assignment.

        ``solver_backend`` selects the max-regret placement backend
        (``"vectorized"`` / ``"loop"``; ``None`` uses the library default) —
        the backends are bit-identical, so this only affects speed.
        """
        zone_assignment = self.iap(instance, seed, solver_backend)
        assignment = self.rap(instance, zone_assignment, solver_backend)
        return assignment.with_algorithm(self.name)


# ---------------------------------------------------------------------- #
# Phase solver adapters (uniform signatures)
# ---------------------------------------------------------------------- #
def _ranz(
    instance: CAPInstance, seed: SeedLike, backend: Optional[str] = None  # noqa: ARG001
) -> ZoneAssignment:
    return assign_zones_random(instance, seed=seed)


def _grez(
    instance: CAPInstance, seed: SeedLike, backend: Optional[str] = None  # noqa: ARG001
) -> ZoneAssignment:
    return assign_zones_greedy(instance, backend=backend)


def _grez_dynamic(
    instance: CAPInstance, seed: SeedLike, backend: Optional[str] = None  # noqa: ARG001
) -> ZoneAssignment:
    return assign_zones_greedy(instance, recompute_regret=True, backend=backend)


def _virc(
    instance: CAPInstance, zones: ZoneAssignment, backend: Optional[str] = None  # noqa: ARG001
) -> Assignment:
    return assign_contacts_virtual(instance, zones)


def _grec(
    instance: CAPInstance, zones: ZoneAssignment, backend: Optional[str] = None
) -> Assignment:
    return assign_contacts_greedy(instance, zones, backend=backend)


def _grec_dynamic(
    instance: CAPInstance, zones: ZoneAssignment, backend: Optional[str] = None
) -> Assignment:
    return assign_contacts_greedy(instance, zones, recompute_regret=True, backend=backend)


#: The four two-phase algorithms evaluated in the paper.
PAPER_ALGORITHMS: Dict[str, TwoPhaseAlgorithm] = {
    "ranz-virc": TwoPhaseAlgorithm(
        "ranz-virc", _ranz, _virc, "random zones, contact = target"
    ),
    "ranz-grec": TwoPhaseAlgorithm(
        "ranz-grec", _ranz, _grec, "random zones, greedy contact selection"
    ),
    "grez-virc": TwoPhaseAlgorithm(
        "grez-virc", _grez, _virc, "greedy zones, contact = target"
    ),
    "grez-grec": TwoPhaseAlgorithm(
        "grez-grec", _grez, _grec, "greedy zones, greedy contact selection"
    ),
}

#: Paper algorithms plus the dynamic-regret ablation variants.
STANDARD_ALGORITHMS: Dict[str, TwoPhaseAlgorithm] = {
    **PAPER_ALGORITHMS,
    "grez-grec-dynamic": TwoPhaseAlgorithm(
        "grez-grec-dynamic",
        _grez_dynamic,
        _grec_dynamic,
        "greedy zones and contacts with regret recomputation after each placement",
    ),
}


def available_algorithms() -> list[str]:
    """Names of the registered two-phase heuristics."""
    return sorted(STANDARD_ALGORITHMS)


def solve_cap(
    instance: CAPInstance,
    algorithm: str = "grez-grec",
    seed: SeedLike = None,
    registry: Optional[Dict[str, TwoPhaseAlgorithm]] = None,
    solver_backend: Optional[str] = None,
) -> Assignment:
    """Solve a CAP instance with one of the registered two-phase heuristics.

    Parameters
    ----------
    instance:
        The problem instance.
    algorithm:
        Algorithm name (case-insensitive); one of :func:`available_algorithms`,
        e.g. ``"grez-grec"`` (the paper's best heuristic, the default).
    seed:
        RNG seed (only used by the RanZ-based algorithms).
    registry:
        Optional alternative algorithm registry (used by tests).
    solver_backend:
        Max-regret placement backend (``"vectorized"`` / ``"loop"``; ``None``
        uses the library default).  The backends are bit-identical.

    Returns
    -------
    Assignment
    """
    registry = STANDARD_ALGORITHMS if registry is None else registry
    key = algorithm.lower()
    if key not in registry:
        raise KeyError(
            f"unknown algorithm {algorithm!r}; available: {', '.join(sorted(registry))}"
        )
    return registry[key].solve(instance, seed=seed, solver_backend=solver_backend)
