"""GreZ — greedy (max-regret) assignment of zones to servers.

From Section 3.1 / Figure 2 of the paper: GreZ minimises the number of clients
without QoS by treating the IAP as a Generalized Assignment Problem and
applying a max-regret greedy heuristic.  For every zone ``z_j`` and server
``s_i`` the desirability is ``mu[i, j] = -C^I_ij`` (the negated count of
clients of ``z_j`` that would miss the delay bound on ``s_i``); zones are
processed in decreasing order of regret (the gap between their best and
second-best desirability) and each is given its most desirable server with
sufficient residual capacity.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.assignment import ZoneAssignment
from repro.core.costs import initial_cost_matrix
from repro.core.problem import CAPInstance
from repro.core.regret import max_regret_assign
from repro.utils.timing import Timer

__all__ = ["assign_zones_greedy", "zone_fallback_candidates"]


def zone_fallback_candidates(instance: CAPInstance) -> Optional[np.ndarray]:
    """``(num_servers, num_zones)`` candidate mask for the fallback, or ``None``.

    Only the sparse delay backend restricts each zone to a per-zone candidate
    server set; everywhere else (dense, coords) every server is a candidate
    and the mask is ``None`` — GreZ then places exactly as it always has.
    With the mask, the ``least_loaded`` emergency placement becomes
    *delay-aware*: a zone that fits nowhere is placed on the least-loaded
    server **its clients can actually reach** instead of on whichever server
    happens to have the most residual capacity — which, under the sparse
    backend, is frequently a sentinel-delay (1e9 ms) server that zeroes the
    zone's pQoS contribution.
    """
    source = instance.client_server_delays
    mask = getattr(source, "candidate_mask", None)
    if mask is None:
        return None
    allowed = mask()  # (num_zones, num_servers), read-only, cached
    return None if allowed is None else allowed.T


def assign_zones_greedy(
    instance: CAPInstance,
    recompute_regret: bool = False,
    backend: Optional[str] = None,
) -> ZoneAssignment:
    """Assign zones to servers with the max-regret greedy heuristic (GreZ).

    Parameters
    ----------
    instance:
        The CAP instance.
    recompute_regret:
        When True, regrets are recomputed after every placement (dynamic
        variant, used by the ablation experiment); the paper's pseudocode
        computes them once, which is the default.
    backend:
        Placement backend forwarded to
        :func:`~repro.core.regret.max_regret_assign` (``"vectorized"`` /
        ``"loop"``; ``None`` uses the library default).  The backends produce
        bit-identical assignments.

    Returns
    -------
    ZoneAssignment
        The zone → server map; ``capacity_exceeded`` is set if some zone had
        to be placed on a server without sufficient residual capacity.
    """
    with Timer() as timer:
        desirability = -initial_cost_matrix(instance)  # (m, n)
        result = max_regret_assign(
            desirability=desirability,
            demands=instance.zone_demands(),
            capacities=instance.server_capacities,
            fallback="least_loaded",
            recompute=recompute_regret,
            backend=backend,
            fallback_allowed=zone_fallback_candidates(instance),
        )
    return ZoneAssignment(
        zone_to_server=result.item_to_server,
        algorithm="grez" if not recompute_regret else "grez-dynamic",
        capacity_exceeded=result.capacity_exceeded,
        runtime_seconds=timer.elapsed,
    )
