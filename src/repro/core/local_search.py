"""Local-search refinement of CAP solutions (extension beyond the paper).

The paper stops at the one-pass greedy heuristics and notes that better
solutions are possible when time allows.  This module implements the natural
next step: a capacity-respecting hill-climbing pass over a complete
:class:`~repro.core.assignment.Assignment` that repeatedly applies the best
improving move until no move improves the objective (or an iteration budget is
exhausted).  Two move types are considered:

* **zone move** — re-host one zone on a different server (changing the target
  server of all its clients, whose contact servers are then re-derived with
  the GreC rule for the affected clients);
* **contact move** — switch one client's contact server.

The objective mirrors the paper's: primarily maximise the number of clients
with QoS, secondarily minimise the total excess delay of the clients without
QoS (so progress is visible even when a single move cannot flip a client
across the bound).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.assignment import Assignment, server_loads
from repro.core.costs import delays_to_targets
from repro.core.problem import CAPInstance
from repro.utils.timing import Timer

__all__ = ["LocalSearchResult", "refine_assignment"]


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of a local-search refinement pass.

    Attributes
    ----------
    assignment:
        The refined assignment (algorithm name suffixed with ``+ls``).
    iterations:
        Number of improving moves applied.
    initial_pqos / final_pqos:
        Objective before and after refinement.
    runtime_seconds:
        Wall-clock time of the search.
    """

    assignment: Assignment
    iterations: int
    initial_pqos: float
    final_pqos: float
    runtime_seconds: float


def _objective(instance: CAPInstance, delays: np.ndarray) -> tuple[int, float]:
    """(number of clients with QoS, negative total excess delay) — larger is better."""
    within = delays <= instance.delay_bound
    excess = np.maximum(delays - instance.delay_bound, 0.0).sum()
    return int(within.sum()), -float(excess)


def refine_assignment(
    instance: CAPInstance,
    assignment: Assignment,
    max_iterations: int = 200,
    consider_zone_moves: bool = True,
    consider_contact_moves: bool = True,
) -> LocalSearchResult:
    """Hill-climb an assignment with zone-move and contact-move neighbourhoods.

    The search is greedy (best improving move each round), respects server
    capacities at every step and never worsens the objective; the returned
    assignment is therefore at least as good as the input.

    Parameters
    ----------
    instance:
        The problem instance (true delays).
    assignment:
        A complete, capacity-feasible starting solution.
    max_iterations:
        Upper bound on the number of applied moves.
    consider_zone_moves / consider_contact_moves:
        Restrict the neighbourhood (used by the ablation study to attribute
        improvements to one move type).
    """
    zone_to_server = assignment.zone_to_server.copy()
    contacts = assignment.contact_of_client.copy()
    capacities = instance.server_capacities
    initial_pqos = assignment.pqos(instance)

    with Timer() as timer:
        iterations = 0
        for _ in range(max_iterations):
            delays = delays_to_targets(instance, zone_to_server, contacts)
            current = _objective(instance, delays)
            loads = server_loads(instance, zone_to_server, contacts)
            best_gain: tuple[int, float] | None = None
            best_apply = None

            # ---------------- zone moves ---------------- #
            if consider_zone_moves:
                zone_demands = instance.zone_demands()
                for zone in range(instance.num_zones):
                    members = instance.clients_of_zone(zone)
                    if members.size == 0:
                        continue
                    old_server = int(zone_to_server[zone])
                    for server in range(instance.num_servers):
                        if server == old_server:
                            continue
                        if loads[server] + zone_demands[zone] > capacities[server] + 1e-9:
                            continue
                        trial_zone = zone_to_server.copy()
                        trial_zone[zone] = server
                        trial_contacts = contacts.copy()
                        # Clients of the moved zone reconnect directly to the new
                        # host (the GreC base case); forwarded clients elsewhere
                        # are unaffected because their targets did not change.
                        trial_contacts[members] = server
                        trial_loads = server_loads(instance, trial_zone, trial_contacts)
                        if (trial_loads > capacities + 1e-9).any():
                            continue
                        trial_delays = delays_to_targets(instance, trial_zone, trial_contacts)
                        candidate = _objective(instance, trial_delays)
                        if candidate > current and (best_gain is None or candidate > best_gain):
                            best_gain = candidate
                            best_apply = ("zone", zone, server, trial_contacts)

            # ---------------- contact moves ---------------- #
            if consider_contact_moves:
                targets = zone_to_server[instance.client_zones]
                delays_now = delays_to_targets(instance, zone_to_server, contacts)
                # Only clients currently missing the bound can gain from a move.
                for client in np.flatnonzero(delays_now > instance.delay_bound):
                    client = int(client)
                    target = int(targets[client])
                    options = (
                        instance.client_server_delays[client]
                        + instance.server_server_delays[:, target]
                    )
                    for server in np.argsort(options, kind="stable"):
                        server = int(server)
                        if server == int(contacts[client]):
                            continue
                        extra = 0.0 if server == target else 2.0 * instance.client_demands[client]
                        released = (
                            0.0
                            if int(contacts[client]) == target
                            else 2.0 * instance.client_demands[client]
                        )
                        new_load = loads[server] + extra
                        if server != int(contacts[client]) and new_load > capacities[server] + 1e-9:
                            continue
                        trial_contacts = contacts.copy()
                        trial_contacts[client] = server
                        trial_delays = delays_now.copy()
                        trial_delays[client] = options[server]
                        candidate = _objective(instance, trial_delays)
                        if candidate > current and (best_gain is None or candidate > best_gain):
                            best_gain = candidate
                            best_apply = ("contact", client, server, trial_contacts)
                        del released
                        break  # only the best option per client needs checking

            if best_apply is None:
                break
            kind, index, server, new_contacts = best_apply
            if kind == "zone":
                zone_to_server[index] = server
            contacts = new_contacts
            iterations += 1

    refined = Assignment(
        zone_to_server=zone_to_server,
        contact_of_client=contacts,
        algorithm=f"{assignment.algorithm}+ls",
        capacity_exceeded=assignment.capacity_exceeded,
        runtime_seconds=assignment.runtime_seconds + timer.elapsed,
        metadata={**assignment.metadata, "local_search_iterations": iterations},
    )
    return LocalSearchResult(
        assignment=refined,
        iterations=iterations,
        initial_pqos=initial_pqos,
        final_pqos=refined.pqos(instance),
        runtime_seconds=timer.elapsed,
    )
