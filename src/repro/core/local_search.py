"""Local-search refinement of CAP solutions (extension beyond the paper).

The paper stops at the one-pass greedy heuristics and notes that better
solutions are possible when time allows.  This module implements the natural
next step: a capacity-respecting hill-climbing pass over a complete
:class:`~repro.core.assignment.Assignment` that repeatedly applies the best
improving move until no move improves the objective (or an iteration budget is
exhausted).  Two move types are considered:

* **zone move** — re-host one zone on a different server (changing the target
  server of all its clients, whose contact servers are then re-derived with
  the GreC rule for the affected clients);
* **contact move** — switch one client's contact server.

The objective mirrors the paper's: primarily maximise the number of clients
with QoS, secondarily minimise the total excess delay of the clients without
QoS (so progress is visible even when a single move cannot flip a client
across the bound).

Two interchangeable implementations are provided.  The ``"vectorized"``
backend (default) evaluates the whole zone-move neighbourhood with NumPy
delta-cost matrices — one ``(zones, servers)`` objective matrix and one
feasibility matrix per sweep — and the contact-move neighbourhood with one
``(over-bound clients, servers)`` matrix, so a full improvement sweep is a
handful of array operations.  The ``"loop"`` backend is the original nested
Python scan, kept as the executable specification of the move-acceptance
semantics; the test suite checks the two agree on small instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.core.assignment import Assignment, server_loads
from repro.core.costs import delays_to_targets
from repro.core.measures import attach_measures, measured_pqos
from repro.core.problem import CAPInstance
from repro.utils.timing import Timer

__all__ = ["LocalSearchResult", "refine_assignment", "warm_start_refine"]

#: Capacity slack used by every feasibility check (matches the heuristics).
_CAP_EPS = 1e-9


@dataclass(frozen=True)
class LocalSearchResult:
    """Outcome of a local-search refinement pass.

    Attributes
    ----------
    assignment:
        The refined assignment (algorithm name suffixed with ``+ls``).
    iterations:
        Number of improving moves applied.
    initial_pqos / final_pqos:
        Objective before and after refinement.
    runtime_seconds:
        Wall-clock time of the search.
    """

    assignment: Assignment
    iterations: int
    initial_pqos: float
    final_pqos: float
    runtime_seconds: float


def _objective(instance: CAPInstance, delays: np.ndarray) -> tuple[int, float]:
    """(number of clients with QoS, negative total excess delay) — larger is better."""
    within = delays <= instance.delay_bound
    excess = np.maximum(delays - instance.delay_bound, 0.0).sum()
    return int(within.sum()), -float(excess)


# --------------------------------------------------------------------------- #
# Loop backend — the executable specification of the move semantics.
# --------------------------------------------------------------------------- #
def _refine_loop(
    instance: CAPInstance,
    zone_to_server: np.ndarray,
    contacts: np.ndarray,
    max_iterations: int,
    consider_zone_moves: bool,
    consider_contact_moves: bool,
) -> int:
    """Original nested-scan hill climber; mutates the arrays in place."""
    capacities = instance.server_capacities
    iterations = 0
    for _ in range(max_iterations):
        delays = delays_to_targets(instance, zone_to_server, contacts)
        current = _objective(instance, delays)
        loads = server_loads(instance, zone_to_server, contacts)
        best_gain: tuple[int, float] | None = None
        best_apply = None

        # ---------------- zone moves ---------------- #
        if consider_zone_moves:
            zone_demands = instance.zone_demands()
            for zone in range(instance.num_zones):
                members = instance.clients_of_zone(zone)
                if members.size == 0:
                    continue
                old_server = int(zone_to_server[zone])
                for server in range(instance.num_servers):
                    if server == old_server:
                        continue
                    if loads[server] + zone_demands[zone] > capacities[server] + _CAP_EPS:
                        continue
                    trial_zone = zone_to_server.copy()
                    trial_zone[zone] = server
                    trial_contacts = contacts.copy()
                    # Clients of the moved zone reconnect directly to the new
                    # host (the GreC base case); forwarded clients elsewhere
                    # are unaffected because their targets did not change.
                    trial_contacts[members] = server
                    trial_loads = server_loads(instance, trial_zone, trial_contacts)
                    if (trial_loads > capacities + _CAP_EPS).any():
                        continue
                    trial_delays = delays_to_targets(instance, trial_zone, trial_contacts)
                    candidate = _objective(instance, trial_delays)
                    if candidate > current and (best_gain is None or candidate > best_gain):
                        best_gain = candidate
                        best_apply = ("zone", zone, server, trial_contacts)

        # ---------------- contact moves ---------------- #
        if consider_contact_moves:
            targets = zone_to_server[instance.client_zones]
            delays_now = delays_to_targets(instance, zone_to_server, contacts)
            # Only clients currently missing the bound can gain from a move.
            for client in np.flatnonzero(delays_now > instance.delay_bound):
                client = int(client)
                target = int(targets[client])
                options = (
                    instance.delay_rows(client)
                    + instance.server_server_delays[:, target]
                )
                for server in np.argsort(options, kind="stable"):
                    server = int(server)
                    if server == int(contacts[client]):
                        continue
                    extra = 0.0 if server == target else 2.0 * instance.client_demands[client]
                    new_load = loads[server] + extra
                    if server != int(contacts[client]) and new_load > capacities[server] + _CAP_EPS:
                        continue
                    trial_contacts = contacts.copy()
                    trial_contacts[client] = server
                    trial_delays = delays_now.copy()
                    trial_delays[client] = options[server]
                    candidate = _objective(instance, trial_delays)
                    if candidate > current and (best_gain is None or candidate > best_gain):
                        best_gain = candidate
                        best_apply = ("contact", client, server, trial_contacts)
                    break  # only the best option per client needs checking

        if best_apply is None:
            break
        kind, index, server, new_contacts = best_apply
        if kind == "zone":
            zone_to_server[index] = server
        contacts[:] = new_contacts
        iterations += 1
    return iterations


# --------------------------------------------------------------------------- #
# Vectorized backend — delta-cost matrices instead of nested scans.
# --------------------------------------------------------------------------- #
def _zone_move_aggregates(
    instance: CAPInstance,
) -> Tuple[Optional[np.ndarray], np.ndarray, np.ndarray, np.ndarray]:
    """Loop-invariant per-(zone, server) aggregates of the post-move delays.

    ``direct[c, s]`` is client ``c``'s delay when connected directly to host
    ``s`` (the self-delay diagonal term is normally zero but kept for exact
    parity with the loop backend); ``within_matrix`` / ``excess_matrix``
    aggregate it per zone, and ``zone_sizes`` counts members.  Shared by
    every zone-move neighbourhood scanner.

    Compact delay sources never build the (k, m) ``direct`` matrix: the zone
    aggregates come from the node-space fast path and ``direct`` is ``None``
    — the one consumer that indexes it (:func:`_repair_zones_sweep`) falls
    back to per-move pair gathers then.
    """
    num_zones, num_servers = instance.num_zones, instance.num_servers
    zones_of = instance.client_zones
    bound = instance.delay_bound
    zone_sizes = np.bincount(zones_of, minlength=num_zones)
    if not instance.has_dense_delays:
        within_matrix, excess_matrix = instance.client_server_delays.zone_direct_aggregates(
            bound, zones_of, num_zones, np.diag(instance.server_server_delays)
        )
        return None, within_matrix, excess_matrix, zone_sizes
    direct = instance.client_server_delays + np.diag(instance.server_server_delays)[None, :]
    within_matrix = np.zeros((num_zones, num_servers), dtype=np.float64)
    excess_matrix = np.zeros_like(within_matrix)
    if instance.num_clients:
        np.add.at(within_matrix, zones_of, (direct <= bound).astype(float))
        np.add.at(excess_matrix, zones_of, np.maximum(direct - bound, 0.0))
    return direct, within_matrix, excess_matrix, zone_sizes


def _best_zone_move(
    instance: CAPInstance,
    zone_to_server: np.ndarray,
    contacts: np.ndarray,
    loads: np.ndarray,
    within: np.ndarray,
    excess_vec: np.ndarray,
    qos_count: int,
    excess_total: float,
    within_matrix: np.ndarray,
    excess_matrix: np.ndarray,
    zone_sizes: np.ndarray,
) -> Optional[Tuple[int, float, int, int]]:
    """Best improving zone move as ``(qos, excess, zone, server)``, or None.

    Mirrors the loop scan exactly: a move is improving when its objective
    strictly beats the current one, and ties between improving moves resolve
    to the first in (zone-major, server-minor) order because later candidates
    must *strictly* beat the incumbent.
    """
    num_zones, num_servers = instance.num_zones, instance.num_servers
    if num_zones == 0 or num_servers == 0:
        return None
    zones_of = instance.client_zones
    capacities = instance.server_capacities
    zone_demands = instance.zone_demands()
    old_servers = zone_to_server

    # Objective after moving zone j to server s, via per-zone deltas:
    # members reconnect directly, everyone else's delay is unchanged.
    within_current = np.bincount(zones_of, weights=within.astype(np.float64), minlength=num_zones)
    excess_current = np.bincount(zones_of, weights=excess_vec, minlength=num_zones)
    qos_after = qos_count - within_current[:, None] + within_matrix
    excess_after = excess_total - excess_current[:, None] + excess_matrix

    # Load after the move: the zone's demand migrates from its old host to s
    # and the forwarding overhead of its currently-forwarded members vanishes
    # (they reconnect directly to the new host).
    targets = old_servers[zones_of]
    forwarded = contacts != targets
    forwarding_released = np.zeros((num_zones, num_servers), dtype=np.float64)
    if forwarded.any():
        np.add.at(
            forwarding_released,
            (zones_of[forwarded], contacts[forwarded]),
            2.0 * instance.client_demands[forwarded],
        )
    trial_base = loads[None, :] - forwarding_released
    trial_base[np.arange(num_zones), old_servers] -= zone_demands

    # Full feasibility: every server must end within capacity.  Servers other
    # than the destination only ever lose load, but a pre-existing overload
    # elsewhere still vetoes the move (as in the loop's trial check).
    over_matrix = trial_base > capacities[None, :] + _CAP_EPS
    over_elsewhere = over_matrix.sum(axis=1)[:, None] - over_matrix
    feasible = over_elsewhere == 0
    feasible &= trial_base + zone_demands[:, None] <= capacities[None, :] + _CAP_EPS
    # The loop's cheap pre-check uses the *unreduced* loads; keep it so the
    # accepted move set is identical.
    feasible &= loads[None, :] + zone_demands[:, None] <= capacities[None, :] + _CAP_EPS
    feasible[np.arange(num_zones), old_servers] = False
    feasible[zone_sizes == 0, :] = False

    improving = feasible & (
        (qos_after > qos_count) | ((qos_after == qos_count) & (excess_after < excess_total))
    )
    if not improving.any():
        return None
    qos_masked = np.where(improving, qos_after, -np.inf)
    best_qos = qos_masked.max()
    excess_masked = np.where(improving & (qos_after == best_qos), excess_after, np.inf)
    best_excess = excess_masked.min()
    flat = int(np.flatnonzero((qos_masked == best_qos) & (excess_masked == best_excess))[0])
    zone, server = divmod(flat, num_servers)
    return int(best_qos), float(best_excess), int(zone), int(server)


def _best_contact_move(
    instance: CAPInstance,
    zone_to_server: np.ndarray,
    contacts: np.ndarray,
    loads: np.ndarray,
    delays: np.ndarray,
    excess_vec: np.ndarray,
    qos_count: int,
    excess_total: float,
    incumbent: Optional[Tuple[int, float]],
) -> Optional[Tuple[int, float, int, int]]:
    """Best improving contact move as ``(qos, excess, client, server)``, or None.

    Per the loop semantics each over-bound client contributes exactly one
    candidate — its delay-wise best feasible server other than its current
    contact — and a candidate must strictly beat both the current objective
    and the incumbent (the best zone move, then earlier clients).
    """
    over_clients = np.flatnonzero(delays > instance.delay_bound)
    if over_clients.size == 0:
        return None
    num_servers = instance.num_servers
    capacities = instance.server_capacities
    targets = zone_to_server[instance.client_zones][over_clients]
    demands = instance.client_demands[over_clients]
    rows = np.arange(over_clients.size)

    # options[c, s] = d(c, s) + d(s, target_c); forwarding costs 2·RT(c) at s
    # unless s already is the target.
    options = instance.delay_rows(over_clients) + instance.server_server_delays.T[targets]
    extra = 2.0 * demands[:, None] * (np.arange(num_servers)[None, :] != targets[:, None])
    feasible = loads[None, :] + extra <= capacities[None, :] + _CAP_EPS
    feasible[rows, contacts[over_clients]] = False  # staying put is not a move

    order = np.argsort(options, axis=1, kind="stable")
    feasible_sorted = np.take_along_axis(feasible, order, axis=1)
    has_candidate = feasible_sorted.any(axis=1)
    first = feasible_sorted.argmax(axis=1)
    chosen = order[rows, first]
    new_delay = options[rows, chosen]

    qos_after = qos_count + (new_delay <= instance.delay_bound)
    excess_after = (
        excess_total
        - excess_vec[over_clients]
        + np.maximum(new_delay - instance.delay_bound, 0.0)
    )
    valid = has_candidate & (
        (qos_after > qos_count) | ((qos_after == qos_count) & (excess_after < excess_total))
    )
    if incumbent is not None:
        inc_qos, inc_excess = incumbent
        valid &= (qos_after > inc_qos) | ((qos_after == inc_qos) & (excess_after < inc_excess))
    if not valid.any():
        return None
    qos_masked = np.where(valid, qos_after, -np.inf)
    best_qos = qos_masked.max()
    excess_masked = np.where(valid & (qos_after == best_qos), excess_after, np.inf)
    best_excess = excess_masked.min()
    row = int(np.flatnonzero((qos_masked == best_qos) & (excess_masked == best_excess))[0])
    return int(best_qos), float(best_excess), int(over_clients[row]), int(chosen[row])


def _refine_vectorized(
    instance: CAPInstance,
    zone_to_server: np.ndarray,
    contacts: np.ndarray,
    max_iterations: int,
    consider_zone_moves: bool,
    consider_contact_moves: bool,
) -> int:
    """Delta-cost-matrix hill climber; mutates the arrays in place."""
    zones_of = instance.client_zones
    bound = instance.delay_bound
    # Members of a moved zone always connect directly to the new host.
    _, within_matrix, excess_matrix, zone_sizes = _zone_move_aggregates(instance)

    iterations = 0
    for _ in range(max_iterations):
        delays = delays_to_targets(instance, zone_to_server, contacts)
        within = delays <= bound
        excess_vec = np.maximum(delays - bound, 0.0)
        qos_count = int(within.sum())
        excess_total = float(excess_vec.sum())
        loads = server_loads(instance, zone_to_server, contacts)

        best = None  # (qos, excess, kind, index, server)
        if consider_zone_moves:
            move = _best_zone_move(
                instance,
                zone_to_server,
                contacts,
                loads,
                within,
                excess_vec,
                qos_count,
                excess_total,
                within_matrix,
                excess_matrix,
                zone_sizes,
            )
            if move is not None:
                best = (move[0], move[1], "zone", move[2], move[3])
        if consider_contact_moves:
            move = _best_contact_move(
                instance,
                zone_to_server,
                contacts,
                loads,
                delays,
                excess_vec,
                qos_count,
                excess_total,
                incumbent=None if best is None else (best[0], best[1]),
            )
            if move is not None:
                best = (move[0], move[1], "contact", move[2], move[3])

        if best is None:
            break
        _, _, kind, index, server = best
        if kind == "zone":
            zone_to_server[index] = server
            contacts[zones_of == index] = server
        else:
            contacts[index] = server
        iterations += 1
    return iterations


# --------------------------------------------------------------------------- #
# Incremental backend — warm-start refinement with maintained accumulators.
# --------------------------------------------------------------------------- #
def _refine_incremental(
    instance: CAPInstance,
    zone_to_server: np.ndarray,
    contacts: np.ndarray,
    max_iterations: int,
    consider_zone_moves: bool,
    consider_contact_moves: bool,
    delays: Optional[np.ndarray] = None,
) -> int:
    """Hill climber that maintains delays and loads across applied moves.

    Same move selection as :func:`_refine_vectorized` (it reuses the same
    neighbourhood scanners), but the per-client delay vector and the
    per-server load accumulator are updated in place after each applied move
    instead of being recomputed from the full assignment every iteration.
    After a small churn batch only a few clients sit over the bound, so one
    iteration costs ~O(over-bound clients × servers) instead of O(clients).

    ``delays`` optionally seeds the maintained per-client delay vector (it
    must equal ``delays_to_targets`` of the input arrays); it is mutated in
    place, so on return the caller's array holds the refined assignment's
    exact delay vector — every update writes the same two-term gather sum a
    fresh recompute would, so the maintained vector stays bit-identical to
    ``delays_to_targets`` of the final arrays.
    """
    zones_of = instance.client_zones
    bound = instance.delay_bound
    ssd = instance.server_server_delays

    # Seeded once; maintained incrementally from here on.
    if delays is None:
        delays = delays_to_targets(instance, zone_to_server, contacts)
    loads = server_loads(instance, zone_to_server, contacts)
    targets = zone_to_server[zones_of]

    within_matrix = excess_matrix = zone_sizes = zone_demands = None
    if consider_zone_moves:
        _, within_matrix, excess_matrix, zone_sizes = _zone_move_aggregates(instance)
        zone_demands = instance.zone_demands()

    iterations = 0
    for _ in range(max_iterations):
        within = delays <= bound
        excess_vec = np.maximum(delays - bound, 0.0)
        qos_count = int(within.sum())
        excess_total = float(excess_vec.sum())

        best = None  # (qos, excess, kind, index, server)
        if consider_zone_moves:
            move = _best_zone_move(
                instance,
                zone_to_server,
                contacts,
                loads,
                within,
                excess_vec,
                qos_count,
                excess_total,
                within_matrix,
                excess_matrix,
                zone_sizes,
            )
            if move is not None:
                best = (move[0], move[1], "zone", move[2], move[3])
        if consider_contact_moves:
            move = _best_contact_move(
                instance,
                zone_to_server,
                contacts,
                loads,
                delays,
                excess_vec,
                qos_count,
                excess_total,
                incumbent=None if best is None else (best[0], best[1]),
            )
            if move is not None:
                best = (move[0], move[1], "contact", move[2], move[3])

        if best is None:
            break
        _, _, kind, index, server = best
        if kind == "zone":
            members = np.flatnonzero(zones_of == index)
            old_server = int(zone_to_server[index])
            forwarded = members[contacts[members] != old_server]
            if forwarded.size:
                np.subtract.at(loads, contacts[forwarded], 2.0 * instance.client_demands[forwarded])
            loads[old_server] -= zone_demands[index]
            loads[server] += zone_demands[index]
            zone_to_server[index] = server
            contacts[members] = server
            targets[members] = server
            delays[members] = instance.delay_pairs(members, server) + ssd[server, server]
        else:
            target = int(targets[index])
            demand = 2.0 * instance.client_demands[index]
            if int(contacts[index]) != target:
                loads[int(contacts[index])] -= demand
            if server != target:
                loads[server] += demand
            contacts[index] = server
            delays[index] = instance.delay_pairs(index, server) + ssd[server, target]
        iterations += 1
    return iterations


def _repair_contacts_sweep(
    instance: CAPInstance,
    zone_to_server: np.ndarray,
    contacts: np.ndarray,
    max_iterations: int,
    max_sweeps: int = 50,
    delays: Optional[np.ndarray] = None,
) -> int:
    """Batched contact repair: apply a whole sweep of improving moves at once.

    ``delays`` optionally seeds (and receives, mutated in place) the
    maintained per-client delay vector — see :func:`_refine_incremental` for
    the bit-identity contract.

    Each sweep picks, for every over-bound client, its best *strictly
    improving* contact server that had room at the start of the sweep, then
    resolves capacity contention per destination server with a prefix sum in
    client order (later claimants that would overflow wait for the next
    sweep, when the loads they freed elsewhere are also visible).  Sweeps
    repeat until one applies nothing.  Unlike the best-first backends this
    does not pick the globally best move per round — it trades that for
    O(sweeps) vectorised scans instead of O(moves), which is what makes the
    per-epoch repair cost of a longitudinal simulation proportional to the
    churn, not to the population.  The objective still never worsens: every
    applied move strictly reduces its client's delay.
    """
    zones_of = instance.client_zones
    bound = instance.delay_bound
    ssd = instance.server_server_delays
    capacities = instance.server_capacities
    num_servers = instance.num_servers

    if delays is None:
        delays = delays_to_targets(instance, zone_to_server, contacts)
    loads = server_loads(instance, zone_to_server, contacts)
    targets = zone_to_server[zones_of]

    applied_total = 0
    for _ in range(max_sweeps):
        if applied_total >= max_iterations:
            break
        over = np.flatnonzero(delays > bound)
        if over.size == 0:
            break
        over_targets = targets[over]
        demand2 = 2.0 * instance.client_demands[over]
        options = instance.delay_rows(over) + ssd.T[over_targets]  # (over, m); col == server
        # A candidate must strictly improve the client's delay and (unless it
        # is the target itself, which adds no load) fit the forwarding
        # overhead into the load as of the start of the sweep.
        is_target = np.arange(num_servers)[None, :] == over_targets[:, None]
        fits = is_target | (
            loads[None, :] + demand2[:, None] <= capacities[None, :] + _CAP_EPS
        )
        candidate = fits & (options < delays[over, None])
        has_move = candidate.any(axis=1)
        if not has_move.any():
            break
        rows = np.flatnonzero(has_move)
        masked = np.where(candidate[rows], options[rows], np.inf)
        chosen = masked.argmin(axis=1)
        new_delay = masked[np.arange(rows.size), chosen]

        # Contention resolution: clients claiming forwarding capacity on the
        # same server are admitted in client order while their cumulative
        # demand still fits; targets-as-contacts (zero extra load) always fit.
        claim = np.where(chosen == over_targets[rows], 0.0, demand2[rows])
        order = np.argsort(chosen, kind="stable")
        sorted_srv = chosen[order]
        sorted_claim = claim[order]
        csum = np.cumsum(sorted_claim)
        group_first = np.r_[True, sorted_srv[1:] != sorted_srv[:-1]]
        group_base = np.maximum.accumulate(np.where(group_first, csum - sorted_claim, 0.0))
        within_group = csum - group_base
        admitted_sorted = (sorted_claim == 0.0) | (
            loads[sorted_srv] + within_group <= capacities[sorted_srv] + _CAP_EPS
        )
        admitted = order[admitted_sorted]
        if admitted.size == 0:
            break
        if applied_total + admitted.size > max_iterations:
            admitted = admitted[: max_iterations - applied_total]

        moved_rows = rows[admitted]
        moved_clients = over[moved_rows]
        moved_to = chosen[admitted]
        old_contacts = contacts[moved_clients]
        was_forwarded = old_contacts != over_targets[moved_rows]
        if was_forwarded.any():
            np.subtract.at(
                loads, old_contacts[was_forwarded], demand2[moved_rows][was_forwarded]
            )
        now_forwarded = moved_to != over_targets[moved_rows]
        if now_forwarded.any():
            np.add.at(loads, moved_to[now_forwarded], demand2[moved_rows][now_forwarded])
        contacts[moved_clients] = moved_to
        delays[moved_clients] = new_delay[admitted]
        applied_total += int(admitted.size)
    return applied_total


def _repair_zones_sweep(
    instance: CAPInstance,
    zone_to_server: np.ndarray,
    contacts: np.ndarray,
    max_iterations: int,
    max_sweeps: int = 20,
    delays: Optional[np.ndarray] = None,
) -> int:
    """Batched zone-move repair: one ``(zones, servers)`` scan per sweep.

    ``delays`` optionally seeds (and receives, mutated in place) the
    maintained per-client delay vector — see :func:`_refine_incremental` for
    the bit-identity contract.

    Each sweep evaluates, for every zone, the objective delta of re-hosting
    it on every other server (members reconnect directly — the GreC base
    case), picks each zone's best strictly-improving destination that fits
    the sweep-start loads, and then admits the candidate moves greedily in
    gain order with incrementally updated loads (a move whose headroom was
    consumed by an earlier admission waits for the next sweep).  Because a
    zone move only changes its *own* members' delays, the objective deltas of
    distinct zones are additive, so every admitted move still strictly
    improves the global objective.  Feasibility checks only the destination
    fit: a zone move sheds load everywhere else (forwarding of its members is
    released), so no other server can end worse off.

    This is the neighbourhood that recovers hotspot *shifts*: after churn
    concentrates population in new zones, contact repairs alone cannot move
    the hosting, while a handful of zone moves re-balances the fleet at a
    cost proportional to the number of sweeps, not the population.
    """
    num_zones, num_servers = instance.num_zones, instance.num_servers
    if num_zones == 0 or num_servers <= 1 or instance.num_clients == 0:
        return 0
    zones_of = instance.client_zones
    bound = instance.delay_bound
    capacities = instance.server_capacities
    zone_demands = instance.zone_demands()

    direct, within_matrix, excess_matrix, zone_sizes = _zone_move_aggregates(instance)
    # Compact delay sources skip the (k, m) direct matrix; applied moves
    # regather the handful of affected rows instead.
    self_delays = None if direct is not None else np.diag(instance.server_server_delays)

    # Per-zone member lists, once (CSR-style layout).
    member_order = np.argsort(zones_of, kind="stable")
    member_starts = np.r_[0, np.cumsum(zone_sizes)]

    if delays is None:
        delays = delays_to_targets(instance, zone_to_server, contacts)
    loads = server_loads(instance, zone_to_server, contacts)

    applied_total = 0
    for _ in range(max_sweeps):
        if applied_total >= max_iterations:
            break
        within = delays <= bound
        excess_vec = np.maximum(delays - bound, 0.0)
        within_current = np.bincount(
            zones_of, weights=within.astype(np.float64), minlength=num_zones
        )
        excess_current = np.bincount(zones_of, weights=excess_vec, minlength=num_zones)

        qos_delta = within_matrix - within_current[:, None]
        excess_delta = excess_matrix - excess_current[:, None]
        fits = loads[None, :] + zone_demands[:, None] <= capacities[None, :] + _CAP_EPS
        fits[np.arange(num_zones), zone_to_server] = False
        fits[zone_sizes == 0, :] = False
        improving = fits & ((qos_delta > 0) | ((qos_delta == 0) & (excess_delta < 0)))
        if not improving.any():
            break

        qos_masked = np.where(improving, qos_delta, -np.inf)
        best_qos = qos_masked.max(axis=1)
        candidate_zones = np.flatnonzero(best_qos > -np.inf)
        excess_masked = np.where(
            improving & (qos_delta == best_qos[:, None]), excess_delta, np.inf
        )
        best_server = excess_masked.argmin(axis=1)
        # Admit the biggest gains first (qos gain desc, excess delta asc).
        gain_order = np.lexsort(
            (
                excess_masked[candidate_zones, best_server[candidate_zones]],
                -best_qos[candidate_zones],
            )
        )

        applied_this_sweep = 0
        for zone in candidate_zones[gain_order]:
            if applied_total >= max_iterations:
                break
            zone = int(zone)
            server = int(best_server[zone])
            if loads[server] + zone_demands[zone] > capacities[server] + _CAP_EPS:
                continue  # an earlier admission consumed the headroom
            members = member_order[member_starts[zone]: member_starts[zone + 1]]
            old_server = int(zone_to_server[zone])
            forwarded = members[contacts[members] != old_server]
            if forwarded.size:
                np.subtract.at(
                    loads, contacts[forwarded], 2.0 * instance.client_demands[forwarded]
                )
            loads[old_server] -= zone_demands[zone]
            loads[server] += zone_demands[zone]
            zone_to_server[zone] = server
            contacts[members] = server
            if direct is not None:
                delays[members] = direct[members, server]
            else:
                delays[members] = instance.delay_pairs(members, server) + self_delays[server]
            applied_total += 1
            applied_this_sweep += 1
        if applied_this_sweep == 0:
            break
    return applied_total


_WARM_START_MODES = ("best", "sweep")


def warm_start_refine(
    instance: CAPInstance,
    assignment: Assignment,
    max_iterations: int = 200,
    consider_zone_moves: bool = False,
    consider_contact_moves: bool = True,
    mode: str = "best",
    stash_measures: bool = False,
) -> LocalSearchResult:
    """Warm-start refinement: repair a carried-over assignment after churn.

    Seeds the hill climber with the given assignment (typically the pre-churn
    assignment carried over to the post-churn instance) and maintains
    per-server load and per-client delay accumulators across moves instead of
    recomputing them every sweep.  With small churn only the handful of
    clients pushed over the bound are scanned, so the repair costs roughly
    O(changed clients × servers) — the cheap alternative to re-executing the
    two-phase algorithm from scratch.

    ``mode="best"`` applies the globally best improving move per round with
    exactly the :func:`refine_assignment` move-acceptance semantics (the two
    produce identical assignments from the same start).  ``mode="sweep"``
    batches a whole sweep of improving moves between scans — the fast path
    the simulation engine uses, at the cost of a move order that is greedy
    per zone / client rather than globally best-first.

    Zone moves are off by default (re-hosting a zone is the expensive
    neighbourhood and, without infrastructure churn, rarely pays off for
    small churn).  With ``consider_zone_moves=True``, ``mode="sweep"`` runs
    the batched zone-move sweep (:func:`_repair_zones_sweep`) *before* the
    contact sweep, which is what lets the warm-start policy recover hotspot
    shifts and evacuated zones without a full re-execution.
    ``capacity_exceeded`` on the result is recomputed against the instance
    rather than inherited, so a repair that ends within capacity clears a
    stale flag.

    With ``stash_measures=True`` the refiner's incrementally maintained
    per-client delay vector (an exact gather-sum at every update, so
    bit-identical to a fresh ``client_delays`` recompute) is attached to the
    result by reference as a measurement stash
    (:func:`repro.core.measures.attach_measures` — no copy, the array is
    frozen read-only), together with the freshly reduced server loads.
    ``initial_pqos`` / ``final_pqos`` are then served as exact
    count-over-population divisions, bit-identical to the boolean-mean
    specification.  The returned numbers are identical either way; the flag
    only removes the redundant O(clients) passes.
    """
    if mode not in _WARM_START_MODES:
        raise ValueError(f"unknown mode {mode!r}; expected one of {_WARM_START_MODES}")
    zone_to_server = assignment.zone_to_server.copy()
    contacts = assignment.contact_of_client.copy()
    delays: Optional[np.ndarray] = None
    if stash_measures:
        delays = delays_to_targets(instance, zone_to_server, contacts)
        if instance.num_clients:
            within = int(np.count_nonzero(delays <= instance.delay_bound))
            initial_pqos = within / instance.num_clients
        else:
            initial_pqos = 1.0
    else:
        initial_pqos = assignment.pqos(instance)

    with Timer() as timer:
        if mode == "sweep":
            iterations = 0
            if consider_zone_moves:
                iterations += _repair_zones_sweep(
                    instance, zone_to_server, contacts, max_iterations, delays=delays
                )
            if consider_contact_moves and iterations < max_iterations:
                iterations += _repair_contacts_sweep(
                    instance,
                    zone_to_server,
                    contacts,
                    max_iterations - iterations,
                    delays=delays,
                )
        else:
            iterations = _refine_incremental(
                instance,
                zone_to_server,
                contacts,
                max_iterations,
                consider_zone_moves,
                consider_contact_moves,
                delays=delays,
            )

    final_loads = server_loads(instance, zone_to_server, contacts)
    refined = Assignment(
        zone_to_server=zone_to_server,
        contact_of_client=contacts,
        algorithm=f"{assignment.algorithm}+ws",
        capacity_exceeded=bool((final_loads > instance.server_capacities * (1.0 + 1e-6)).any()),
        runtime_seconds=assignment.runtime_seconds + timer.elapsed,
        metadata={**assignment.metadata, "warm_start_iterations": iterations},
    )
    if stash_measures:
        attach_measures(refined, instance, delays, final_loads)
        final_pqos = measured_pqos(refined, instance)
    else:
        final_pqos = refined.pqos(instance)
    return LocalSearchResult(
        assignment=refined,
        iterations=iterations,
        initial_pqos=initial_pqos,
        final_pqos=final_pqos,
        runtime_seconds=timer.elapsed,
    )


_BACKENDS = ("vectorized", "loop")


def refine_assignment(
    instance: CAPInstance,
    assignment: Assignment,
    max_iterations: int = 200,
    consider_zone_moves: bool = True,
    consider_contact_moves: bool = True,
    backend: str = "vectorized",
) -> LocalSearchResult:
    """Hill-climb an assignment with zone-move and contact-move neighbourhoods.

    The search is greedy (best improving move each round), respects server
    capacities at every step and never worsens the objective; the returned
    assignment is therefore at least as good as the input.

    Parameters
    ----------
    instance:
        The problem instance (true delays).
    assignment:
        A complete, capacity-feasible starting solution.
    max_iterations:
        Upper bound on the number of applied moves.
    consider_zone_moves / consider_contact_moves:
        Restrict the neighbourhood (used by the ablation study to attribute
        improvements to one move type).
    backend:
        ``"vectorized"`` (default) evaluates each sweep with NumPy delta-cost
        matrices; ``"loop"`` is the original nested Python scan with the same
        move-acceptance semantics.  Objective deltas are accumulated in a
        different floating-point order, so the two backends can in principle
        break an exact tie differently; both always return a move-wise local
        optimum of the same neighbourhood.
    """
    if backend not in _BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; expected one of {_BACKENDS}")
    zone_to_server = assignment.zone_to_server.copy()
    contacts = assignment.contact_of_client.copy()
    initial_pqos = assignment.pqos(instance)

    refine = _refine_vectorized if backend == "vectorized" else _refine_loop
    with Timer() as timer:
        iterations = refine(
            instance,
            zone_to_server,
            contacts,
            max_iterations,
            consider_zone_moves,
            consider_contact_moves,
        )

    refined = Assignment(
        zone_to_server=zone_to_server,
        contact_of_client=contacts,
        algorithm=f"{assignment.algorithm}+ls",
        capacity_exceeded=assignment.capacity_exceeded,
        runtime_seconds=assignment.runtime_seconds + timer.elapsed,
        metadata={**assignment.metadata, "local_search_iterations": iterations},
    )
    return LocalSearchResult(
        assignment=refined,
        iterations=iterations,
        initial_pqos=initial_pqos,
        final_pqos=refined.pqos(instance),
        runtime_seconds=timer.elapsed,
    )
