"""Cost metrics of the two assignment phases (Equations 3 and 8 of the paper).

* **Initial assignment cost** ``C^I_ij = |{c in z_j : d(c, s_i) > D}|`` — the
  number of clients of zone ``j`` that would miss the delay bound if the zone
  were hosted by server ``i``.
* **Refined assignment cost**
  ``C^R_ij = max(0, d(c_j, s_i) + d(s_i, target(c_j)) - D)`` — how far past the
  delay bound client ``j`` would land if it used server ``i`` as its contact
  server.

Both matrices are computed with vectorised NumPy: the client×server delay
matrix is thresholded / combined in one shot and aggregated per zone with a
sort + ``np.add.reduceat`` segment reduction, so even the largest
configuration in the paper (30 servers × 160 zones × 2000 clients) is handled
in a few milliseconds.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import CAPInstance

__all__ = [
    "initial_cost_matrix",
    "refined_cost_matrix",
    "refined_cost_columns",
    "refined_cost_rows",
    "refined_cost_candidates",
    "delays_to_targets",
    "qos_indicator",
]


def initial_cost_matrix(instance: CAPInstance) -> np.ndarray:
    """Initial-assignment cost matrix ``C^I`` of shape (num_servers, num_zones).

    ``C^I[i, j]`` is the number of clients in zone ``j`` whose round-trip delay
    to server ``i`` exceeds the delay bound ``D``.

    The per-zone aggregation sorts the client rows by zone and reduces each
    contiguous segment with ``np.add.reduceat`` — the ``np.add.at``
    scatter-add it replaces is the notoriously slow ufunc path, and this
    matrix is rebuilt on every from-scratch solve of a re-execution epoch.
    """
    if not instance.has_dense_delays:
        # Compact delay sources aggregate in node space: a (zones × nodes)
        # count matrix against the node→server over-bound indicator gives the
        # same integer counts without ever touching a (k, m) matrix.
        per_zone = instance.client_server_delays.zone_over_bound_counts(
            instance.delay_bound, instance.client_zones, instance.num_zones
        )
        return per_zone.T.copy()
    per_zone = np.zeros((instance.num_zones, instance.num_servers), dtype=np.float64)
    if instance.num_clients:
        over_bound = (instance.client_server_delays > instance.delay_bound).astype(np.float64)
        by_zone = np.argsort(instance.client_zones, kind="stable")
        counts = np.bincount(instance.client_zones, minlength=instance.num_zones)
        nonempty = counts > 0
        segment_starts = np.concatenate(([0], np.cumsum(counts)))[:-1][nonempty]
        per_zone[nonempty] = np.add.reduceat(over_bound[by_zone], segment_starts, axis=0)
    return per_zone.T.copy()


def refined_cost_matrix(instance: CAPInstance, zone_to_server: np.ndarray) -> np.ndarray:
    """Refined-assignment cost matrix ``C^R`` of shape (num_servers, num_clients).

    ``C^R[i, j]`` measures how far client ``j``'s communication delay would be
    above the bound ``D`` if server ``i`` were chosen as its contact server,
    given the zone→server map ``zone_to_server`` from the initial phase
    (0 when within the bound).
    """
    zone_to_server = np.asarray(zone_to_server, dtype=np.int64)
    if zone_to_server.shape != (instance.num_zones,):
        raise ValueError(
            f"zone_to_server must have shape ({instance.num_zones},), got {zone_to_server.shape}"
        )
    if zone_to_server.size and (
        zone_to_server.min() < 0 or zone_to_server.max() >= instance.num_servers
    ):
        raise ValueError("zone_to_server contains invalid server indices")
    targets = zone_to_server[instance.client_zones]  # (k,)
    # total_delay[i, j] = d(c_j, s_i) + d(s_i, target_j).  This is the one
    # cost that is inherently (m, k)-dense; compact instances materialise
    # here, which the all-pairs callers (optimal RAP, first-fit variant)
    # accept on the small worlds they run on.
    total_delay = (
        instance.dense_client_server_delays().T + instance.server_server_delays[:, targets]
    )
    return np.maximum(total_delay - instance.delay_bound, 0.0)


def refined_cost_rows(
    instance: CAPInstance, zone_to_server: np.ndarray, clients: np.ndarray
) -> np.ndarray:
    """Refined-cost rows ``C^R.T[clients]`` of shape (len(clients), num_servers).

    The transpose of :func:`refined_cost_columns`, built *row-major*: the
    delay gather (``delay_rows``) already returns one contiguous row per
    client, so accumulating the mesh legs and the bound in place keeps every
    pass contiguous — no (num_servers, len(clients)) strided write.  GreC
    hands the transposed view straight to the vectorized placement engine,
    whose per-item gathers want exactly this layout.
    """
    zone_to_server = np.asarray(zone_to_server, dtype=np.int64)
    if zone_to_server.shape != (instance.num_zones,):
        raise ValueError(
            f"zone_to_server must have shape ({instance.num_zones},), got {zone_to_server.shape}"
        )
    if zone_to_server.size and (
        zone_to_server.min() < 0 or zone_to_server.max() >= instance.num_servers
    ):
        raise ValueError("zone_to_server contains invalid server indices")
    clients = np.asarray(clients, dtype=np.int64)
    if clients.ndim != 1:
        raise ValueError("clients must be a 1-D index array")
    if clients.size and (clients.min() < 0 or clients.max() >= instance.num_clients):
        raise ValueError("clients contains invalid client indices")
    targets = zone_to_server[instance.client_zones[clients]]  # (len(clients),)
    # total[j, i] = d(c_j, s_i) + d(s_i, target_j); same operand order as the
    # column form (delays first, mesh leg second), so the sums are bitwise
    # equal to refined_cost_columns' transposed.
    total_delay = instance.delay_rows(clients)  # fresh, writable, row-major
    # Materialise the transposed mesh before the row gather: fancy-indexing
    # rows of the F-ordered .T view strides through the whole mesh per row.
    total_delay += np.ascontiguousarray(instance.server_server_delays.T)[targets]
    total_delay -= instance.delay_bound
    return np.maximum(total_delay, 0.0, out=total_delay)


def refined_cost_candidates(
    instance: CAPInstance, zone_to_server: np.ndarray, clients: np.ndarray
):
    """Refined costs restricted to each client's candidate servers, or ``None``.

    For instances whose delay backend restricts zones to per-zone candidate
    sets (the sparse backend), returns ``(servers, costs)`` of shape
    ``(len(clients), K)``: the client zone's candidate server ids (ascending
    per row) and the refined cost ``C^R`` of forwarding through each.  The
    cost values are bitwise the corresponding entries of
    :func:`refined_cost_rows` (same gather source, same operation order);
    every *non*-candidate server carries the sentinel delay, so its refined
    cost is at least ``fill_value - delay_bound`` — callers can treat the
    candidate lists as a complete view of the servers worth forwarding
    through.  ``None`` for dense or unrestricted (coords) instances.
    """
    if instance.has_dense_delays:
        return None
    if instance.client_server_delays.zone_candidates is None:
        return None
    zone_to_server = np.asarray(zone_to_server, dtype=np.int64)
    if zone_to_server.shape != (instance.num_zones,):
        raise ValueError(
            f"zone_to_server must have shape ({instance.num_zones},), got {zone_to_server.shape}"
        )
    if zone_to_server.size and (
        zone_to_server.min() < 0 or zone_to_server.max() >= instance.num_servers
    ):
        raise ValueError("zone_to_server contains invalid server indices")
    clients = np.asarray(clients, dtype=np.int64)
    if clients.ndim != 1:
        raise ValueError("clients must be a 1-D index array")
    if clients.size and (clients.min() < 0 or clients.max() >= instance.num_clients):
        raise ValueError("clients contains invalid client indices")
    # A fresh (len(clients), K) gather of the true candidate delays.
    servers, total_delay = instance.client_server_delays.candidate_rows(clients)
    targets = zone_to_server[instance.client_zones[clients]]
    # Same elementwise operation order as refined_cost_rows (delay first,
    # mesh leg second, then the bound), so entries stay bitwise equal.
    total_delay += instance.server_server_delays[servers, targets[:, None]]
    total_delay -= instance.delay_bound
    return servers, np.maximum(total_delay, 0.0, out=total_delay)


def refined_cost_columns(
    instance: CAPInstance, zone_to_server: np.ndarray, clients: np.ndarray
) -> np.ndarray:
    """Refined-cost columns ``C^R[:, clients]`` of shape (num_servers, len(clients)).

    Equal to ``refined_cost_matrix(instance, zone_to_server)[:, clients]``
    without materialising the dense (num_servers, num_clients) matrix first —
    GreC only ever needs the columns of the clients that miss the bound
    directly (the paper's list ``L_E``), which on large populations is a small
    fraction of the whole matrix.
    """
    return np.ascontiguousarray(refined_cost_rows(instance, zone_to_server, clients).T)


def delays_to_targets(
    instance: CAPInstance,
    zone_to_server: np.ndarray,
    contact_of_client: np.ndarray | None = None,
) -> np.ndarray:
    """Per-client communication delay to its target server (ms).

    With ``contact_of_client`` omitted, clients are assumed to talk to their
    target server directly (contact = target).  Otherwise the delay is
    ``d(c, contact) + d(contact, target)`` per Definition 2.1.
    """
    zone_to_server = np.asarray(zone_to_server, dtype=np.int64)
    targets = zone_to_server[instance.client_zones]
    clients = np.arange(instance.num_clients)
    if contact_of_client is None:
        return instance.delay_pairs(clients, targets)
    contacts = np.asarray(contact_of_client, dtype=np.int64)
    if contacts.shape != (instance.num_clients,):
        raise ValueError("contact_of_client must have one entry per client")
    return instance.delay_pairs(clients, contacts) + instance.server_server_delays[
        contacts, targets
    ]


def qos_indicator(instance: CAPInstance, delays: np.ndarray) -> np.ndarray:
    """Boolean per-client indicator of meeting the delay bound ``D``."""
    delays = np.asarray(delays, dtype=np.float64)
    if delays.shape != (instance.num_clients,):
        raise ValueError("delays must have one entry per client")
    return delays <= instance.delay_bound
