"""RanZ — random assignment of zones to servers (IAP baseline heuristic).

From Section 3.1 of the paper: "zones are assigned to randomly selected
servers with the only concern of not overloading the servers.  The following
procedure is repeated until all zones have been assigned: first the zone with
the largest number of clients is selected, and then a random server with
sufficient capacity is selected to take it."

RanZ is delay-oblivious by design; it exists as the baseline that GreZ is
compared against (the paper's key claim is that delay awareness in the
*initial* phase is what matters most).
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import ZoneAssignment
from repro.core.problem import CAPInstance
from repro.utils.rng import SeedLike, as_generator
from repro.utils.timing import Timer

__all__ = ["assign_zones_random"]


def assign_zones_random(instance: CAPInstance, seed: SeedLike = None) -> ZoneAssignment:
    """Assign every zone to a random server with sufficient residual capacity.

    Zones are processed in decreasing order of population (as in the paper's
    description) so that the bulky zones are placed while many servers still
    have room.  If no server can take a zone without exceeding its capacity,
    the zone is placed on the server with the largest residual capacity and
    the result is flagged ``capacity_exceeded``.

    Parameters
    ----------
    instance:
        The CAP instance.
    seed:
        RNG used for the random server choices.

    Returns
    -------
    ZoneAssignment
    """
    rng = as_generator(seed)
    with Timer() as timer:
        zone_demands = instance.zone_demands()
        populations = instance.zone_populations()
        capacities = instance.server_capacities
        loads = np.zeros(instance.num_servers, dtype=np.float64)
        zone_to_server = np.full(instance.num_zones, -1, dtype=np.int64)
        capacity_exceeded = False

        order = np.argsort(-populations, kind="stable")
        # The feasibility mask is maintained incrementally: placing a zone
        # changes one server's load, so while consecutive zones have equal
        # demand (common — zone demand is a function of the population, and
        # the multinomial population draw produces many ties) only that one
        # entry needs re-checking.  The predicate keeps the exact spelling of
        # the original per-zone scan (``loads + demand <= capacities + eps``),
        # so the feasible sets — and therefore the RNG draw sequence — are
        # bit-identical to it.
        slack = capacities + 1e-9
        feasible_mask = np.zeros(instance.num_servers, dtype=bool)
        prev_demand: float | None = None
        prev_server = -1
        for zone in order:
            demand = zone_demands[zone]
            if demand == prev_demand:
                feasible_mask[prev_server] = loads[prev_server] + demand <= slack[prev_server]
            else:
                np.less_equal(loads + demand, slack, out=feasible_mask)
            feasible = np.flatnonzero(feasible_mask)
            if feasible.size:
                server = int(rng.choice(feasible))
            else:
                server = int(np.argmax(capacities - loads))
                capacity_exceeded = True
            zone_to_server[zone] = server
            loads[server] += demand
            prev_demand = demand
            prev_server = server

    return ZoneAssignment(
        zone_to_server=zone_to_server,
        algorithm="ranz",
        capacity_exceeded=capacity_exceeded,
        runtime_seconds=timer.elapsed,
    )
