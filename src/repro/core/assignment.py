"""Assignment result objects.

The initial phase produces a :class:`ZoneAssignment` (zone → target server);
the refined phase extends it into a full :class:`Assignment` (additionally,
client → contact server).  Both are immutable and carry only index arrays plus
bookkeeping metadata, so the same assignment can be evaluated against
different problem instances — crucially, an assignment computed from
*estimated* delays is evaluated against the *true* delays in the
measurement-error experiments, and an assignment computed before churn is
evaluated against the post-churn population in the dynamics experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.core.costs import delays_to_targets
from repro.core.problem import CAPInstance

__all__ = ["ZoneAssignment", "Assignment", "server_loads", "zone_server_loads"]


@dataclass(frozen=True)
class ZoneAssignment:
    """Result of the initial assignment phase (IAP): zone → target server.

    Attributes
    ----------
    zone_to_server:
        ``(num_zones,)`` server index hosting each zone.
    algorithm:
        Name of the algorithm that produced it (e.g. ``"grez"``).
    capacity_exceeded:
        True when at least one zone could not be placed without exceeding some
        server's capacity and had to be placed best-effort (the paper's
        algorithms assume capacities suffice; this flag makes overload
        explicit instead of silent).
    runtime_seconds:
        Wall-clock time spent computing the assignment.
    """

    zone_to_server: np.ndarray
    algorithm: str = "unknown"
    capacity_exceeded: bool = False
    runtime_seconds: float = 0.0

    def __post_init__(self) -> None:
        arr = np.asarray(self.zone_to_server, dtype=np.int64)
        object.__setattr__(self, "zone_to_server", arr)
        if arr.ndim != 1:
            raise ValueError("zone_to_server must be a 1-D array")
        if arr.size and arr.min() < 0:
            raise ValueError("every zone must be assigned to a server (no -1 entries)")

    @property
    def num_zones(self) -> int:
        """Number of zones covered by this assignment."""
        return int(self.zone_to_server.shape[0])

    def targets_of_clients(self, instance: CAPInstance) -> np.ndarray:
        """Target server of each client under this zone assignment."""
        return self.zone_to_server[instance.client_zones]

    def server_zone_loads(self, instance: CAPInstance) -> np.ndarray:
        """Per-server bandwidth load from hosted zones only (bits/s)."""
        return zone_server_loads(instance, self.zone_to_server)


@dataclass(frozen=True)
class Assignment:
    """A complete solution to the CAP: target servers plus contact servers.

    Attributes
    ----------
    zone_to_server:
        ``(num_zones,)`` server hosting each zone (the clients' target servers).
    contact_of_client:
        ``(num_clients,)`` contact server of each client.
    algorithm:
        Composite algorithm name (e.g. ``"grez-grec"``).
    capacity_exceeded:
        True when either phase had to exceed a server capacity (best effort).
    runtime_seconds:
        Total wall-clock time of both phases.
    metadata:
        Free-form side-channel (e.g. the measurement stash of
        :mod:`repro.core.measures`).  Excluded from equality: it may hold
        arrays, and it describes how the assignment was measured, not what
        the assignment *is*.
    """

    zone_to_server: np.ndarray
    contact_of_client: np.ndarray
    algorithm: str = "unknown"
    capacity_exceeded: bool = False
    runtime_seconds: float = 0.0
    metadata: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        zones = np.asarray(self.zone_to_server, dtype=np.int64)
        contacts = np.asarray(self.contact_of_client, dtype=np.int64)
        object.__setattr__(self, "zone_to_server", zones)
        object.__setattr__(self, "contact_of_client", contacts)
        if zones.ndim != 1 or contacts.ndim != 1:
            raise ValueError("zone_to_server and contact_of_client must be 1-D arrays")
        if zones.size and zones.min() < 0:
            raise ValueError("every zone must be assigned to a server")
        if contacts.size and contacts.min() < 0:
            raise ValueError("every client must have a contact server")

    # ------------------------------------------------------------------ #
    @property
    def num_zones(self) -> int:
        """Number of zones."""
        return int(self.zone_to_server.shape[0])

    @property
    def num_clients(self) -> int:
        """Number of clients."""
        return int(self.contact_of_client.shape[0])

    def targets_of_clients(self, instance: CAPInstance) -> np.ndarray:
        """Target server of each client."""
        return self.zone_to_server[instance.client_zones]

    def client_delays(self, instance: CAPInstance) -> np.ndarray:
        """Per-client communication delay ``d(c, contact) + d(contact, target)`` (ms)."""
        return delays_to_targets(instance, self.zone_to_server, self.contact_of_client)

    def qos_mask(self, instance: CAPInstance) -> np.ndarray:
        """Boolean per-client mask of clients within the delay bound."""
        return self.client_delays(instance) <= instance.delay_bound

    def pqos(self, instance: CAPInstance) -> float:
        """Fraction of clients with QoS (the paper's primary metric)."""
        if instance.num_clients == 0:
            return 1.0
        return float(self.qos_mask(instance).mean())

    def forwarded_mask(self, instance: CAPInstance) -> np.ndarray:
        """Clients whose contact server differs from their target server."""
        return self.contact_of_client != self.targets_of_clients(instance)

    def server_loads(self, instance: CAPInstance) -> np.ndarray:
        """Per-server bandwidth load (bits/s) including forwarding overhead."""
        return server_loads(instance, self.zone_to_server, self.contact_of_client)

    def resource_utilization(self, instance: CAPInstance) -> float:
        """Total consumed bandwidth divided by total capacity (the paper's R)."""
        total_capacity = instance.total_capacity()
        return float(self.server_loads(instance).sum() / total_capacity)

    def is_capacity_feasible(self, instance: CAPInstance, tolerance: float = 1e-6) -> bool:
        """True when no server's load exceeds its capacity (within tolerance)."""
        loads = self.server_loads(instance)
        return bool(np.all(loads <= instance.server_capacities * (1.0 + tolerance)))

    def with_algorithm(self, name: str) -> "Assignment":
        """Copy of this assignment labelled with a different algorithm name."""
        return Assignment(
            zone_to_server=self.zone_to_server,
            contact_of_client=self.contact_of_client,
            algorithm=name,
            capacity_exceeded=self.capacity_exceeded,
            runtime_seconds=self.runtime_seconds,
            metadata=dict(self.metadata),
        )


# ---------------------------------------------------------------------- #
# Load accounting helpers
# ---------------------------------------------------------------------- #
def zone_server_loads(instance: CAPInstance, zone_to_server: np.ndarray) -> np.ndarray:
    """Per-server load (bits/s) from hosting zones (target-server traffic only)."""
    zone_to_server = np.asarray(zone_to_server, dtype=np.int64)
    loads = np.zeros(instance.num_servers, dtype=np.float64)
    zone_demands = instance.zone_demands()
    np.add.at(loads, zone_to_server, zone_demands)
    return loads


def server_loads(
    instance: CAPInstance,
    zone_to_server: np.ndarray,
    contact_of_client: np.ndarray,
) -> np.ndarray:
    """Per-server load including contact-server forwarding overhead (bits/s).

    A server's load is the demand of the zones it hosts plus ``2 * RT(c)`` for
    every client that uses it as a contact server while its target server is a
    different machine (Section 2.1's ``RC`` accounting).
    """
    zone_to_server = np.asarray(zone_to_server, dtype=np.int64)
    contact_of_client = np.asarray(contact_of_client, dtype=np.int64)
    loads = zone_server_loads(instance, zone_to_server)
    targets = zone_to_server[instance.client_zones]
    forwarded = contact_of_client != targets
    if forwarded.any():
        np.add.at(
            loads,
            contact_of_client[forwarded],
            2.0 * instance.client_demands[forwarded],
        )
    return loads
