"""Unified registry of every CAP solver (heuristics, optimal, baselines).

The experiment harness refers to solvers by name; this registry maps names to
callables with the uniform signature ``(instance, seed) -> Assignment``.  The
four two-phase heuristics from the paper and the optimal MILP baseline are
always present; the related-work baselines from :mod:`repro.baselines`
register themselves on import (see that package's ``__init__``).
"""

from __future__ import annotations

import inspect
from typing import Callable, Dict, Iterable, Optional

from repro.core.assignment import Assignment
from repro.core.optimal import OptimalOptions, solve_cap_optimal
from repro.core.problem import CAPInstance
from repro.core.two_phase import STANDARD_ALGORITHMS
from repro.utils.rng import SeedLike

__all__ = ["SolverFn", "register_solver", "get_solver", "solver_names", "solve"]

SolverFn = Callable[[CAPInstance, SeedLike], Assignment]

_REGISTRY: Dict[str, SolverFn] = {}

#: Solver names whose callable accepts a ``backend=`` keyword — computed at
#: registration time, so :func:`solve` can forward the placement backend to
#: the max-regret solvers while leaving e.g. the baselines untouched.
_ACCEPTS_BACKEND: Dict[str, bool] = {}


def _sniff_accepts_backend(solver: SolverFn) -> bool:
    try:
        params = inspect.signature(solver).parameters
    except (TypeError, ValueError):  # builtins / C callables
        return False
    return "backend" in params or any(
        p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
    )


def register_solver(name: str, solver: SolverFn, overwrite: bool = False) -> None:
    """Register a named CAP solver.

    Parameters
    ----------
    name:
        Canonical lower-case name.
    solver:
        Callable ``(instance, seed) -> Assignment``.
    overwrite:
        Allow replacing an existing registration (tests only).
    """
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise KeyError(f"solver {name!r} is already registered")
    _REGISTRY[key] = solver
    _ACCEPTS_BACKEND[key] = _sniff_accepts_backend(solver)


def get_solver(name: str) -> SolverFn:
    """Look up a solver by name (case-insensitive)."""
    key = name.lower()
    if key not in _REGISTRY:
        raise KeyError(
            f"unknown solver {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        )
    return _REGISTRY[key]


def solver_names() -> list[str]:
    """Sorted names of all registered solvers."""
    return sorted(_REGISTRY)


def solve(
    instance: CAPInstance,
    name: str,
    seed: SeedLike = None,
    backend: Optional[str] = None,
) -> Assignment:
    """Solve an instance with the named solver.

    ``backend`` selects the max-regret placement backend (``"vectorized"`` /
    ``"loop"``) for solvers built on it; solvers without that machinery (the
    baselines, the MILP) ignore it — they have no loop/vectorized split.
    """
    solver = get_solver(name)
    if backend is not None and _ACCEPTS_BACKEND.get(name.lower(), False):
        return solver(instance, seed, backend=backend)
    return solver(instance, seed)


def _register_standard() -> None:
    for algo_name, algorithm in STANDARD_ALGORITHMS.items():
        def _solver(
            instance: CAPInstance,
            seed: SeedLike = None,
            backend: Optional[str] = None,
            _a=algorithm,
        ) -> Assignment:
            return _a.solve(instance, seed=seed, solver_backend=backend)

        register_solver(algo_name, _solver, overwrite=True)

    def _optimal(instance: CAPInstance, seed: SeedLike = None) -> Assignment:  # noqa: ARG001
        return solve_cap_optimal(instance, options=OptimalOptions())

    register_solver("optimal", _optimal, overwrite=True)


_register_standard()


def ensure_registered(names: Iterable[str]) -> None:
    """Raise ``KeyError`` unless every name in ``names`` is registered."""
    missing = [n for n in names if n.lower() not in _REGISTRY]
    if missing:
        raise KeyError(f"solvers not registered: {', '.join(missing)}")
