"""Problem definition for the client assignment problem (CAP).

A :class:`CAPInstance` is the numerical view of a DVE scenario that the
assignment algorithms consume (Definitions 2.1-2.3 of the paper):

* ``client_server_delays`` — round-trip delay ``d(c_j, s_i)`` between every
  client and every server (ms),
* ``server_server_delays`` — round-trip delay ``d(s_l, s_k)`` over the
  well-provisioned inter-server mesh (ms, zero diagonal),
* ``client_zones`` — the zone each client's avatar occupies,
* ``client_demands`` — per-client bandwidth demand ``RT(c_j)`` on its target
  server (bits/s),
* ``server_capacities`` — per-server bandwidth capacities ``C(s_i)`` (bits/s),
* ``delay_bound`` — the interactivity bound ``D`` (ms).

Instances are decoupled from :class:`~repro.world.scenario.DVEScenario` so
that algorithms can be run on *estimated* delays (Table 4's King / IDMaps
error models) while their results are evaluated on the true delays.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional, Union

import numpy as np

from repro.topology.delay_backends import CompactDelayMatrix
from repro.utils.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.world.scenario import DVEScenario

__all__ = ["CAPInstance"]

# Guards the lazy zone-cache fills so instances shared read-only across
# shard threads resolve each cache exactly once (double-checked fast path).
_ZONE_CACHE_LOCK = threading.Lock()


@dataclass(frozen=True)
class CAPInstance:
    """An instance of the client assignment problem.

    All arrays are validated and cast on construction; the instance is
    immutable (algorithms never modify it).
    """

    client_server_delays: np.ndarray
    server_server_delays: np.ndarray
    client_zones: np.ndarray
    client_demands: np.ndarray
    server_capacities: np.ndarray
    delay_bound: float
    num_zones: int

    def __post_init__(self) -> None:
        compact = isinstance(self.client_server_delays, CompactDelayMatrix)
        if not compact:
            d_cs = np.asarray(self.client_server_delays, dtype=np.float64)
            object.__setattr__(self, "client_server_delays", d_cs)
            if d_cs.ndim != 2:
                raise ValueError(
                    f"client_server_delays must be 2-D, got shape {d_cs.shape}"
                )
        d_ss = np.asarray(self.server_server_delays, dtype=np.float64)
        zones = np.asarray(self.client_zones, dtype=np.int64)
        demands = np.asarray(self.client_demands, dtype=np.float64)
        capacities = np.asarray(self.server_capacities, dtype=np.float64)
        object.__setattr__(self, "server_server_delays", d_ss)
        object.__setattr__(self, "client_zones", zones)
        object.__setattr__(self, "client_demands", demands)
        object.__setattr__(self, "server_capacities", capacities)

        k, m = self.client_server_delays.shape
        if d_ss.shape != (m, m):
            raise ValueError(
                f"server_server_delays must be ({m}, {m}), got {d_ss.shape}"
            )
        if zones.shape != (k,):
            raise ValueError(f"client_zones must have shape ({k},), got {zones.shape}")
        if demands.shape != (k,):
            raise ValueError(f"client_demands must have shape ({k},), got {demands.shape}")
        if capacities.shape != (m,):
            raise ValueError(f"server_capacities must have shape ({m},), got {capacities.shape}")
        check_positive(self.delay_bound, "delay_bound")
        if self.num_zones < 1:
            raise ValueError("num_zones must be >= 1")
        if zones.size and (zones.min() < 0 or zones.max() >= self.num_zones):
            raise ValueError("client_zones contains zone ids outside [0, num_zones)")
        # Compact matrices guarantee non-negativity by construction (they
        # gather from a validated node→server table); only dense inputs need
        # the O(k·m) scan.
        if (not compact and (d_cs < 0).any()) or (d_ss < 0).any():
            raise ValueError("delays must be non-negative")
        if demands.size and (demands <= 0).any():
            raise ValueError("client demands must be strictly positive (RT(c) > 0)")
        if (capacities <= 0).any():
            raise ValueError("server capacities must be strictly positive")
        if compact and self.client_server_delays.num_zones not in (0, self.num_zones):
            raise ValueError(
                "the compact delay matrix was built for "
                f"{self.client_server_delays.num_zones} zones, instance has {self.num_zones}"
            )

    # ------------------------------------------------------------------ #
    # Dimensions
    # ------------------------------------------------------------------ #
    @property
    def num_clients(self) -> int:
        """Number of clients ``k``."""
        return int(self.client_server_delays.shape[0])

    @property
    def num_servers(self) -> int:
        """Number of servers ``m``."""
        return int(self.client_server_delays.shape[1])

    # ------------------------------------------------------------------ #
    # Delay access — works for dense ndarrays and compact delay matrices
    # ------------------------------------------------------------------ #
    @property
    def has_dense_delays(self) -> bool:
        """True when ``client_server_delays`` is a real ndarray.

        Compact instances (``"coords"`` / ``"sparse"`` delay backends) carry a
        :class:`~repro.topology.delay_backends.CompactDelayMatrix` instead;
        algorithms that genuinely need the dense matrix must go through
        :meth:`dense_client_server_delays` (and accept the O(k·m) cost).
        """
        return not isinstance(self.client_server_delays, CompactDelayMatrix)

    def delay_rows(self, clients: Union[int, np.ndarray]) -> np.ndarray:
        """Delay rows — ``client_server_delays[clients]`` for either storage."""
        if self.has_dense_delays:
            return self.client_server_delays[clients]
        return self.client_server_delays.rows(clients)

    def delay_pairs(
        self, clients: Union[int, np.ndarray], servers: Union[int, np.ndarray]
    ) -> np.ndarray:
        """Elementwise delays — ``client_server_delays[clients, servers]``."""
        if self.has_dense_delays:
            return self.client_server_delays[clients, servers]
        return self.client_server_delays.pairs(clients, servers)

    def dense_client_server_delays(self) -> np.ndarray:
        """The full dense delay matrix, materialising a compact one (O(k·m))."""
        if self.has_dense_delays:
            return self.client_server_delays
        return self.client_server_delays.toarray()

    # ------------------------------------------------------------------ #
    # Derived quantities (cached — see invalidate_caches)
    # ------------------------------------------------------------------ #
    def zone_demands(self) -> np.ndarray:
        """Per-zone bandwidth demand ``R(z_j) = sum_{c in z_j} RT(c)`` (bits/s).

        Computed once and cached (the instance is immutable); the returned
        array is marked read-only because every caller shares it.
        """
        cached = self.__dict__.get("_zone_demands_cache")
        if cached is None:
            with _ZONE_CACHE_LOCK:
                cached = self.__dict__.get("_zone_demands_cache")
                if cached is None:
                    cached = np.zeros(self.num_zones, dtype=np.float64)
                    if self.num_clients:
                        np.add.at(cached, self.client_zones, self.client_demands)
                    cached.flags.writeable = False
                    object.__setattr__(self, "_zone_demands_cache", cached)
        return cached

    def zone_populations(self) -> np.ndarray:
        """Number of clients in each zone (cached, read-only)."""
        cached = self.__dict__.get("_zone_populations_cache")
        if cached is None:
            with _ZONE_CACHE_LOCK:
                cached = self.__dict__.get("_zone_populations_cache")
                if cached is None:
                    if self.num_clients == 0:
                        cached = np.zeros(self.num_zones, dtype=np.int64)
                    else:
                        cached = np.bincount(
                            self.client_zones, minlength=self.num_zones
                        ).astype(np.int64)
                    cached.flags.writeable = False
                    object.__setattr__(self, "_zone_populations_cache", cached)
        return cached

    def invalidate_caches(self) -> None:
        """Drop the cached derived quantities.

        Only needed if the instance's arrays were replaced through
        ``object.__setattr__`` (the frozen dataclass blocks normal mutation);
        the supported transformations (:meth:`with_delays`,
        :meth:`with_delay_bound`, :meth:`apply_delta`) produce *new* instances
        whose caches start empty — except :meth:`apply_server_delta`, which
        deliberately carries the zone caches over because a server delta
        cannot change them.
        """
        for key in ("_zone_demands_cache", "_zone_populations_cache"):
            self.__dict__.pop(key, None)

    def clients_of_zone(self, zone: int) -> np.ndarray:
        """Indices of clients whose avatar is in ``zone``."""
        if not 0 <= zone < self.num_zones:
            raise ValueError(f"zone {zone} outside [0, {self.num_zones - 1}]")
        return np.flatnonzero(self.client_zones == zone)

    def forwarding_demands(self) -> np.ndarray:
        """Per-client contact-server demand ``RC(c) = 2 * RT(c)`` (bits/s)."""
        return 2.0 * self.client_demands

    def total_demand(self) -> float:
        """Total target-server demand (bits/s)."""
        return float(self.client_demands.sum())

    def total_capacity(self) -> float:
        """Total server capacity (bits/s)."""
        return float(self.server_capacities.sum())

    # ------------------------------------------------------------------ #
    # Construction / transformation
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scenario(
        cls,
        scenario: "DVEScenario",
        delay_bound: Optional[float] = None,
    ) -> "CAPInstance":
        """Build an instance from a :class:`~repro.world.scenario.DVEScenario`."""
        return cls(
            client_server_delays=scenario.client_server_delays,
            server_server_delays=scenario.server_server_delays,
            client_zones=scenario.population.zones,
            client_demands=scenario.client_demands,
            server_capacities=scenario.servers.capacities,
            delay_bound=float(
                scenario.delay_bound_ms if delay_bound is None else delay_bound
            ),
            num_zones=scenario.num_zones,
        )

    def mirrors_arrays_of(self, scenario: "DVEScenario") -> bool:
        """True when every array of this instance *is* the scenario's array.

        :meth:`from_scenario` shares the scenario's arrays (no copies are
        taken for correctly-typed inputs), and the delta transformations
        preserve that sharing, so a simulation state that only ever advanced
        through the supported paths satisfies this check — which is what
        licenses :meth:`from_scenario_unchecked` on the *next* delta.
        """
        return (
            self.client_server_delays is scenario.client_server_delays
            and self.server_server_delays is scenario.server_server_delays
            and self.client_zones is scenario.population.zones
            and self.client_demands is scenario.client_demands
            and self.server_capacities is scenario.servers.capacities
            and self.delay_bound == float(scenario.delay_bound_ms)
            and self.num_zones == scenario.num_zones
        )

    @classmethod
    def from_scenario_unchecked(cls, scenario: "DVEScenario") -> "CAPInstance":
        """Zero-copy instance over a scenario's arrays, skipping validation.

        Fast path for the delta pipeline: when the previous epoch's instance
        :meth:`mirrors_arrays_of` the previous scenario, a scenario produced
        by :meth:`~repro.world.scenario.DVEScenario.apply_churn_delta` /
        :meth:`~repro.world.scenario.DVEScenario.apply_server_delta` contains
        only arrays that were carried over from validated state or validated
        by the scenario delta layer itself — re-validating (or re-gathering)
        them here would duplicate work the rebuild path pays once.  Callers
        that cannot guarantee the invariant must use :meth:`from_scenario`.
        """
        return cls._from_validated_arrays(
            client_server_delays=scenario.client_server_delays,
            server_server_delays=scenario.server_server_delays,
            client_zones=scenario.population.zones,
            client_demands=scenario.client_demands,
            server_capacities=scenario.servers.capacities,
            delay_bound=float(scenario.delay_bound_ms),
            num_zones=scenario.num_zones,
        )

    @classmethod
    def _from_validated_arrays(
        cls,
        client_server_delays: np.ndarray,
        server_server_delays: np.ndarray,
        client_zones: np.ndarray,
        client_demands: np.ndarray,
        server_capacities: np.ndarray,
        delay_bound: float,
        num_zones: int,
    ) -> "CAPInstance":
        """Construct without re-running ``__post_init__``.

        Internal fast path for :meth:`apply_delta`: the caller guarantees the
        arrays already have the right dtypes, shapes and value ranges (either
        carried over from a validated instance or validated as a delta).
        """
        instance = object.__new__(cls)
        object.__setattr__(instance, "client_server_delays", client_server_delays)
        object.__setattr__(instance, "server_server_delays", server_server_delays)
        object.__setattr__(instance, "client_zones", client_zones)
        object.__setattr__(instance, "client_demands", client_demands)
        object.__setattr__(instance, "server_capacities", server_capacities)
        object.__setattr__(instance, "delay_bound", delay_bound)
        object.__setattr__(instance, "num_zones", num_zones)
        return instance

    def apply_delta(
        self,
        old_to_new: np.ndarray,
        join_delays: np.ndarray,
        client_zones: np.ndarray,
        client_demands: np.ndarray,
        *,
        server_old_to_new: Optional[np.ndarray] = None,
        server_join_delays: Optional[np.ndarray] = None,
        server_server_delays: Optional[np.ndarray] = None,
        server_capacities: Optional[np.ndarray] = None,
    ) -> "CAPInstance":
        """Post-churn instance from a churn delta, validating only the delta.

        Surviving clients' delay rows are sliced out of this instance through
        ``old_to_new`` (``-1`` marks leavers; survivors keep their original
        relative order) and the joining clients' rows are appended after them,
        exactly the layout :func:`repro.dynamics.events.apply_churn` produces.

        **Invariant (client-only form):** when no server-delta arguments are
        given, the server-side arrays, the delay bound and the zone count
        carry over *by identity* — the new instance shares this instance's
        ``server_server_delays`` / ``server_capacities`` objects.  That is
        only sound because a client churn batch cannot touch the fleet: any
        infrastructure change (servers joining / leaving, capacity drift)
        MUST flow through :meth:`apply_server_delta` (or the combined form
        below), which re-validates exactly the changed server-side entries.
        Callers that mutated server arrays in place (unsupported — the
        dataclass is frozen for this reason) would silently corrupt every
        downstream delta; the carried arrays were validated when this
        instance was built, so the only checks here are O(churn × servers)
        on the appended rows plus cheap O(clients) scans of the new zone /
        demand vectors (demands can change for every client because they
        depend on zone crowding).

        **Combined client+server form:** passing the four ``server_*``
        keyword arguments applies the server delta *first* (on the pre-churn
        client set, via :meth:`apply_server_delta`) and the client delta
        second; ``join_delays`` must then span the post-churn server set.
        This is the one-call epoch update the simulation engine uses when
        both populations churn.

        Parameters
        ----------
        old_to_new:
            ``(self.num_clients,)`` map from pre-churn to post-churn client
            index, ``-1`` for clients that left.
        join_delays:
            ``(num_joins, num_post_churn_servers)`` delay rows of the joining
            clients.
        client_zones / client_demands:
            Full post-churn zone and demand vectors.
        server_old_to_new / server_join_delays / server_server_delays / server_capacities:
            Optional server delta, forwarded to :meth:`apply_server_delta`
            (all four must be given together).
        """
        if not self.has_dense_delays:
            raise TypeError(
                "apply_delta needs dense delay rows; compact instances advance "
                "through the scenario delta layer (CompactDelayMatrix.with_clients) "
                "and CAPInstance.from_scenario"
            )
        server_args = (server_old_to_new, server_join_delays, server_server_delays,
                       server_capacities)
        if any(a is not None for a in server_args):
            if any(a is None for a in server_args):
                raise ValueError(
                    "the combined delta needs all four server_* arguments "
                    "(server_old_to_new, server_join_delays, server_server_delays, "
                    "server_capacities)"
                )
            base = self.apply_server_delta(
                old_to_new=server_old_to_new,
                join_delays=server_join_delays,
                server_server_delays=server_server_delays,
                server_capacities=server_capacities,
            )
        else:
            base = self

        old_to_new = np.asarray(old_to_new, dtype=np.int64)
        join_delays = np.atleast_2d(np.asarray(join_delays, dtype=np.float64))
        client_zones = np.asarray(client_zones, dtype=np.int64)
        client_demands = np.asarray(client_demands, dtype=np.float64)

        if old_to_new.shape != (base.num_clients,):
            raise ValueError(
                f"old_to_new must have shape ({base.num_clients},), got {old_to_new.shape}"
            )
        num_joins = 0 if join_delays.size == 0 else join_delays.shape[0]
        if num_joins and join_delays.shape[1] != base.num_servers:
            raise ValueError(
                f"join_delays must have {base.num_servers} columns, got {join_delays.shape[1]}"
            )
        if num_joins and (join_delays < 0).any():
            raise ValueError("delays must be non-negative")

        survivors_old = np.flatnonzero(old_to_new >= 0)
        num_new = survivors_old.size + num_joins
        if client_zones.shape != (num_new,):
            raise ValueError(f"client_zones must have shape ({num_new},), got {client_zones.shape}")
        if client_demands.shape != (num_new,):
            raise ValueError(
                f"client_demands must have shape ({num_new},), got {client_demands.shape}"
            )
        if client_zones.size and (client_zones.min() < 0 or client_zones.max() >= base.num_zones):
            raise ValueError("client_zones contains zone ids outside [0, num_zones)")
        if client_demands.size and (client_demands <= 0).any():
            raise ValueError("client demands must be strictly positive (RT(c) > 0)")
        if not np.array_equal(old_to_new[survivors_old], np.arange(survivors_old.size)):
            raise ValueError(
                "old_to_new must map survivors to 0..num_survivors-1 in their original "
                "relative order (the layout apply_churn produces)"
            )

        delays = np.empty((num_new, base.num_servers), dtype=np.float64)
        delays[: survivors_old.size] = base.client_server_delays[survivors_old]
        if num_joins:
            delays[survivors_old.size:] = join_delays

        return CAPInstance._from_validated_arrays(
            client_server_delays=delays,
            server_server_delays=base.server_server_delays,
            client_zones=client_zones,
            client_demands=client_demands,
            server_capacities=base.server_capacities,
            delay_bound=base.delay_bound,
            num_zones=base.num_zones,
        )

    def apply_server_delta(
        self,
        old_to_new: np.ndarray,
        join_delays: np.ndarray,
        server_server_delays: np.ndarray,
        server_capacities: np.ndarray,
    ) -> "CAPInstance":
        """Post-infrastructure-churn instance, validating only the server delta.

        The server-side mirror of :meth:`apply_delta`: surviving servers'
        delay *columns* are gathered out of this instance through
        ``old_to_new`` and the joining servers' columns are appended after
        them, exactly the layout
        :func:`repro.dynamics.infrastructure.apply_server_churn` produces.
        Client-side arrays (zones, demands) carry over by identity, so the
        cached per-zone demand / population aggregates stay valid and are
        *carried over* to the new instance instead of being recomputed —
        an infrastructure change cannot alter who is in which zone.

        Validation is delta-only: O(clients × joins) on the appended columns,
        O(servers²) on the replacement mesh and O(servers) on the new
        capacities (capacity drift can change every entry, so the full
        capacity vector is re-checked — it is tiny).

        Parameters
        ----------
        old_to_new:
            ``(self.num_servers,)`` map from pre-churn to post-churn server
            index, ``-1`` for servers that left; survivors must keep their
            original relative order.
        join_delays:
            ``(num_clients, num_server_joins)`` delay columns of the joining
            servers.
        server_server_delays:
            Full post-churn inter-server mesh (its entries mix carried and
            fresh values, and the matrix is small, so it is validated whole).
        server_capacities:
            Full post-churn capacity vector (drift can touch every entry).
        """
        if not self.has_dense_delays:
            raise TypeError(
                "apply_server_delta needs dense delay columns; compact instances "
                "advance through the scenario delta layer "
                "(CompactDelayMatrix.with_servers) and CAPInstance.from_scenario"
            )
        old_to_new = np.asarray(old_to_new, dtype=np.int64)
        join_delays = np.asarray(join_delays, dtype=np.float64)
        if join_delays.size == 0:
            join_delays = join_delays.reshape(self.num_clients, 0)
        server_server_delays = np.asarray(server_server_delays, dtype=np.float64)
        server_capacities = np.asarray(server_capacities, dtype=np.float64)

        if old_to_new.shape != (self.num_servers,):
            raise ValueError(
                f"old_to_new must have shape ({self.num_servers},), got {old_to_new.shape}"
            )
        num_joins = join_delays.shape[1] if join_delays.ndim == 2 else 0
        if join_delays.ndim != 2 or join_delays.shape[0] != self.num_clients:
            raise ValueError(
                f"join_delays must have shape ({self.num_clients}, num_joins), "
                f"got {join_delays.shape}"
            )
        if num_joins and (join_delays < 0).any():
            raise ValueError("delays must be non-negative")

        survivors_old = np.flatnonzero(old_to_new >= 0)
        num_new = survivors_old.size + num_joins
        if num_new < 1:
            raise ValueError("a server delta must leave at least one server")
        if not np.array_equal(old_to_new[survivors_old], np.arange(survivors_old.size)):
            raise ValueError(
                "old_to_new must map surviving servers to 0..num_survivors-1 in their "
                "original relative order (the layout apply_server_churn produces)"
            )
        if server_server_delays.shape != (num_new, num_new):
            raise ValueError(
                f"server_server_delays must be ({num_new}, {num_new}), "
                f"got {server_server_delays.shape}"
            )
        if (server_server_delays < 0).any():
            raise ValueError("delays must be non-negative")
        if server_capacities.shape != (num_new,):
            raise ValueError(
                f"server_capacities must have shape ({num_new},), got {server_capacities.shape}"
            )
        if (server_capacities <= 0).any():
            raise ValueError("server capacities must be strictly positive")

        delays = np.empty((self.num_clients, num_new), dtype=np.float64)
        delays[:, : survivors_old.size] = self.client_server_delays[:, survivors_old]
        if num_joins:
            delays[:, survivors_old.size:] = join_delays

        instance = CAPInstance._from_validated_arrays(
            client_server_delays=delays,
            server_server_delays=server_server_delays,
            client_zones=self.client_zones,
            client_demands=self.client_demands,
            server_capacities=server_capacities,
            delay_bound=self.delay_bound,
            num_zones=self.num_zones,
        )
        # Cache maintenance: the per-zone aggregates depend only on the client
        # arrays, which are shared with this instance — carry them over.
        for key in ("_zone_demands_cache", "_zone_populations_cache"):
            cached = self.__dict__.get(key)
            if cached is not None:
                object.__setattr__(instance, key, cached)
        return instance

    def with_server_capacities(self, capacities: np.ndarray) -> "CAPInstance":
        """Capacity-only fleet change: same servers, different capacities.

        The O(num_servers) mirror of
        :meth:`~repro.world.scenario.DVEScenario.with_server_capacities`:
        every other array — crucially the client×server delay matrix — and
        the cached per-zone aggregates carry over *by identity* (a capacity
        change cannot move clients between zones).  Only the new capacity
        vector is validated.
        """
        capacities = np.asarray(capacities, dtype=np.float64)
        if capacities.shape != (self.num_servers,):
            raise ValueError(
                f"capacities must have shape ({self.num_servers},), got {capacities.shape}"
            )
        if (capacities <= 0).any():
            raise ValueError("server capacities must be strictly positive")
        instance = CAPInstance._from_validated_arrays(
            client_server_delays=self.client_server_delays,
            server_server_delays=self.server_server_delays,
            client_zones=self.client_zones,
            client_demands=self.client_demands,
            server_capacities=capacities,
            delay_bound=self.delay_bound,
            num_zones=self.num_zones,
        )
        for key in ("_zone_demands_cache", "_zone_populations_cache"):
            cached = self.__dict__.get(key)
            if cached is not None:
                object.__setattr__(instance, key, cached)
        return instance

    def with_delays(
        self,
        client_server_delays: Optional[np.ndarray] = None,
        server_server_delays: Optional[np.ndarray] = None,
    ) -> "CAPInstance":
        """Return a copy of this instance with substituted delay matrices.

        Used by the measurement-error experiments: the algorithms see the
        *estimated* delays, evaluation uses the original instance.
        """
        return replace(
            self,
            client_server_delays=(
                self.client_server_delays
                if client_server_delays is None
                else np.asarray(client_server_delays, dtype=np.float64)
            ),
            server_server_delays=(
                self.server_server_delays
                if server_server_delays is None
                else np.asarray(server_server_delays, dtype=np.float64)
            ),
        )

    def with_delay_bound(self, delay_bound: float) -> "CAPInstance":
        """Return a copy of this instance with a different delay bound ``D``."""
        return replace(self, delay_bound=float(delay_bound))
