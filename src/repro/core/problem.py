"""Problem definition for the client assignment problem (CAP).

A :class:`CAPInstance` is the numerical view of a DVE scenario that the
assignment algorithms consume (Definitions 2.1-2.3 of the paper):

* ``client_server_delays`` — round-trip delay ``d(c_j, s_i)`` between every
  client and every server (ms),
* ``server_server_delays`` — round-trip delay ``d(s_l, s_k)`` over the
  well-provisioned inter-server mesh (ms, zero diagonal),
* ``client_zones`` — the zone each client's avatar occupies,
* ``client_demands`` — per-client bandwidth demand ``RT(c_j)`` on its target
  server (bits/s),
* ``server_capacities`` — per-server bandwidth capacities ``C(s_i)`` (bits/s),
* ``delay_bound`` — the interactivity bound ``D`` (ms).

Instances are decoupled from :class:`~repro.world.scenario.DVEScenario` so
that algorithms can be run on *estimated* delays (Table 4's King / IDMaps
error models) while their results are evaluated on the true delays.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.utils.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from repro.world.scenario import DVEScenario

__all__ = ["CAPInstance"]


@dataclass(frozen=True)
class CAPInstance:
    """An instance of the client assignment problem.

    All arrays are validated and cast on construction; the instance is
    immutable (algorithms never modify it).
    """

    client_server_delays: np.ndarray
    server_server_delays: np.ndarray
    client_zones: np.ndarray
    client_demands: np.ndarray
    server_capacities: np.ndarray
    delay_bound: float
    num_zones: int

    def __post_init__(self) -> None:
        d_cs = np.asarray(self.client_server_delays, dtype=np.float64)
        d_ss = np.asarray(self.server_server_delays, dtype=np.float64)
        zones = np.asarray(self.client_zones, dtype=np.int64)
        demands = np.asarray(self.client_demands, dtype=np.float64)
        capacities = np.asarray(self.server_capacities, dtype=np.float64)
        object.__setattr__(self, "client_server_delays", d_cs)
        object.__setattr__(self, "server_server_delays", d_ss)
        object.__setattr__(self, "client_zones", zones)
        object.__setattr__(self, "client_demands", demands)
        object.__setattr__(self, "server_capacities", capacities)

        if d_cs.ndim != 2:
            raise ValueError(f"client_server_delays must be 2-D, got shape {d_cs.shape}")
        k, m = d_cs.shape
        if d_ss.shape != (m, m):
            raise ValueError(
                f"server_server_delays must be ({m}, {m}), got {d_ss.shape}"
            )
        if zones.shape != (k,):
            raise ValueError(f"client_zones must have shape ({k},), got {zones.shape}")
        if demands.shape != (k,):
            raise ValueError(f"client_demands must have shape ({k},), got {demands.shape}")
        if capacities.shape != (m,):
            raise ValueError(f"server_capacities must have shape ({m},), got {capacities.shape}")
        check_positive(self.delay_bound, "delay_bound")
        if self.num_zones < 1:
            raise ValueError("num_zones must be >= 1")
        if zones.size and (zones.min() < 0 or zones.max() >= self.num_zones):
            raise ValueError("client_zones contains zone ids outside [0, num_zones)")
        if (d_cs < 0).any() or (d_ss < 0).any():
            raise ValueError("delays must be non-negative")
        if demands.size and (demands <= 0).any():
            raise ValueError("client demands must be strictly positive (RT(c) > 0)")
        if (capacities <= 0).any():
            raise ValueError("server capacities must be strictly positive")

    # ------------------------------------------------------------------ #
    # Dimensions
    # ------------------------------------------------------------------ #
    @property
    def num_clients(self) -> int:
        """Number of clients ``k``."""
        return int(self.client_server_delays.shape[0])

    @property
    def num_servers(self) -> int:
        """Number of servers ``m``."""
        return int(self.client_server_delays.shape[1])

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def zone_demands(self) -> np.ndarray:
        """Per-zone bandwidth demand ``R(z_j) = sum_{c in z_j} RT(c)`` (bits/s)."""
        demands = np.zeros(self.num_zones, dtype=np.float64)
        if self.num_clients:
            np.add.at(demands, self.client_zones, self.client_demands)
        return demands

    def zone_populations(self) -> np.ndarray:
        """Number of clients in each zone."""
        if self.num_clients == 0:
            return np.zeros(self.num_zones, dtype=np.int64)
        return np.bincount(self.client_zones, minlength=self.num_zones).astype(np.int64)

    def clients_of_zone(self, zone: int) -> np.ndarray:
        """Indices of clients whose avatar is in ``zone``."""
        if not 0 <= zone < self.num_zones:
            raise ValueError(f"zone {zone} outside [0, {self.num_zones - 1}]")
        return np.flatnonzero(self.client_zones == zone)

    def forwarding_demands(self) -> np.ndarray:
        """Per-client contact-server demand ``RC(c) = 2 * RT(c)`` (bits/s)."""
        return 2.0 * self.client_demands

    def total_demand(self) -> float:
        """Total target-server demand (bits/s)."""
        return float(self.client_demands.sum())

    def total_capacity(self) -> float:
        """Total server capacity (bits/s)."""
        return float(self.server_capacities.sum())

    # ------------------------------------------------------------------ #
    # Construction / transformation
    # ------------------------------------------------------------------ #
    @classmethod
    def from_scenario(
        cls,
        scenario: "DVEScenario",
        delay_bound: Optional[float] = None,
    ) -> "CAPInstance":
        """Build an instance from a :class:`~repro.world.scenario.DVEScenario`."""
        return cls(
            client_server_delays=scenario.client_server_delays,
            server_server_delays=scenario.server_server_delays,
            client_zones=scenario.population.zones,
            client_demands=scenario.client_demands,
            server_capacities=scenario.servers.capacities,
            delay_bound=float(
                scenario.delay_bound_ms if delay_bound is None else delay_bound
            ),
            num_zones=scenario.num_zones,
        )

    def with_delays(
        self,
        client_server_delays: Optional[np.ndarray] = None,
        server_server_delays: Optional[np.ndarray] = None,
    ) -> "CAPInstance":
        """Return a copy of this instance with substituted delay matrices.

        Used by the measurement-error experiments: the algorithms see the
        *estimated* delays, evaluation uses the original instance.
        """
        return replace(
            self,
            client_server_delays=(
                self.client_server_delays
                if client_server_delays is None
                else np.asarray(client_server_delays, dtype=np.float64)
            ),
            server_server_delays=(
                self.server_server_delays
                if server_server_delays is None
                else np.asarray(server_server_delays, dtype=np.float64)
            ),
        )

    def with_delay_bound(self, delay_bound: float) -> "CAPInstance":
        """Return a copy of this instance with a different delay bound ``D``."""
        return replace(self, delay_bound=float(delay_bound))
