"""VirC — virtual-location-based assignment of contact servers.

From Section 3.2 of the paper: VirC "adopts the most natural way to assign
clients to servers in DVEs": every client connects directly to the server that
hosts its zone, i.e. the contact server equals the target server.  No
inter-server forwarding bandwidth is consumed, but the refined phase does not
improve the number of clients with QoS beyond what the initial phase achieved.
"""

from __future__ import annotations

from repro.core.assignment import Assignment, ZoneAssignment
from repro.core.problem import CAPInstance
from repro.utils.timing import Timer

__all__ = ["assign_contacts_virtual"]


def assign_contacts_virtual(
    instance: CAPInstance, zone_assignment: ZoneAssignment
) -> Assignment:
    """Give every client its target server as contact server (VirC).

    Parameters
    ----------
    instance:
        The CAP instance.
    zone_assignment:
        The zone → server map produced by an IAP algorithm.

    Returns
    -------
    Assignment
        Complete CAP solution with zero forwarding overhead.
    """
    if zone_assignment.num_zones != instance.num_zones:
        raise ValueError(
            "zone_assignment covers a different number of zones than the instance"
        )
    with Timer() as timer:
        contacts = zone_assignment.targets_of_clients(instance)
    return Assignment(
        zone_to_server=zone_assignment.zone_to_server,
        contact_of_client=contacts,
        algorithm=f"{zone_assignment.algorithm}-virc",
        capacity_exceeded=zone_assignment.capacity_exceeded,
        runtime_seconds=zone_assignment.runtime_seconds + timer.elapsed,
    )
