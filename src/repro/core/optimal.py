"""Optimal (branch-and-bound) baseline for the IAP and RAP.

The paper obtains optimal solutions of both integer programs with the
branch-and-bound algorithm of the MILP solver ``lp_solve`` "for comparison
purposes ... only applicable when the system size is small, otherwise the
running time will become very long".  This module plays the same role using
:func:`scipy.optimize.milp` (the HiGHS branch-and-bound solver shipped with
SciPy); the formulations are exactly Definitions 2.2 and 2.3.

One deliberate refinement: the paper's RAP formulation charges every client a
constant forwarding demand ``RC(c) = 2 RT(c)`` regardless of which contact
server is chosen, even though choosing the client's own target server costs
nothing.  The MILP here uses the physically correct per-pair coefficient
(``0`` when the contact equals the target, ``2 RT(c)`` otherwise) so that the
optimal baseline is compared on the same resource-accounting rules as the
heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np
import scipy.sparse as sp
from scipy.optimize import Bounds, LinearConstraint, milp

from repro.core.assignment import Assignment, ZoneAssignment, zone_server_loads
from repro.core.costs import initial_cost_matrix, refined_cost_matrix
from repro.core.problem import CAPInstance
from repro.utils.timing import Timer

__all__ = [
    "OptimalityError",
    "OptimalOptions",
    "solve_iap_optimal",
    "solve_rap_optimal",
    "solve_cap_optimal",
]


class OptimalityError(RuntimeError):
    """Raised when the MILP solver cannot produce a feasible integral solution."""


@dataclass(frozen=True)
class OptimalOptions:
    """Options forwarded to the HiGHS branch-and-bound solver.

    ``time_limit`` is in seconds per phase; ``mip_rel_gap`` is the relative
    optimality gap at which the solver may stop early (0 = prove optimality).
    """

    time_limit: float = 120.0
    mip_rel_gap: float = 0.0

    def as_milp_options(self) -> dict:
        """The ``options`` dict accepted by :func:`scipy.optimize.milp`."""
        return {"time_limit": float(self.time_limit), "mip_rel_gap": float(self.mip_rel_gap)}


def _solve_assignment_milp(
    cost: np.ndarray,
    demands: np.ndarray,
    capacities: np.ndarray,
    options: OptimalOptions,
    per_pair_demands: Optional[np.ndarray] = None,
) -> tuple[np.ndarray, float]:
    """Solve ``min sum_ij cost[i,j] x[i,j]`` s.t. each item assigned once and capacities.

    ``cost`` is (num_servers, num_items); ``demands`` is per item (ignored when
    ``per_pair_demands`` of the same shape as ``cost`` is given).  Returns the
    per-item chosen server and the objective value.
    """
    num_servers, num_items = cost.shape
    num_vars = num_servers * num_items
    c = cost.reshape(-1)

    # Assignment constraints: for every item j, sum_i x[i, j] == 1.
    rows = np.repeat(np.arange(num_items), num_servers)
    cols = (np.tile(np.arange(num_servers), num_items) * num_items
            + np.repeat(np.arange(num_items), num_servers))
    data = np.ones(num_items * num_servers)
    a_eq = sp.csr_matrix((data, (rows, cols)), shape=(num_items, num_vars))
    eq_constraint = LinearConstraint(a_eq, lb=np.ones(num_items), ub=np.ones(num_items))

    # Capacity constraints: for every server i, sum_j demand[i, j] x[i, j] <= capacity[i].
    if per_pair_demands is None:
        pair_demands = np.broadcast_to(demands, (num_servers, num_items))
    else:
        pair_demands = per_pair_demands
    rows = np.repeat(np.arange(num_servers), num_items)
    cols = np.arange(num_vars)
    a_ub = sp.csr_matrix((pair_demands.reshape(-1), (rows, cols)), shape=(num_servers, num_vars))
    ub_constraint = LinearConstraint(a_ub, lb=-np.inf, ub=capacities)

    result = milp(
        c=c,
        constraints=[eq_constraint, ub_constraint],
        integrality=np.ones(num_vars),
        bounds=Bounds(0, 1),
        options=options.as_milp_options(),
    )
    if result.x is None:
        raise OptimalityError(
            f"MILP solver failed (status={result.status}): {result.message}"
        )
    x = np.asarray(result.x).reshape(num_servers, num_items)
    chosen = np.argmax(x, axis=0).astype(np.int64)
    # Guard against fractional garbage (should not happen with integrality=1).
    if not np.allclose(x.sum(axis=0), 1.0, atol=1e-4):
        raise OptimalityError("MILP solution does not assign every item exactly once")
    return chosen, float(result.fun)


def solve_iap_optimal(
    instance: CAPInstance, options: OptimalOptions | None = None
) -> ZoneAssignment:
    """Solve the initial assignment problem (Definition 2.2) to optimality.

    Raises :class:`OptimalityError` when the instance is infeasible (total
    zone demand cannot be packed into the capacities) or the solver fails
    within its time limit.
    """
    options = options or OptimalOptions()
    with Timer() as timer:
        cost = initial_cost_matrix(instance)  # (m, n)
        zone_to_server, objective = _solve_assignment_milp(
            cost=cost,
            demands=instance.zone_demands(),
            capacities=instance.server_capacities,
            options=options,
        )
    del objective  # the objective equals initial_cost_matrix(...)[i, j] summed over the choice
    return ZoneAssignment(
        zone_to_server=zone_to_server,
        algorithm="optimal-iap",
        capacity_exceeded=False,
        runtime_seconds=timer.elapsed,
    )


def solve_rap_optimal(
    instance: CAPInstance,
    zone_assignment: ZoneAssignment,
    options: OptimalOptions | None = None,
) -> Assignment:
    """Solve the refined assignment problem (Definition 2.3) to optimality.

    Clients whose direct delay to their target server already meets the bound
    are fixed to contact = target (this is optimal: zero cost, zero resource);
    the MILP only covers the remaining clients, which keeps the model at the
    size ``lp_solve`` handled in the paper.
    """
    options = options or OptimalOptions()
    with Timer() as timer:
        targets = zone_assignment.targets_of_clients(instance)
        clients = np.arange(instance.num_clients)
        direct = instance.delay_pairs(clients, targets)
        needs_help = direct > instance.delay_bound
        contacts = targets.copy()

        if needs_help.any():
            helped = np.flatnonzero(needs_help)
            cost = refined_cost_matrix(instance, zone_assignment.zone_to_server)[:, helped]
            # Per-pair forwarding demand: zero on the client's own target server.
            rc = 2.0 * instance.client_demands[helped]
            pair_demands = np.broadcast_to(rc, cost.shape).copy()
            pair_demands[targets[helped], np.arange(helped.size)] = 0.0
            residual = instance.server_capacities - zone_server_loads(
                instance, zone_assignment.zone_to_server
            )
            residual = np.maximum(residual, 0.0)
            chosen, _objective = _solve_assignment_milp(
                cost=cost,
                demands=rc,
                capacities=residual,
                options=options,
                per_pair_demands=pair_demands,
            )
            contacts[helped] = chosen

    return Assignment(
        zone_to_server=zone_assignment.zone_to_server,
        contact_of_client=contacts,
        algorithm="optimal",
        capacity_exceeded=zone_assignment.capacity_exceeded,
        runtime_seconds=zone_assignment.runtime_seconds + timer.elapsed,
    )


def solve_cap_optimal(
    instance: CAPInstance, options: OptimalOptions | None = None
) -> Assignment:
    """Solve both phases to optimality (the paper's ``lp_solve`` baseline).

    Like the paper, "optimal" means optimal *per phase* under the two-phase
    decomposition — the refined phase optimises on top of the optimal initial
    assignment, not jointly with it.
    """
    options = options or OptimalOptions()
    zones = solve_iap_optimal(instance, options=options)
    return solve_rap_optimal(instance, zones, options=options)
