"""Max-regret greedy assignment machinery shared by GreZ and GreC.

Both greedy heuristics in the paper follow the same template, borrowed from
the classic greedy algorithms for the Generalized Assignment Problem (Romeijn
& Romero Morales):

1. For every item (zone in the IAP, client in the RAP) compute a desirability
   ``mu[i, j] = -cost[i, j]`` for placing item ``j`` on server ``i``.
2. Compute each item's *regret* ``rho_j`` — the gap between its best and
   second-best desirability — and order items by decreasing regret, so the
   items that lose the most by not getting their preferred server are placed
   first.
3. Walk the items in that order; give each one its most desirable server that
   still has enough residual capacity.

The paper's pseudocode (Figures 2 and 3) computes the regrets once up front;
:func:`max_regret_assign` follows that faithfully, and also offers a
``recompute`` mode that re-evaluates regrets after every placement (a common
strengthening of the heuristic) used by the ablation experiment E7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["RegretResult", "max_regret_assign", "regret_order"]


@dataclass(frozen=True)
class RegretResult:
    """Outcome of a max-regret greedy pass.

    Attributes
    ----------
    item_to_server:
        ``(num_items,)`` chosen server per item; ``-1`` when an item could not
        be placed within capacity and no fallback was requested.
    loads:
        Final per-server loads (initial loads plus placed demands).
    capacity_exceeded:
        True when the fallback had to place at least one item on a server
        whose residual capacity was insufficient.
    """

    item_to_server: np.ndarray
    loads: np.ndarray
    capacity_exceeded: bool


def regret_order(desirability: np.ndarray) -> np.ndarray:
    """Order item indices by decreasing regret (best minus second-best desirability).

    With a single server the regret of every item is defined as 0, so the
    order degenerates to the input order.
    """
    desirability = np.asarray(desirability, dtype=np.float64)
    if desirability.ndim != 2:
        raise ValueError("desirability must be a (num_servers, num_items) matrix")
    num_servers, num_items = desirability.shape
    if num_items == 0:
        return np.zeros(0, dtype=np.int64)
    if num_servers == 1:
        return np.arange(num_items, dtype=np.int64)
    # partition the two largest desirabilities per column
    top_two = np.partition(desirability, num_servers - 2, axis=0)[-2:, :]
    regrets = top_two[1] - top_two[0]
    # Stable sort keeps input order among ties, making the heuristic deterministic.
    return np.argsort(-regrets, kind="stable").astype(np.int64)


def max_regret_assign(
    desirability: np.ndarray,
    demands: np.ndarray,
    capacities: np.ndarray,
    initial_loads: Optional[np.ndarray] = None,
    fallback: str = "least_loaded",
    recompute: bool = False,
) -> RegretResult:
    """Assign items to servers with the max-regret greedy heuristic.

    Parameters
    ----------
    desirability:
        ``(num_servers, num_items)`` desirability ``mu[i, j]`` (higher better).
    demands:
        ``(num_items,)`` resource demand added to the chosen server's load.
    capacities:
        ``(num_servers,)`` server capacities.
    initial_loads:
        Optional existing per-server loads (e.g. target-server traffic already
        committed by the initial phase).
    fallback:
        What to do when no server has room for an item:
        ``"least_loaded"`` (default) places it on the server with the largest
        residual capacity and flags ``capacity_exceeded``; ``"skip"`` leaves it
        unassigned (``-1``).
    recompute:
        When True the regret order is recomputed among the remaining items
        after every placement (dynamic variant used by the ablation study);
        when False (the paper's pseudocode) regrets are computed once.

    Returns
    -------
    RegretResult
    """
    desirability = np.asarray(desirability, dtype=np.float64)
    demands = np.asarray(demands, dtype=np.float64)
    capacities = np.asarray(capacities, dtype=np.float64)
    if desirability.ndim != 2:
        raise ValueError("desirability must be (num_servers, num_items)")
    num_servers, num_items = desirability.shape
    if demands.shape != (num_items,):
        raise ValueError("demands must have one entry per item")
    if capacities.shape != (num_servers,):
        raise ValueError("capacities must have one entry per server")
    if (demands < 0).any():
        raise ValueError("demands must be non-negative")
    if fallback not in ("least_loaded", "skip"):
        raise ValueError("fallback must be 'least_loaded' or 'skip'")

    loads = np.zeros(num_servers) if initial_loads is None else np.asarray(
        initial_loads, dtype=np.float64
    ).copy()
    if loads.shape != (num_servers,):
        raise ValueError("initial_loads must have one entry per server")

    item_to_server = np.full(num_items, -1, dtype=np.int64)
    capacity_exceeded = False

    # Pre-sorted server preference per item (descending desirability).
    preference = np.argsort(-desirability, axis=0, kind="stable")

    def place(item: int) -> None:
        nonlocal capacity_exceeded
        for server in preference[:, item]:
            if loads[server] + demands[item] <= capacities[server] + 1e-9:
                item_to_server[item] = server
                loads[server] += demands[item]
                return
        if fallback == "least_loaded":
            residual = capacities - loads
            server = int(np.argmax(residual))
            item_to_server[item] = server
            loads[server] += demands[item]
            capacity_exceeded = True
        # fallback == "skip": leave as -1

    if not recompute:
        for item in regret_order(desirability):
            place(int(item))
    else:
        remaining = list(range(num_items))
        while remaining:
            sub = desirability[:, remaining]
            order = regret_order(sub)
            item = remaining.pop(int(order[0]))
            place(item)

    return RegretResult(
        item_to_server=item_to_server,
        loads=loads,
        capacity_exceeded=capacity_exceeded,
    )
